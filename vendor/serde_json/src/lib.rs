//! Vendored stand-in for `serde_json`: JSON text round-trip for the vendored
//! `serde` [`Value`] data model. Supports exactly the entry points the
//! workspace uses: [`to_string`], [`to_string_pretty`] and [`from_str`].

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes a value to a compact JSON string.
///
/// # Errors
///
/// Never fails for the shapes the vendored serde produces; the `Result`
/// matches the real serde_json signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to a pretty-printed JSON string (2-space indent).
///
/// # Errors
///
/// Never fails for the shapes the vendored serde produces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(v) => {
            if v.is_finite() {
                // `{:?}` is the shortest representation that round-trips.
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !entries.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected input at byte {}: {other:?}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, keyword: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_collections() {
        let v: Vec<f64> = from_str("[1.5, 2.0, -3e2]").unwrap();
        assert_eq!(v, vec![1.5, 2.0, -300.0]);
        assert_eq!(to_string(&v).unwrap(), "[1.5,2.0,-300.0]");
        let s: String = from_str("\"a\\nb\"").unwrap();
        assert_eq!(s, "a\nb");
        let n: Option<u32> = from_str("null").unwrap();
        assert_eq!(n, None);
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let map: std::collections::BTreeMap<String, Vec<u32>> =
            [("a".to_string(), vec![1, 2])].into_iter().collect();
        let pretty = to_string_pretty(&map).unwrap();
        assert!(pretty.contains('\n'));
        let back: std::collections::BTreeMap<String, Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(map, back);
    }
}
