//! Vendored stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace ships a
//! minimal serialization framework covering the API surface the project uses:
//! `#[derive(Serialize, Deserialize)]` on plain structs and enums plus the
//! `serde_json` string round-trip. Everything funnels through the [`Value`]
//! data model; the derive macros (in `serde_derive`) generate `to_value` /
//! `from_value` implementations that mirror serde's externally tagged
//! representation, so the JSON produced here matches what the real serde
//! stack would emit for the same types.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (struct fields, map entries).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of a sequence value, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents widened to `f64`, accepting any number variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(v) => Some(v as f64),
            Value::UInt(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Numeric contents as `i64`, accepting any integral variant.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) => i64::try_from(v).ok(),
            Value::Float(v) if v.fract() == 0.0 => Some(v as i64),
            _ => None,
        }
    }

    /// Numeric contents as `u64`, accepting any integral variant.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(v) => u64::try_from(v).ok(),
            Value::UInt(v) => Some(v),
            Value::Float(v) if v.fract() == 0.0 && v >= 0.0 => Some(v as u64),
            _ => None,
        }
    }

    /// Boolean contents, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Looks up a struct field in a map value, used by derived `Deserialize`.
pub fn map_field<'a>(entries: &'a [(String, Value)], key: &str) -> Result<&'a Value, Error> {
    entries
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
}

/// Error produced while converting between types and [`Value`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value does not match the expected shape.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

fn type_error<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!("expected {expected}, got {got:?}")))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_u64().ok_or_else(|| {
                    Error::custom(format!("expected unsigned integer, got {value:?}"))
                })?;
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = value.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {value:?}"))
                })?;
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = f64::from(*self);
                if v.is_finite() { Value::Float(v) } else { Value::Null }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|v| v as $t)
                    .ok_or_else(|| Error::custom(format!("expected number, got {value:?}")))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => type_error("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => type_error("sequence", other),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => type_error("2-element sequence", value),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value.as_seq() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => type_error("3-element sequence", value),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => type_error("map", other),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output, matching BTreeMap behaviour.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => type_error("map", other),
        }
    }
}
