//! Vendored stand-in for `proptest`.
//!
//! Supports the subset the workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, range strategies, tuple
//! strategies, `prop::collection::vec`, `prop::bool::ANY`, `prop_map`, and
//! the `prop_assert!`/`prop_assert_eq!` macros. Cases are sampled from a
//! deterministic per-test RNG; there is no shrinking — a failing case panics
//! with its case number so it can be reproduced (the RNG stream is fixed).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runtime configuration of a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic RNG driving strategy sampling.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the RNG for a named test; the stream depends only on the name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name keeps streams distinct and stable.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(StdRng::seed_from_u64(hash))
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

/// Error raised by `prop_assert!`-style macros inside a test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// A generator of values for one test parameter.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Number-of-elements specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use rand::Rng;

        /// Strategy for `Vec`s with element strategy `S` and a size range.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors whose length lies in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng
                    .rng()
                    .random_range(self.size.lo..=self.size.hi_inclusive);
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The uniform boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn new_value(&self, rng: &mut TestRng) -> bool {
                rng.rng().random_bool(0.5)
            }
        }
    }
}

/// Fails the current test case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fails the current test case when the two expressions differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` != `{:?}`", l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError(format!($($fmt)*)));
        }
    }};
}

/// Fails the current test case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// Declares property tests: each `fn` runs its body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::new_value(&($strategy), &mut rng);)+
                let outcome = (|| {
                    $body
                    ::std::result::Result::<(), $crate::TestCaseError>::Ok(())
                })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        case + 1, config.cases, stringify!($name), e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u8..10, 1.5f64..2.5), flag in prop::bool::ANY) {
            prop_assert!(a < 10);
            prop_assert!((1.5..2.5).contains(&b));
            prop_assert_eq!(flag, flag);
        }

        #[test]
        fn vectors_and_maps(v in prop::collection::vec((0usize..5).prop_map(|x| x * 2), 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
        }
    }

    #[test]
    fn macro_generates_runnable_tests() {
        ranges_and_tuples();
        vectors_and_maps();
    }

    #[test]
    fn streams_are_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let s = 0u64..100;
        assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
    }
}
