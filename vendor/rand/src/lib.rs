//! Vendored stand-in for `rand` (0.9-style API).
//!
//! Implements the subset the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::random` and `Rng::random_range` over
//! integer and float ranges. The generator is xoshiro256++ seeded through
//! SplitMix64 — not the ChaCha12 of the real `StdRng`, but a high-quality,
//! fully deterministic stream, which is all the synthetic-data pipeline needs.

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution (uniform over
    /// all values for integers, uniform in `[0, 1)` for floats).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`lo..hi`, half-open) or inclusive
    /// range (`lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(&mut RngDyn(self))
    }

    /// Samples a boolean that is `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Object-safe adapter so `random_range` works on `&mut R` with `R: ?Sized`.
struct RngDyn<'a, R: RngCore + ?Sized>(&'a mut R);

impl<R: RngCore + ?Sized> RngCore for RngDyn<'_, R> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A reproducible generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide <= zone {
            return wide % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = unit_f64(rng.next_u64());
                let v = self.start + (self.end - self.start) * unit as $t;
                // Guard the half-open upper bound against rounding.
                if v >= self.end { self.end.next_down() } else { v }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let unit = unit_f64(rng.next_u64());
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        use super::RngCore;
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(0.6f32..1.4);
            assert!((0.6..1.4).contains(&v));
            let i = rng.random_range(3usize..10);
            assert!((3..10).contains(&i));
            let j = rng.random_range(0usize..=4);
            assert!(j <= 4);
            let n = rng.random_range(-5.0f32..5.0);
            assert!((-5.0..5.0).contains(&n));
        }
    }

    #[test]
    fn unit_interval_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(42);
        let mean: f64 = (0..100_000).map(|_| rng.random::<f64>()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_unsized_references() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
            rng.random_range(0.0f32..1.0)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let dynamic: &mut dyn super::RngCore = &mut rng;
        let v = sample(dynamic);
        assert!((0.0..1.0).contains(&v));
    }
}
