//! Vendored stand-in for `criterion`.
//!
//! A small wall-clock benchmarking harness exposing the criterion API shape
//! the workspace uses (`bench_function`, `iter`, `iter_batched`,
//! `benchmark_group`, `bench_with_input`, the `criterion_group!` /
//! `criterion_main!` macros). Timing is a simple warmup + fixed sample count
//! around `Instant::now()`; results are printed as mean time per iteration
//! and derived throughput when configured.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted for API compatibility;
/// every batch is per-iteration here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: large batches in real criterion.
    SmallInput,
    /// Large inputs: small batches in real criterion.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of the parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // When run under `cargo test` the harness executes each benchmark
        // once, mirroring criterion's test mode.
        let quick = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 10,
            quick,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            quick: self.quick,
        };
        let samples = if self.quick { 1 } else { self.sample_size };
        for _ in 0..samples {
            f(&mut bencher);
        }
        report(name, &bencher.samples, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Final reporting hook (no-op; kept for API compatibility).
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            quick: self.criterion.quick,
        };
        let samples = if self.criterion.quick {
            1
        } else {
            self.criterion.sample_size
        };
        for _ in 0..samples {
            f(&mut bencher);
        }
        report(
            &format!("{}/{}", self.name, id),
            &bencher.samples,
            self.throughput,
        );
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    quick: bool,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let iters = self.calibrate(&mut routine);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.samples
            .push(elapsed / u32::try_from(iters).unwrap_or(u32::MAX));
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded).
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let iters = if self.quick { 1 } else { 10 };
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.samples
            .push(total / u32::try_from(iters).unwrap_or(u32::MAX));
    }

    /// Picks an iteration count so a sample takes a measurable time slice.
    fn calibrate<O, F: FnMut() -> O>(&self, routine: &mut F) -> u64 {
        if self.quick {
            return 1;
        }
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        // Aim for ~20 ms per sample, capped to keep total time bounded.
        (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let mean_ns =
        samples.iter().map(Duration::as_nanos).sum::<u128>() as f64 / samples.len() as f64;
    let (scaled, unit) = if mean_ns < 1_000.0 {
        (mean_ns, "ns")
    } else if mean_ns < 1_000_000.0 {
        (mean_ns / 1e3, "us")
    } else if mean_ns < 1_000_000_000.0 {
        (mean_ns / 1e6, "ms")
    } else {
        (mean_ns / 1e9, "s")
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            let per_s = n as f64 / (mean_ns / 1e9);
            println!("{name:<50} {scaled:>10.3} {unit}/iter   {per_s:>12.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let per_s = n as f64 / (mean_ns / 1e9);
            println!(
                "{name:<50} {scaled:>10.3} {unit}/iter   {:>12.1} MiB/s",
                per_s / (1024.0 * 1024.0)
            );
        }
        None => println!("{name:<50} {scaled:>10.3} {unit}/iter"),
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion {
            sample_size: 2,
            quick: true,
        };
        work(&mut c);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
