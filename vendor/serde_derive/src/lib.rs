//! Derive macros for the vendored `serde` stand-in.
//!
//! Hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote` available in
//! this offline build). Supports the shapes the workspace actually derives:
//! non-generic structs with named fields, tuple structs, and enums with unit,
//! tuple and struct variants. Field/variant attributes (doc comments,
//! `#[default]`) are skipped; `#[serde(...)]` customization is not supported
//! and not used by the workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields; the arity.
    Tuple(usize),
    /// No payload at all.
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attributes(&mut tokens);
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive(Serialize/Deserialize): generic type `{name}` is not supported by the vendored serde");
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unsupported struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

fn skip_attributes(tokens: &mut Tokens) {
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        tokens.next(); // the [...] group
    }
}

fn skip_visibility(tokens: &mut Tokens) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next(); // pub(crate) / pub(super)
        }
    }
}

/// Consumes tokens until a comma at angle-bracket depth zero, returning
/// whether a comma was consumed (false at end of stream).
fn skip_until_comma(tokens: &mut Tokens) -> bool {
    let mut depth = 0i32;
    for token in tokens.by_ref() {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return true,
                _ => {}
            }
        }
    }
    false
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        }
        // Skip the `:` and the type up to the next top-level comma.
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        if !skip_until_comma(&mut tokens) {
            break;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0usize;
    loop {
        skip_attributes(&mut tokens);
        skip_visibility(&mut tokens);
        if tokens.peek().is_none() {
            break;
        }
        count += 1;
        if !skip_until_comma(&mut tokens) {
            break;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attributes(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream());
                tokens.next();
                Fields::Named(named)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                Fields::Tuple(arity)
            }
            _ => Fields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip an optional `= discriminant` and the trailing comma.
        if !skip_until_comma(&mut tokens) {
            break;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let pushes: String = names
                        .iter()
                        .map(|f| {
                            format!(
                                "__fields.push((\"{f}\".to_string(), \
                                 ::serde::Serialize::to_value(&self.{f})));\n"
                            )
                        })
                        .collect();
                    format!(
                        "let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}::serde::Value::Map(__fields)"
                    )
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(arity) => {
                    let items: Vec<String> = (0..*arity)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Map(vec![(\
                             \"{vname}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                        ),
                        Fields::Tuple(arity) => {
                            let binds: Vec<String> =
                                (0..*arity).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(vec![(\
                                 \"{vname}\".to_string(), ::serde::Value::Seq(vec![{}]))]),\n",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![(\
                                 \"{vname}\".to_string(), ::serde::Value::Map(vec![{}]))]),\n",
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::map_field(__map, \"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "let __map = __value.as_map().ok_or_else(|| \
                         ::serde::Error::custom(\"expected map for struct `{name}`\"))?;\n\
                         Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__value)?))")
                }
                Fields::Tuple(arity) => {
                    let inits: Vec<String> = (0..*arity)
                        .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                        .collect();
                    format!(
                        "let __seq = __value.as_seq().ok_or_else(|| \
                         ::serde::Error::custom(\"expected sequence for `{name}`\"))?;\n\
                         if __seq.len() != {arity} {{ return Err(::serde::Error::custom(\
                         \"wrong tuple arity for `{name}`\")); }}\n\
                         Ok({name}({}))",
                        inits.join(", ")
                    )
                }
                Fields::Unit => format!("Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),\n", v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vname}\" => Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(_inner)?)),\n"
                        )),
                        Fields::Tuple(arity) => {
                            let inits: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                 let __seq = _inner.as_seq().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected sequence payload\"))?;\n\
                                 if __seq.len() != {arity} {{ return Err(::serde::Error::custom(\
                                 \"wrong payload arity for `{name}::{vname}`\")); }}\n\
                                 Ok({name}::{vname}({}))\n}}\n",
                                inits.join(", ")
                            ))
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::map_field(__fields, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                 let __fields = _inner.as_map().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected map payload\"))?;\n\
                                 Ok({name}::{vname} {{ {} }})\n}}\n",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match __value {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => Err(::serde::Error::custom(format!(\
                                     \"unknown variant `{{__other}}` of `{name}`\"))),\n\
                             }},\n\
                             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, _inner) = &__entries[0];\n\
                                 \
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\
                                     __other => Err(::serde::Error::custom(format!(\
                                         \"unknown variant `{{__other}}` of `{name}`\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => Err(::serde::Error::custom(format!(\
                                 \"expected enum `{name}`, got {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
