//! A small dense `f32` tensor.
//!
//! Signals are stored as `[channels, length]` and dense activations as
//! `[features]`. That is all the TimePPG architectures require, so the type
//! deliberately supports only rank 1 and rank 2.

use serde::{Deserialize, Serialize};

use crate::TinyDlError;

/// Dense row-major `f32` tensor of rank 1 or 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor from a flat vector and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TinyDlError::ShapeMismatch`] when the product of the shape
    /// does not equal `data.len()`, and [`TinyDlError::InvalidShape`] for
    /// ranks other than 1 or 2.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TinyDlError> {
        if shape.is_empty() || shape.len() > 2 {
            return Err(TinyDlError::InvalidShape {
                op: "Tensor::from_vec",
                expected: "rank 1 or 2".to_string(),
                actual: shape.to_vec(),
            });
        }
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(TinyDlError::ShapeMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Self {
            data,
            shape: shape.to_vec(),
        })
    }

    /// Creates a zero-filled tensor of the given shape.
    ///
    /// # Errors
    ///
    /// Returns [`TinyDlError::InvalidShape`] for ranks other than 1 or 2.
    pub fn zeros(shape: &[usize]) -> Result<Self, TinyDlError> {
        let n: usize = shape.iter().product();
        Self::from_vec(vec![0.0; n], shape)
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Self {
            data: data.to_vec(),
            shape: vec![data.len()],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat read-only view of the data (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the data (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `[row, col]` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the indices are out of range.
    pub fn at(&self, row: usize, col: usize) -> f32 {
        assert_eq!(self.shape.len(), 2, "Tensor::at requires a rank-2 tensor");
        self.data[row * self.shape[1] + col]
    }

    /// Sets the element at `[row, col]` of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or the indices are out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert_eq!(self.shape.len(), 2, "Tensor::set requires a rank-2 tensor");
        let cols = self.shape[1];
        self.data[row * cols + col] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TinyDlError::ShapeMismatch`] when the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self, TinyDlError> {
        Self::from_vec(self.data.clone(), shape)
    }

    /// Number of rows (first dimension) — channels for a `[C, L]` signal.
    pub fn rows(&self) -> usize {
        self.shape[0]
    }

    /// Number of columns (second dimension), or 1 for a rank-1 tensor.
    pub fn cols(&self) -> usize {
        *self.shape.get(1).unwrap_or(&1)
    }

    /// Element-wise maximum of the tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Largest absolute value of the tensor (0 for an empty tensor).
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_shape() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]),
            Err(TinyDlError::ShapeMismatch {
                expected: 6,
                actual: 5
            })
        ));
        assert!(Tensor::from_vec(vec![1.0; 6], &[1, 2, 3]).is_err());
        assert!(Tensor::from_vec(vec![], &[]).is_err());
    }

    #[test]
    fn zeros_and_len() {
        let t = Tensor::zeros(&[3, 4]).unwrap();
        assert_eq!(t.len(), 12);
        assert!(!t.is_empty());
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 4);
    }

    #[test]
    fn indexing_rank2() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(t.at(0, 0), 1.0);
        assert_eq!(t.at(1, 2), 6.0);
        t.set(1, 0, 9.0);
        assert_eq!(t.at(1, 0), 9.0);
    }

    #[test]
    #[should_panic(expected = "rank-2")]
    fn at_requires_rank2() {
        let t = Tensor::from_slice(&[1.0, 2.0]);
        let _ = t.at(0, 1);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.reshape(&[4]).unwrap();
        assert_eq!(r.shape(), &[4]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn from_slice_is_rank1() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(t.shape(), &[3]);
        assert_eq!(t.cols(), 1);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-3.0, 1.0, 2.0], &[3]).unwrap();
        assert_eq!(t.max(), 2.0);
        assert_eq!(t.abs_max(), 3.0);
        assert!((t.mean() - 0.0).abs() < 1e-6);
        assert_eq!(Tensor::default().mean(), 0.0);
    }

    #[test]
    fn into_vec_round_trip() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        assert_eq!(t.clone().into_vec(), vec![1.0, 2.0]);
        let mut t2 = t;
        t2.as_mut_slice()[0] = 7.0;
        assert_eq!(t2.as_slice()[0], 7.0);
    }
}
