//! Post-training int8 quantization and quantized inference.
//!
//! The paper deploys TimePPG-Small and TimePPG-Big quantized to 8 bits (via
//! quantization-aware training) both on the STM32WB55 (X-CUBE-AI) and on the
//! Raspberry Pi3 (TFLite). This module reproduces the arithmetic of that
//! deployment path: weights are stored as `i8` with a per-tensor symmetric
//! scale, activations are quantized dynamically per tensor, and accumulation
//! happens in `i32` before rescaling back to `f32`.
//!
//! The quantizer consumes a trained [`Sequential`] float network and produces
//! a [`QuantizedNetwork`] whose inference results track the float network
//! within quantization error (verified by the round-trip tests below).

use serde::{Deserialize, Serialize};

use crate::layers::{Conv1d, Dense, Flatten, GlobalAvgPool, Relu};
use crate::network::Sequential;
use crate::tensor::Tensor;
use crate::TinyDlError;

/// Symmetric per-tensor quantization parameters (`zero_point` is always 0).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Scale such that `real ≈ scale * quantized`.
    pub scale: f32,
}

impl QuantParams {
    /// Derives the scale that maps `abs_max` to the int8 range.
    pub fn from_abs_max(abs_max: f32) -> Self {
        let scale = if abs_max > 0.0 { abs_max / 127.0 } else { 1.0 };
        Self { scale }
    }

    /// Quantizes one value to `i8` with saturation.
    pub fn quantize(&self, x: f32) -> i8 {
        (x / self.scale).round().clamp(-127.0, 127.0) as i8
    }

    /// Dequantizes one value.
    pub fn dequantize(&self, q: i8) -> f32 {
        f32::from(q) * self.scale
    }
}

/// Quantizes a whole tensor, returning the int8 data and its parameters.
pub fn quantize_tensor(tensor: &Tensor) -> (Vec<i8>, QuantParams) {
    let params = QuantParams::from_abs_max(tensor.abs_max());
    (
        tensor
            .as_slice()
            .iter()
            .map(|&x| params.quantize(x))
            .collect(),
        params,
    )
}

/// Quantizes a slice of weights.
pub fn quantize_slice(values: &[f32]) -> (Vec<i8>, QuantParams) {
    let abs_max = values.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    let params = QuantParams::from_abs_max(abs_max);
    (values.iter().map(|&x| params.quantize(x)).collect(), params)
}

/// One layer of the quantized inference pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum QuantLayer {
    Conv {
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        dilation: usize,
        padding: usize,
        weights: Vec<i8>,
        weight_params: QuantParams,
        bias: Vec<f32>,
    },
    Dense {
        in_features: usize,
        out_features: usize,
        weights: Vec<i8>,
        weight_params: QuantParams,
        bias: Vec<f32>,
    },
    Relu,
    GlobalAvgPool,
    Flatten,
}

/// An int8 network produced by post-training quantization of a [`Sequential`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedNetwork {
    layers: Vec<QuantLayer>,
}

impl QuantizedNetwork {
    /// Quantizes a trained float network.
    ///
    /// # Errors
    ///
    /// Returns [`TinyDlError::EmptyNetwork`] for an empty network and
    /// [`TinyDlError::InvalidParameter`] if the network contains a layer type
    /// the quantizer does not support.
    pub fn from_sequential(net: &Sequential) -> Result<Self, TinyDlError> {
        if net.is_empty() {
            return Err(TinyDlError::EmptyNetwork);
        }
        let mut layers = Vec::with_capacity(net.len());
        for layer in net.layers() {
            let any = layer.as_any();
            if let Some(conv) = any.downcast_ref::<Conv1d>() {
                let (weights, weight_params) = quantize_slice(conv.weights());
                layers.push(QuantLayer::Conv {
                    in_channels: conv.in_channels(),
                    out_channels: conv.out_channels(),
                    kernel: conv.weights().len() / (conv.in_channels() * conv.out_channels()),
                    stride: conv.stride(),
                    dilation: conv.dilation(),
                    padding: conv.dilation()
                        * (conv.weights().len() / (conv.in_channels() * conv.out_channels()) - 1)
                        / 2,
                    weights,
                    weight_params,
                    bias: conv.bias().to_vec(),
                });
            } else if let Some(dense) = any.downcast_ref::<Dense>() {
                let (weights, weight_params) = quantize_slice(dense.weights());
                layers.push(QuantLayer::Dense {
                    in_features: dense.in_features(),
                    out_features: dense.out_features(),
                    weights,
                    weight_params,
                    bias: dense.bias().to_vec(),
                });
            } else if any.downcast_ref::<Relu>().is_some() {
                layers.push(QuantLayer::Relu);
            } else if any.downcast_ref::<GlobalAvgPool>().is_some() {
                layers.push(QuantLayer::GlobalAvgPool);
            } else if any.downcast_ref::<Flatten>().is_some() {
                layers.push(QuantLayer::Flatten);
            } else {
                return Err(TinyDlError::InvalidParameter {
                    op: "QuantizedNetwork::from_sequential",
                    name: "layer",
                    requirement:
                        "only Conv1d, Dense, Relu, GlobalAvgPool and Flatten are supported",
                });
            }
        }
        Ok(Self { layers })
    }

    /// Number of layers in the quantized pipeline.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the pipeline is empty (never true for a built network).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Size in bytes of the quantized weights (int8) plus float biases; the
    /// quantity that matters for MCU flash footprint.
    pub fn weight_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                QuantLayer::Conv { weights, bias, .. }
                | QuantLayer::Dense { weights, bias, .. } => {
                    weights.len() + bias.len() * std::mem::size_of::<f32>()
                }
                _ => 0,
            })
            .sum()
    }

    /// Runs quantized inference: activations are re-quantized per tensor, the
    /// convolution / dense arithmetic accumulates in `i32`, and the result is
    /// rescaled to `f32`.
    ///
    /// # Errors
    ///
    /// Returns [`TinyDlError::InvalidShape`] when the input does not match the
    /// first layer.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor, TinyDlError> {
        let mut x = input.clone();
        for layer in &self.layers {
            x = match layer {
                QuantLayer::Conv {
                    in_channels,
                    out_channels,
                    kernel,
                    stride,
                    dilation,
                    padding,
                    weights,
                    weight_params,
                    bias,
                } => quantized_conv_forward(
                    &x,
                    *in_channels,
                    *out_channels,
                    *kernel,
                    *stride,
                    *dilation,
                    *padding,
                    weights,
                    *weight_params,
                    bias,
                )?,
                QuantLayer::Dense {
                    in_features,
                    out_features,
                    weights,
                    weight_params,
                    bias,
                } => quantized_dense_forward(
                    &x,
                    *in_features,
                    *out_features,
                    weights,
                    *weight_params,
                    bias,
                )?,
                QuantLayer::Relu => {
                    let mut out = x.clone();
                    for v in out.as_mut_slice() {
                        if *v < 0.0 {
                            *v = 0.0;
                        }
                    }
                    out
                }
                QuantLayer::GlobalAvgPool => {
                    if x.shape().len() != 2 {
                        return Err(TinyDlError::InvalidShape {
                            op: "QuantizedNetwork::forward(pool)",
                            expected: "[channels, length]".to_string(),
                            actual: x.shape().to_vec(),
                        });
                    }
                    let (c, l) = (x.rows(), x.cols());
                    let mut out = vec![0.0f32; c];
                    for (ch, o) in out.iter_mut().enumerate() {
                        let mut acc = 0.0;
                        for t in 0..l {
                            acc += x.at(ch, t);
                        }
                        *o = acc / l as f32;
                    }
                    Tensor::from_vec(out, &[c])?
                }
                QuantLayer::Flatten => x.reshape(&[x.len()])?,
            };
        }
        Ok(x)
    }
}

#[allow(clippy::too_many_arguments)]
fn quantized_conv_forward(
    input: &Tensor,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    dilation: usize,
    padding: usize,
    weights: &[i8],
    weight_params: QuantParams,
    bias: &[f32],
) -> Result<Tensor, TinyDlError> {
    if input.shape().len() != 2 || input.rows() != in_channels {
        return Err(TinyDlError::InvalidShape {
            op: "quantized conv1d",
            expected: format!("[{in_channels}, length]"),
            actual: input.shape().to_vec(),
        });
    }
    let in_len = input.cols();
    let span = dilation * (kernel - 1);
    let padded = in_len + 2 * padding;
    let out_len = if padded <= span {
        0
    } else {
        (padded - span - 1) / stride + 1
    };

    let (qx, x_params) = quantize_tensor(input);
    let rescale = x_params.scale * weight_params.scale;

    let mut out = Tensor::zeros(&[out_channels, out_len])?;
    for oc in 0..out_channels {
        for t in 0..out_len {
            let mut acc: i32 = 0;
            for ic in 0..in_channels {
                for k in 0..kernel {
                    let pos = (t * stride + k * dilation) as isize - padding as isize;
                    if pos >= 0 && (pos as usize) < in_len {
                        let xq = qx[ic * in_len + pos as usize];
                        let wq = weights[(oc * in_channels + ic) * kernel + k];
                        acc += i32::from(xq) * i32::from(wq);
                    }
                }
            }
            out.set(oc, t, acc as f32 * rescale + bias[oc]);
        }
    }
    Ok(out)
}

fn quantized_dense_forward(
    input: &Tensor,
    in_features: usize,
    out_features: usize,
    weights: &[i8],
    weight_params: QuantParams,
    bias: &[f32],
) -> Result<Tensor, TinyDlError> {
    if input.len() != in_features {
        return Err(TinyDlError::InvalidShape {
            op: "quantized dense",
            expected: format!("[{in_features}]"),
            actual: input.shape().to_vec(),
        });
    }
    let (qx, x_params) = quantize_tensor(input);
    let rescale = x_params.scale * weight_params.scale;
    let mut out = vec![0.0f32; out_features];
    for (o, out_val) in out.iter_mut().enumerate() {
        let mut acc: i32 = 0;
        for i in 0..in_features {
            acc += i32::from(qx[i]) * i32::from(weights[o * in_features + i]);
        }
        *out_val = acc as f32 * rescale + bias[o];
    }
    Tensor::from_vec(out, &[out_features])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv1d, Dense, GlobalAvgPool, Relu};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn quant_params_round_trip_within_one_step() {
        let p = QuantParams::from_abs_max(12.7);
        for &x in &[0.0f32, 1.0, -5.3, 12.7, -12.7] {
            let q = p.quantize(x);
            assert!((p.dequantize(q) - x).abs() <= p.scale * 0.51, "x={x}");
        }
    }

    #[test]
    fn quant_params_saturate() {
        let p = QuantParams::from_abs_max(1.0);
        assert_eq!(p.quantize(100.0), 127);
        assert_eq!(p.quantize(-100.0), -127);
    }

    #[test]
    fn zero_tensor_has_unit_scale() {
        let p = QuantParams::from_abs_max(0.0);
        assert_eq!(p.scale, 1.0);
        assert_eq!(p.quantize(0.0), 0);
    }

    #[test]
    fn quantize_tensor_round_trip_error_is_bounded() {
        let t = Tensor::from_slice(&[0.1, -0.5, 0.9, 0.33, -0.77]);
        let (q, p) = quantize_tensor(&t);
        for (&orig, &qi) in t.as_slice().iter().zip(&q) {
            assert!((p.dequantize(qi) - orig).abs() <= p.scale);
        }
    }

    fn trained_like_net(rng: &mut StdRng) -> Sequential {
        // A small random network standing in for a trained one.
        let mut net = Sequential::new();
        let mut c1 = Conv1d::new(1, 6, 5, 1, 2, true).unwrap();
        c1.randomize(rng);
        net.push(c1);
        net.push(Relu::new());
        let mut c2 = Conv1d::new(6, 8, 3, 2, 1, true).unwrap();
        c2.randomize(rng);
        net.push(c2);
        net.push(Relu::new());
        net.push(GlobalAvgPool::new());
        let mut d = Dense::new(8, 1).unwrap();
        d.randomize(rng);
        net.push(d);
        net
    }

    #[test]
    fn quantized_network_tracks_float_network() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut net = trained_like_net(&mut rng);
        let qnet = QuantizedNetwork::from_sequential(&net).unwrap();
        assert_eq!(qnet.len(), net.len());
        assert!(!qnet.is_empty());

        let mut max_rel_err = 0.0f32;
        for _ in 0..10 {
            let input: Vec<f32> = (0..64).map(|_| rng.random_range(-1.0..1.0)).collect();
            let t = Tensor::from_vec(input, &[1, 64]).unwrap();
            let float_out = net.forward(&t).unwrap().as_slice()[0];
            let quant_out = qnet.forward(&t).unwrap().as_slice()[0];
            let rel = (float_out - quant_out).abs() / float_out.abs().max(0.1);
            max_rel_err = max_rel_err.max(rel);
        }
        assert!(
            max_rel_err < 0.12,
            "int8 inference should track f32, max rel err {max_rel_err}"
        );
    }

    #[test]
    fn weight_bytes_counts_int8_storage() {
        let mut rng = StdRng::seed_from_u64(6);
        let net = trained_like_net(&mut rng);
        let qnet = QuantizedNetwork::from_sequential(&net).unwrap();
        // conv1: 6*1*5 w + 6 b; conv2: 8*6*3 w + 8 b; dense: 8 w + 1 b.
        let expected = (6 * 5 + 8 * 6 * 3 + 8) + (6 + 8 + 1) * 4;
        assert_eq!(qnet.weight_bytes(), expected);
        // int8 weights are ~4x smaller than f32 weights.
        let float_bytes = net.parameter_count() * 4;
        assert!(qnet.weight_bytes() < float_bytes / 2);
    }

    #[test]
    fn empty_network_cannot_be_quantized() {
        let net = Sequential::new();
        assert!(matches!(
            QuantizedNetwork::from_sequential(&net),
            Err(TinyDlError::EmptyNetwork)
        ));
    }

    #[test]
    fn quantized_forward_rejects_wrong_input_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let net = trained_like_net(&mut rng);
        let qnet = QuantizedNetwork::from_sequential(&net).unwrap();
        let bad = Tensor::from_vec(vec![0.0; 64], &[2, 32]).unwrap();
        assert!(qnet.forward(&bad).is_err());
    }

    #[test]
    fn quantized_relu_clamps_negative_activations() {
        // Identity conv with negative bias then ReLU: output must be >= 0.
        let mut net = Sequential::new();
        let mut conv = Conv1d::new(1, 1, 1, 1, 1, true).unwrap();
        conv.randomize(&mut StdRng::seed_from_u64(8));
        net.push(conv);
        net.push(Relu::new());
        net.push(GlobalAvgPool::new());
        let qnet = QuantizedNetwork::from_sequential(&net).unwrap();
        let input = Tensor::from_vec(vec![-1.0; 16], &[1, 16]).unwrap();
        let out = qnet.forward(&input).unwrap();
        assert!(out.as_slice()[0] >= 0.0);
    }
}
