//! Regression losses with gradients.
//!
//! HR estimation is a scalar regression task; the TimePPG papers train with an
//! L1-flavoured loss (MAE) while MSE is the common default. Both are provided,
//! each returning the loss value and the gradient with respect to the
//! prediction so the training loop can feed it straight into
//! [`crate::network::Sequential::backward`].

use crate::tensor::Tensor;
use crate::TinyDlError;

/// Loss functions available to the training loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Mean squared error.
    MeanSquaredError,
    /// Mean absolute error (L1).
    MeanAbsoluteError,
}

impl Loss {
    /// Computes the loss value and its gradient with respect to `prediction`.
    ///
    /// # Errors
    ///
    /// Returns [`TinyDlError::InvalidShape`] when prediction and target have
    /// different lengths or are empty.
    pub fn evaluate(
        self,
        prediction: &Tensor,
        target: &Tensor,
    ) -> Result<(f32, Tensor), TinyDlError> {
        if prediction.len() != target.len() || prediction.is_empty() {
            return Err(TinyDlError::InvalidShape {
                op: "Loss::evaluate",
                expected: format!("non-empty tensors of equal length {}", prediction.len()),
                actual: target.shape().to_vec(),
            });
        }
        let n = prediction.len() as f32;
        let mut grad = prediction.clone();
        let mut loss = 0.0f32;
        for (g, (&p, &t)) in grad
            .as_mut_slice()
            .iter_mut()
            .zip(prediction.as_slice().iter().zip(target.as_slice()))
        {
            let d = p - t;
            match self {
                Loss::MeanSquaredError => {
                    loss += d * d;
                    *g = 2.0 * d / n;
                }
                Loss::MeanAbsoluteError => {
                    loss += d.abs();
                    *g = d.signum() / n;
                }
            }
        }
        Ok((loss / n, grad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_equal_tensors_is_zero() {
        let p = Tensor::from_slice(&[1.0, 2.0]);
        let (loss, grad) = Loss::MeanSquaredError.evaluate(&p, &p).unwrap();
        assert_eq!(loss, 0.0);
        assert!(grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mse_value_and_gradient() {
        let p = Tensor::from_slice(&[3.0]);
        let t = Tensor::from_slice(&[1.0]);
        let (loss, grad) = Loss::MeanSquaredError.evaluate(&p, &t).unwrap();
        assert!((loss - 4.0).abs() < 1e-6);
        assert!((grad.as_slice()[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn mae_value_and_gradient() {
        let p = Tensor::from_slice(&[3.0, -1.0]);
        let t = Tensor::from_slice(&[1.0, 1.0]);
        let (loss, grad) = Loss::MeanAbsoluteError.evaluate(&p, &t).unwrap();
        assert!((loss - 2.0).abs() < 1e-6);
        assert!((grad.as_slice()[0] - 0.5).abs() < 1e-6);
        assert!((grad.as_slice()[1] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let p = Tensor::from_slice(&[1.0, 2.0]);
        let t = Tensor::from_slice(&[1.0]);
        assert!(Loss::MeanSquaredError.evaluate(&p, &t).is_err());
        let empty = Tensor::from_slice(&[]);
        assert!(Loss::MeanAbsoluteError.evaluate(&empty, &empty).is_err());
    }

    #[test]
    fn mse_gradient_matches_numerical_derivative() {
        let t = Tensor::from_slice(&[2.0, -1.0, 0.5]);
        let p = Tensor::from_slice(&[1.0, 1.0, 1.0]);
        let (_, grad) = Loss::MeanSquaredError.evaluate(&p, &t).unwrap();
        let eps = 1e-3;
        for i in 0..p.len() {
            let mut plus = p.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = p.clone();
            minus.as_mut_slice()[i] -= eps;
            let (lp, _) = Loss::MeanSquaredError.evaluate(&plus, &t).unwrap();
            let (lm, _) = Loss::MeanSquaredError.evaluate(&minus, &t).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((numeric - grad.as_slice()[i]).abs() < 1e-2);
        }
    }
}
