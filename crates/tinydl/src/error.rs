//! Error type for the tinydl engine.

use std::fmt;

/// Errors produced while building or running networks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TinyDlError {
    /// A tensor was created with a shape that does not match its data length.
    ShapeMismatch {
        /// Expected number of elements implied by the shape.
        expected: usize,
        /// Actual number of elements provided.
        actual: usize,
    },
    /// An operation received a tensor with the wrong shape.
    InvalidShape {
        /// Name of the operation.
        op: &'static str,
        /// Human-readable description of the expected shape.
        expected: String,
        /// The shape that was provided.
        actual: Vec<usize>,
    },
    /// A layer was constructed with an invalid hyper-parameter.
    InvalidParameter {
        /// Name of the operation or layer.
        op: &'static str,
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the requirement.
        requirement: &'static str,
    },
    /// Backward was called before forward (no cached activation).
    MissingForwardPass {
        /// Name of the layer.
        layer: &'static str,
    },
    /// The network is empty.
    EmptyNetwork,
}

impl fmt::Display for TinyDlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TinyDlError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "shape mismatch: shape implies {expected} elements, data has {actual}"
                )
            }
            TinyDlError::InvalidShape {
                op,
                expected,
                actual,
            } => {
                write!(f, "{op}: expected shape {expected}, got {actual:?}")
            }
            TinyDlError::InvalidParameter {
                op,
                name,
                requirement,
            } => {
                write!(f, "{op}: invalid parameter `{name}` ({requirement})")
            }
            TinyDlError::MissingForwardPass { layer } => {
                write!(f, "{layer}: backward called before forward")
            }
            TinyDlError::EmptyNetwork => write!(f, "network contains no layers"),
        }
    }
}

impl std::error::Error for TinyDlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(TinyDlError::ShapeMismatch {
            expected: 4,
            actual: 3
        }
        .to_string()
        .contains('4'));
        assert!(TinyDlError::EmptyNetwork.to_string().contains("no layers"));
        assert!(TinyDlError::MissingForwardPass { layer: "conv1d" }
            .to_string()
            .contains("backward"));
        let e = TinyDlError::InvalidShape {
            op: "conv1d",
            expected: "[channels, length]".to_string(),
            actual: vec![3],
        };
        assert!(e.to_string().contains("conv1d"));
        let e = TinyDlError::InvalidParameter {
            op: "conv1d",
            name: "kernel",
            requirement: "must be non-zero",
        };
        assert!(e.to_string().contains("kernel"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TinyDlError>();
    }
}
