//! Network layers: 1-D convolution, dense, ReLU, pooling and flatten.
//!
//! Every layer implements the [`Layer`] trait: a forward pass that caches what
//! the backward pass needs, a backward pass that accumulates parameter
//! gradients and returns the gradient with respect to the input, plus
//! parameter and MAC counting used by the hardware model.

use rand::Rng;

use crate::tensor::Tensor;
use crate::TinyDlError;

/// Common interface of all layers.
pub trait Layer: std::fmt::Debug + Send {
    /// Short layer name used in error messages and summaries.
    fn name(&self) -> &'static str;

    /// Computes the layer output, caching activations needed by backward.
    ///
    /// # Errors
    ///
    /// Returns [`TinyDlError::InvalidShape`] when the input does not match the
    /// layer's expected shape.
    fn forward(&mut self, input: &Tensor) -> Result<Tensor, TinyDlError>;

    /// Propagates the output gradient back to the input, accumulating
    /// parameter gradients.
    ///
    /// # Errors
    ///
    /// Returns [`TinyDlError::MissingForwardPass`] if called before
    /// [`Layer::forward`].
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, TinyDlError>;

    /// Output shape for a given input shape, without running the layer.
    ///
    /// # Errors
    ///
    /// Returns [`TinyDlError::InvalidShape`] when the input shape is not
    /// supported.
    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>, TinyDlError>;

    /// Number of trainable parameters.
    fn parameter_count(&self) -> usize {
        0
    }

    /// Multiply-accumulate operations for one forward pass on the given input
    /// shape.
    ///
    /// # Errors
    ///
    /// Returns [`TinyDlError::InvalidShape`] when the input shape is not
    /// supported.
    fn macs(&self, input_shape: &[usize]) -> Result<u64, TinyDlError> {
        let _ = input_shape;
        Ok(0)
    }

    /// Applies one SGD step with learning rate `lr` and clears the gradients.
    fn apply_gradients(&mut self, lr: f32) {
        let _ = lr;
    }

    /// Clears accumulated gradients.
    fn zero_gradients(&mut self) {}

    /// Dynamic-cast support, used by the post-training quantizer to recognize
    /// concrete layer types inside a [`crate::network::Sequential`].
    fn as_any(&self) -> &dyn std::any::Any;
}

fn deterministic_uniform(seed: &mut u64) -> f32 {
    // xorshift64* — deterministic weight init without threading an RNG through
    // every constructor.
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    let x = (*seed >> 11) as f64 / (1u64 << 53) as f64;
    (x * 2.0 - 1.0) as f32
}

// ---------------------------------------------------------------------------
// Conv1d
// ---------------------------------------------------------------------------

/// 1-D convolution over `[channels, length]` tensors with dilation and stride.
///
/// With `same_padding` the input is zero-padded by `dilation * (kernel - 1) / 2`
/// on both sides so a stride-1 convolution preserves the temporal length; a
/// stride-`s` convolution then produces `ceil(length / s)` samples, which is
/// the behaviour of the TimePPG blocks.
#[derive(Debug, Clone)]
pub struct Conv1d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    dilation: usize,
    padding: usize,
    /// Weights laid out as `[out_channels][in_channels][kernel]`.
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Conv1d {
    /// Creates a convolution layer with deterministic Xavier-style weights.
    ///
    /// # Errors
    ///
    /// Returns [`TinyDlError::InvalidParameter`] when any of the channel,
    /// kernel, stride or dilation arguments is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        dilation: usize,
        same_padding: bool,
    ) -> Result<Self, TinyDlError> {
        for (name, v) in [
            ("in_channels", in_channels),
            ("out_channels", out_channels),
            ("kernel", kernel),
            ("stride", stride),
            ("dilation", dilation),
        ] {
            if v == 0 {
                return Err(TinyDlError::InvalidParameter {
                    op: "Conv1d::new",
                    name,
                    requirement: "must be non-zero",
                });
            }
        }
        let padding = if same_padding {
            dilation * (kernel - 1) / 2
        } else {
            0
        };
        let n_weights = out_channels * in_channels * kernel;
        let scale = (2.0 / (in_channels * kernel) as f32).sqrt();
        let mut seed = 0x9E37_79B9_7F4A_7C15u64
            ^ ((in_channels as u64) << 32 | (out_channels as u64) << 16 | kernel as u64);
        let weights = (0..n_weights)
            .map(|_| scale * deterministic_uniform(&mut seed))
            .collect();
        Ok(Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            dilation,
            padding,
            weights,
            bias: vec![0.0; out_channels],
            grad_weights: vec![0.0; n_weights],
            grad_bias: vec![0.0; out_channels],
            cached_input: None,
        })
    }

    /// Re-initializes the weights from the provided random-number generator
    /// (Xavier-uniform). Useful when training several models that must not
    /// share an initialization.
    pub fn randomize<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let scale = (2.0 / (self.in_channels * self.kernel) as f32).sqrt();
        for w in &mut self.weights {
            *w = rng.random_range(-scale..scale);
        }
        for b in &mut self.bias {
            *b = 0.0;
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels (filters).
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Dilation factor.
    pub fn dilation(&self) -> usize {
        self.dilation
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    fn check_input(&self, shape: &[usize]) -> Result<usize, TinyDlError> {
        if shape.len() != 2 || shape[0] != self.in_channels {
            return Err(TinyDlError::InvalidShape {
                op: "Conv1d",
                expected: format!("[{}, length]", self.in_channels),
                actual: shape.to_vec(),
            });
        }
        Ok(shape[1])
    }

    fn out_len(&self, in_len: usize) -> usize {
        let span = self.dilation * (self.kernel - 1);
        let padded = in_len + 2 * self.padding;
        if padded <= span {
            0
        } else {
            (padded - span - 1) / self.stride + 1
        }
    }

    fn weight(&self, oc: usize, ic: usize, k: usize) -> f32 {
        self.weights[(oc * self.in_channels + ic) * self.kernel + k]
    }

    /// Read-only access to the flat weight buffer (`[out][in][kernel]` order).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Read-only access to the bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }
}

impl Layer for Conv1d {
    fn name(&self) -> &'static str {
        "conv1d"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, TinyDlError> {
        let in_len = self.check_input(input.shape())?;
        let out_len = self.out_len(in_len);
        let mut out = Tensor::zeros(&[self.out_channels, out_len])?;
        for oc in 0..self.out_channels {
            for t in 0..out_len {
                let mut acc = self.bias[oc];
                for ic in 0..self.in_channels {
                    for k in 0..self.kernel {
                        let pos =
                            (t * self.stride + k * self.dilation) as isize - self.padding as isize;
                        if pos >= 0 && (pos as usize) < in_len {
                            acc += self.weight(oc, ic, k) * input.at(ic, pos as usize);
                        }
                    }
                }
                out.set(oc, t, acc);
            }
        }
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, TinyDlError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(TinyDlError::MissingForwardPass { layer: "conv1d" })?;
        let in_len = input.shape()[1];
        let out_len = self.out_len(in_len);
        if grad_output.shape() != [self.out_channels, out_len] {
            return Err(TinyDlError::InvalidShape {
                op: "Conv1d::backward",
                expected: format!("[{}, {}]", self.out_channels, out_len),
                actual: grad_output.shape().to_vec(),
            });
        }
        let mut grad_input = Tensor::zeros(&[self.in_channels, in_len])?;
        for oc in 0..self.out_channels {
            for t in 0..out_len {
                let go = grad_output.at(oc, t);
                self.grad_bias[oc] += go;
                for ic in 0..self.in_channels {
                    for k in 0..self.kernel {
                        let pos =
                            (t * self.stride + k * self.dilation) as isize - self.padding as isize;
                        if pos >= 0 && (pos as usize) < in_len {
                            let pos = pos as usize;
                            let widx = (oc * self.in_channels + ic) * self.kernel + k;
                            self.grad_weights[widx] += go * input.at(ic, pos);
                            let gi = grad_input.at(ic, pos) + go * self.weights[widx];
                            grad_input.set(ic, pos, gi);
                        }
                    }
                }
            }
        }
        Ok(grad_input)
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>, TinyDlError> {
        let in_len = self.check_input(input_shape)?;
        Ok(vec![self.out_channels, self.out_len(in_len)])
    }

    fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn macs(&self, input_shape: &[usize]) -> Result<u64, TinyDlError> {
        let in_len = self.check_input(input_shape)?;
        let out_len = self.out_len(in_len) as u64;
        Ok(out_len * self.out_channels as u64 * self.in_channels as u64 * self.kernel as u64)
    }

    fn apply_gradients(&mut self, lr: f32) {
        for (w, g) in self.weights.iter_mut().zip(&self.grad_weights) {
            *w -= lr * g;
        }
        for (b, g) in self.bias.iter_mut().zip(&self.grad_bias) {
            *b -= lr * g;
        }
        self.zero_gradients();
    }

    fn zero_gradients(&mut self) {
        self.grad_weights.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }
}

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

/// Fully connected layer over rank-1 tensors.
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    /// Weights laid out as `[out_features][in_features]`.
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with deterministic Xavier-style weights.
    ///
    /// # Errors
    ///
    /// Returns [`TinyDlError::InvalidParameter`] when either dimension is zero.
    pub fn new(in_features: usize, out_features: usize) -> Result<Self, TinyDlError> {
        if in_features == 0 || out_features == 0 {
            return Err(TinyDlError::InvalidParameter {
                op: "Dense::new",
                name: "features",
                requirement: "input and output feature counts must be non-zero",
            });
        }
        let scale = (2.0 / in_features as f32).sqrt();
        let mut seed =
            0xD6E8_FEB8_6659_FD93u64 ^ ((in_features as u64) << 20 | out_features as u64);
        let weights = (0..in_features * out_features)
            .map(|_| scale * deterministic_uniform(&mut seed))
            .collect();
        Ok(Self {
            in_features,
            out_features,
            weights,
            bias: vec![0.0; out_features],
            grad_weights: vec![0.0; in_features * out_features],
            grad_bias: vec![0.0; out_features],
            cached_input: None,
        })
    }

    /// Re-initializes the weights from a random-number generator.
    pub fn randomize<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let scale = (2.0 / self.in_features as f32).sqrt();
        for w in &mut self.weights {
            *w = rng.random_range(-scale..scale);
        }
        for b in &mut self.bias {
            *b = 0.0;
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Read-only access to the flat weight buffer (`[out][in]` order).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Read-only access to the bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    fn check_input(&self, shape: &[usize]) -> Result<(), TinyDlError> {
        let flat: usize = shape.iter().product();
        if flat != self.in_features {
            return Err(TinyDlError::InvalidShape {
                op: "Dense",
                expected: format!("[{}]", self.in_features),
                actual: shape.to_vec(),
            });
        }
        Ok(())
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, TinyDlError> {
        self.check_input(input.shape())?;
        let x = input.as_slice();
        let mut out = vec![0.0f32; self.out_features];
        for (o, out_val) in out.iter_mut().enumerate() {
            let row = &self.weights[o * self.in_features..(o + 1) * self.in_features];
            *out_val = self.bias[o] + row.iter().zip(x).map(|(&w, &xv)| w * xv).sum::<f32>();
        }
        self.cached_input = Some(input.clone());
        Tensor::from_vec(out, &[self.out_features])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, TinyDlError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(TinyDlError::MissingForwardPass { layer: "dense" })?;
        if grad_output.len() != self.out_features {
            return Err(TinyDlError::InvalidShape {
                op: "Dense::backward",
                expected: format!("[{}]", self.out_features),
                actual: grad_output.shape().to_vec(),
            });
        }
        let x = input.as_slice();
        let go = grad_output.as_slice();
        let mut grad_input = vec![0.0f32; self.in_features];
        for (o, &go_o) in go.iter().enumerate().take(self.out_features) {
            self.grad_bias[o] += go_o;
            for i in 0..self.in_features {
                self.grad_weights[o * self.in_features + i] += go_o * x[i];
                grad_input[i] += go_o * self.weights[o * self.in_features + i];
            }
        }
        Tensor::from_vec(grad_input, &[self.in_features])
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>, TinyDlError> {
        self.check_input(input_shape)?;
        Ok(vec![self.out_features])
    }

    fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn macs(&self, input_shape: &[usize]) -> Result<u64, TinyDlError> {
        self.check_input(input_shape)?;
        Ok(self.in_features as u64 * self.out_features as u64)
    }

    fn apply_gradients(&mut self, lr: f32) {
        for (w, g) in self.weights.iter_mut().zip(&self.grad_weights) {
            *w -= lr * g;
        }
        for (b, g) in self.bias.iter_mut().zip(&self.grad_bias) {
            *b -= lr * g;
        }
        self.zero_gradients();
    }

    fn zero_gradients(&mut self) {
        self.grad_weights.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }
}

// ---------------------------------------------------------------------------
// ReLU
// ---------------------------------------------------------------------------

/// Rectified linear unit, applied element-wise.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, TinyDlError> {
        let mut out = input.clone();
        let mask: Vec<bool> = input.as_slice().iter().map(|&x| x > 0.0).collect();
        for (v, &keep) in out.as_mut_slice().iter_mut().zip(&mask) {
            if !keep {
                *v = 0.0;
            }
        }
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, TinyDlError> {
        let mask = self
            .mask
            .as_ref()
            .ok_or(TinyDlError::MissingForwardPass { layer: "relu" })?;
        if mask.len() != grad_output.len() {
            return Err(TinyDlError::InvalidShape {
                op: "Relu::backward",
                expected: format!("{} elements", mask.len()),
                actual: grad_output.shape().to_vec(),
            });
        }
        let mut out = grad_output.clone();
        for (v, &keep) in out.as_mut_slice().iter_mut().zip(mask) {
            if !keep {
                *v = 0.0;
            }
        }
        Ok(out)
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>, TinyDlError> {
        Ok(input_shape.to_vec())
    }
}

// ---------------------------------------------------------------------------
// GlobalAvgPool
// ---------------------------------------------------------------------------

/// Global average pooling over the temporal dimension: `[C, L]` → `[C]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    cached_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        Self::default()
    }

    fn check(&self, shape: &[usize]) -> Result<(), TinyDlError> {
        if shape.len() != 2 || shape[1] == 0 {
            return Err(TinyDlError::InvalidShape {
                op: "GlobalAvgPool",
                expected: "[channels, length >= 1]".to_string(),
                actual: shape.to_vec(),
            });
        }
        Ok(())
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &'static str {
        "global_avg_pool"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, TinyDlError> {
        self.check(input.shape())?;
        let (c, l) = (input.rows(), input.cols());
        let mut out = vec![0.0f32; c];
        for (ch, out_val) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for t in 0..l {
                acc += input.at(ch, t);
            }
            *out_val = acc / l as f32;
        }
        self.cached_shape = Some(input.shape().to_vec());
        Tensor::from_vec(out, &[c])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, TinyDlError> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or(TinyDlError::MissingForwardPass {
                layer: "global_avg_pool",
            })?;
        let (c, l) = (shape[0], shape[1]);
        if grad_output.len() != c {
            return Err(TinyDlError::InvalidShape {
                op: "GlobalAvgPool::backward",
                expected: format!("[{c}]"),
                actual: grad_output.shape().to_vec(),
            });
        }
        let mut grad = Tensor::zeros(&[c, l])?;
        for ch in 0..c {
            let g = grad_output.as_slice()[ch] / l as f32;
            for t in 0..l {
                grad.set(ch, t, g);
            }
        }
        Ok(grad)
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>, TinyDlError> {
        self.check(input_shape)?;
        Ok(vec![input_shape[0]])
    }
}

// ---------------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------------

/// Flattens any tensor into a rank-1 tensor.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, TinyDlError> {
        self.cached_shape = Some(input.shape().to_vec());
        input.reshape(&[input.len()])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, TinyDlError> {
        let shape = self
            .cached_shape
            .as_ref()
            .ok_or(TinyDlError::MissingForwardPass { layer: "flatten" })?;
        grad_output.reshape(shape)
    }

    fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>, TinyDlError> {
        Ok(vec![input_shape.iter().product()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv1d_rejects_zero_parameters() {
        assert!(Conv1d::new(0, 1, 3, 1, 1, true).is_err());
        assert!(Conv1d::new(1, 0, 3, 1, 1, true).is_err());
        assert!(Conv1d::new(1, 1, 0, 1, 1, true).is_err());
        assert!(Conv1d::new(1, 1, 3, 0, 1, true).is_err());
        assert!(Conv1d::new(1, 1, 3, 1, 0, true).is_err());
    }

    #[test]
    fn conv1d_identity_kernel_preserves_signal() {
        // kernel = 1, weight = 1, bias = 0 -> output == input.
        let mut conv = Conv1d::new(1, 1, 1, 1, 1, true).unwrap();
        conv.weights[0] = 1.0;
        conv.bias[0] = 0.0;
        let input = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], &[1, 4]).unwrap();
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), &[1, 4]);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn conv1d_same_padding_preserves_length() {
        let mut conv = Conv1d::new(2, 3, 3, 1, 2, true).unwrap();
        let input = Tensor::zeros(&[2, 64]).unwrap();
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), &[3, 64]);
        assert_eq!(conv.output_shape(&[2, 64]).unwrap(), vec![3, 64]);
    }

    #[test]
    fn conv1d_stride_halves_length() {
        let conv = Conv1d::new(4, 4, 3, 2, 1, true).unwrap();
        assert_eq!(conv.output_shape(&[4, 64]).unwrap(), vec![4, 32]);
        assert_eq!(conv.output_shape(&[4, 63]).unwrap(), vec![4, 32]);
    }

    #[test]
    fn conv1d_moving_average_kernel() {
        let mut conv = Conv1d::new(1, 1, 3, 1, 1, false).unwrap();
        conv.weights.copy_from_slice(&[1.0 / 3.0; 3]);
        conv.bias[0] = 0.0;
        let input = Tensor::from_vec(vec![3.0, 6.0, 9.0, 12.0], &[1, 4]).unwrap();
        let out = conv.forward(&input).unwrap();
        assert_eq!(out.shape(), &[1, 2]);
        assert!((out.at(0, 0) - 6.0).abs() < 1e-5);
        assert!((out.at(0, 1) - 9.0).abs() < 1e-5);
    }

    #[test]
    fn conv1d_rejects_wrong_channel_count() {
        let mut conv = Conv1d::new(2, 1, 3, 1, 1, true).unwrap();
        let input = Tensor::zeros(&[3, 16]).unwrap();
        assert!(conv.forward(&input).is_err());
        assert!(conv.macs(&[3, 16]).is_err());
    }

    #[test]
    fn conv1d_macs_formula() {
        let conv = Conv1d::new(2, 8, 5, 1, 1, true).unwrap();
        // out_len = 64, macs = 64 * 8 * 2 * 5
        assert_eq!(conv.macs(&[2, 64]).unwrap(), 64 * 8 * 2 * 5);
        assert_eq!(conv.parameter_count(), 8 * 2 * 5 + 8);
    }

    #[test]
    fn conv1d_backward_requires_forward() {
        let mut conv = Conv1d::new(1, 1, 3, 1, 1, true).unwrap();
        let grad = Tensor::zeros(&[1, 4]).unwrap();
        assert!(matches!(
            conv.backward(&grad),
            Err(TinyDlError::MissingForwardPass { .. })
        ));
    }

    #[test]
    fn conv1d_gradient_check() {
        // Numerical gradient check on a tiny convolution.
        let mut conv = Conv1d::new(1, 1, 3, 1, 1, true).unwrap();
        let input = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.25, -0.75], &[1, 5]).unwrap();
        let out = conv.forward(&input).unwrap();
        // Loss = sum(out); dLoss/dout = 1.
        let grad_out = Tensor::from_vec(vec![1.0; out.len()], out.shape()).unwrap();
        let grad_in = conv.backward(&grad_out).unwrap();

        let eps = 1e-3f32;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[i] -= eps;
            let f_plus: f32 = conv.forward(&plus).unwrap().as_slice().iter().sum();
            let f_minus: f32 = conv.forward(&minus).unwrap().as_slice().iter().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (numeric - grad_in.as_slice()[i]).abs() < 1e-2,
                "input grad {i}: numeric {numeric} vs analytic {}",
                grad_in.as_slice()[i]
            );
        }
    }

    #[test]
    fn conv1d_weight_gradient_check() {
        let mut conv = Conv1d::new(1, 2, 3, 1, 1, true).unwrap();
        let input = Tensor::from_vec(vec![0.3, -0.6, 1.2, 0.9], &[1, 4]).unwrap();
        let out = conv.forward(&input).unwrap();
        let grad_out = Tensor::from_vec(vec![1.0; out.len()], out.shape()).unwrap();
        conv.zero_gradients();
        conv.forward(&input).unwrap();
        conv.backward(&grad_out).unwrap();
        let analytic = conv.grad_weights.clone();

        let eps = 1e-3f32;
        for (w_idx, &analytic_grad) in analytic.iter().enumerate() {
            let orig = conv.weights[w_idx];
            conv.weights[w_idx] = orig + eps;
            let f_plus: f32 = conv.forward(&input).unwrap().as_slice().iter().sum();
            conv.weights[w_idx] = orig - eps;
            let f_minus: f32 = conv.forward(&input).unwrap().as_slice().iter().sum();
            conv.weights[w_idx] = orig;
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!(
                (numeric - analytic_grad).abs() < 1e-2,
                "weight grad {w_idx}: numeric {numeric} vs analytic {analytic_grad}"
            );
        }
    }

    #[test]
    fn dense_forward_matches_manual_computation() {
        let mut dense = Dense::new(3, 2).unwrap();
        dense
            .weights
            .copy_from_slice(&[1.0, 0.0, -1.0, 0.5, 0.5, 0.5]);
        dense.bias.copy_from_slice(&[1.0, -1.0]);
        let input = Tensor::from_slice(&[2.0, 4.0, 6.0]);
        let out = dense.forward(&input).unwrap();
        assert!((out.as_slice()[0] - (2.0 - 6.0 + 1.0)).abs() < 1e-6);
        assert!((out.as_slice()[1] - (1.0 + 2.0 + 3.0 - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn dense_rejects_zero_dims_and_bad_input() {
        assert!(Dense::new(0, 2).is_err());
        assert!(Dense::new(2, 0).is_err());
        let mut dense = Dense::new(4, 2).unwrap();
        assert!(dense.forward(&Tensor::from_slice(&[1.0, 2.0])).is_err());
    }

    #[test]
    fn dense_gradient_check() {
        let mut dense = Dense::new(4, 3).unwrap();
        let input = Tensor::from_slice(&[0.5, -0.25, 1.5, -2.0]);
        let out = dense.forward(&input).unwrap();
        let grad_out = Tensor::from_vec(vec![1.0; out.len()], out.shape()).unwrap();
        let grad_in = dense.backward(&grad_out).unwrap();
        let eps = 1e-3f32;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[i] -= eps;
            let f_plus: f32 = dense.forward(&plus).unwrap().as_slice().iter().sum();
            let f_minus: f32 = dense.forward(&minus).unwrap().as_slice().iter().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            assert!((numeric - grad_in.as_slice()[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn dense_macs_and_params() {
        let dense = Dense::new(16, 4).unwrap();
        assert_eq!(dense.macs(&[16]).unwrap(), 64);
        assert_eq!(dense.parameter_count(), 16 * 4 + 4);
        assert_eq!(dense.output_shape(&[16]).unwrap(), vec![4]);
        assert_eq!(dense.in_features(), 16);
        assert_eq!(dense.out_features(), 4);
    }

    #[test]
    fn relu_clamps_negatives_and_masks_gradient() {
        let mut relu = Relu::new();
        let input = Tensor::from_slice(&[-1.0, 2.0, -3.0, 4.0]);
        let out = relu.forward(&input).unwrap();
        assert_eq!(out.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let grad = relu
            .backward(&Tensor::from_slice(&[1.0, 1.0, 1.0, 1.0]))
            .unwrap();
        assert_eq!(grad.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
        assert_eq!(relu.output_shape(&[1, 4]).unwrap(), vec![1, 4]);
        assert_eq!(relu.parameter_count(), 0);
    }

    #[test]
    fn relu_backward_without_forward_fails() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::from_slice(&[1.0])).is_err());
    }

    #[test]
    fn global_avg_pool_averages_channels() {
        let mut pool = GlobalAvgPool::new();
        let input =
            Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 2.0, 2.0], &[2, 4]).unwrap();
        let out = pool.forward(&input).unwrap();
        assert_eq!(out.shape(), &[2]);
        assert!((out.as_slice()[0] - 4.0).abs() < 1e-6);
        assert!((out.as_slice()[1] - 2.0).abs() < 1e-6);
        let grad = pool.backward(&Tensor::from_slice(&[4.0, 8.0])).unwrap();
        assert_eq!(grad.shape(), &[2, 4]);
        assert!((grad.at(0, 0) - 1.0).abs() < 1e-6);
        assert!((grad.at(1, 3) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn global_avg_pool_rejects_rank1() {
        let mut pool = GlobalAvgPool::new();
        assert!(pool.forward(&Tensor::from_slice(&[1.0, 2.0])).is_err());
        assert!(pool.output_shape(&[4]).is_err());
    }

    #[test]
    fn flatten_round_trip() {
        let mut flatten = Flatten::new();
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let out = flatten.forward(&input).unwrap();
        assert_eq!(out.shape(), &[6]);
        let grad = flatten.backward(&out).unwrap();
        assert_eq!(grad.shape(), &[2, 3]);
        assert_eq!(flatten.output_shape(&[2, 3]).unwrap(), vec![6]);
    }

    #[test]
    fn sgd_step_reduces_simple_loss() {
        // One dense layer trained to map x -> 2x.
        let mut dense = Dense::new(1, 1).unwrap();
        let inputs = [0.5f32, 1.0, -1.0, 2.0];
        let lr = 0.05;
        let loss_of = |d: &mut Dense| -> f32 {
            inputs
                .iter()
                .map(|&x| {
                    let y = d.forward(&Tensor::from_slice(&[x])).unwrap().as_slice()[0];
                    (y - 2.0 * x).powi(2)
                })
                .sum()
        };
        let before = loss_of(&mut dense);
        for _ in 0..200 {
            for &x in &inputs {
                let y = dense.forward(&Tensor::from_slice(&[x])).unwrap().as_slice()[0];
                let grad = Tensor::from_slice(&[2.0 * (y - 2.0 * x)]);
                dense.backward(&grad).unwrap();
                dense.apply_gradients(lr);
            }
        }
        let after = loss_of(&mut dense);
        assert!(
            after < before * 0.01,
            "training should reduce loss: {before} -> {after}"
        );
    }

    #[test]
    fn randomize_changes_weights() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut conv = Conv1d::new(1, 4, 3, 1, 1, true).unwrap();
        let before = conv.weights().to_vec();
        conv.randomize(&mut StdRng::seed_from_u64(1));
        assert_ne!(before, conv.weights());
        let mut dense = Dense::new(4, 2).unwrap();
        let before = dense.weights().to_vec();
        dense.randomize(&mut StdRng::seed_from_u64(1));
        assert_ne!(before, dense.weights());
    }

    #[test]
    fn accessors_report_hyperparameters() {
        let conv = Conv1d::new(3, 8, 5, 2, 4, true).unwrap();
        assert_eq!(conv.in_channels(), 3);
        assert_eq!(conv.out_channels(), 8);
        assert_eq!(conv.stride(), 2);
        assert_eq!(conv.dilation(), 4);
        assert_eq!(conv.bias().len(), 8);
    }
}
