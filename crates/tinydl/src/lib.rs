//! # tinydl — a minimal deep-learning engine for temporal convolutional networks
//!
//! The CHRIS paper deploys two temporal convolutional networks (TCNs),
//! **TimePPG-Small** and **TimePPG-Big**, on an STM32WB55 MCU through
//! X-CUBE-AI and on a Raspberry Pi3 through the TensorFlow-Lite interpreter,
//! both with 8-bit post-training/QAT quantization.  Neither toolchain is
//! available as a Rust library, so this crate provides the substrate the
//! reproduction needs:
//!
//! * [`tensor::Tensor`] — a small dense `f32` tensor with a `[channels, length]`
//!   layout for 1-D signals,
//! * layers — [`layers::Conv1d`] (arbitrary dilation, stride and padding),
//!   [`layers::Dense`], [`layers::Relu`], [`layers::GlobalAvgPool`] and
//!   [`layers::Flatten`], each implementing forward, backward and
//!   parameter/MAC counting,
//! * [`network::Sequential`] — a feed-forward container with SGD training,
//! * [`loss`] — MSE and L1 losses with gradients,
//! * [`quant`] — symmetric int8 post-training quantization of a trained
//!   network plus a quantized inference path (int8 storage, i32 accumulation),
//!   the same arithmetic the deployed models use.
//!
//! The engine favours clarity over speed: networks of a few hundred thousand
//! MACs per inference (the TimePPG sizes) run comfortably on a host machine,
//! which is all the experiments require.  MAC counts — not wall-clock time —
//! feed the hardware model in `hw-sim`.
//!
//! ## Example
//!
//! ```
//! use tinydl::layers::{Conv1d, Dense, GlobalAvgPool, Relu};
//! use tinydl::network::Sequential;
//! use tinydl::tensor::Tensor;
//!
//! # fn main() -> Result<(), tinydl::TinyDlError> {
//! // A toy TCN: 1 input channel, 4 filters, global pooling, 1 output.
//! let mut net = Sequential::new();
//! net.push(Conv1d::new(1, 4, 3, 1, 1, true)?);
//! net.push(Relu::new());
//! net.push(GlobalAvgPool::new());
//! net.push(Dense::new(4, 1)?);
//!
//! let input = Tensor::from_vec(vec![0.5; 64], &[1, 64])?;
//! let output = net.forward(&input)?;
//! assert_eq!(output.len(), 1);
//! assert!(net.parameter_count() > 0);
//! assert!(net.macs(&[1, 64])? > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod layers;
pub mod loss;
pub mod network;
pub mod quant;
pub mod tensor;

pub use error::TinyDlError;
pub use network::Sequential;
pub use tensor::Tensor;
