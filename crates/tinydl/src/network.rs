//! Sequential network container with SGD training.

use rand::Rng;

use crate::layers::Layer;
use crate::loss::Loss;
use crate::tensor::Tensor;
use crate::TinyDlError;

/// A feed-forward stack of layers executed in order.
///
/// # Examples
///
/// ```
/// use tinydl::layers::{Dense, Relu};
/// use tinydl::network::Sequential;
/// use tinydl::tensor::Tensor;
///
/// # fn main() -> Result<(), tinydl::TinyDlError> {
/// let mut net = Sequential::new();
/// net.push(Dense::new(4, 8)?);
/// net.push(Relu::new());
/// net.push(Dense::new(8, 1)?);
/// let y = net.forward(&Tensor::from_slice(&[0.1, 0.2, 0.3, 0.4]))?;
/// assert_eq!(y.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer to the end of the network.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Read-only access to the layers.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to the layers (used by the quantizer).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Runs a forward pass through every layer.
    ///
    /// # Errors
    ///
    /// Returns [`TinyDlError::EmptyNetwork`] for an empty network and
    /// propagates shape errors from individual layers.
    pub fn forward(&mut self, input: &Tensor) -> Result<Tensor, TinyDlError> {
        if self.layers.is_empty() {
            return Err(TinyDlError::EmptyNetwork);
        }
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x)?;
        }
        Ok(x)
    }

    /// Propagates a gradient from the output back to the input.
    ///
    /// # Errors
    ///
    /// Returns [`TinyDlError::EmptyNetwork`] for an empty network and
    /// propagates shape errors from individual layers.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, TinyDlError> {
        if self.layers.is_empty() {
            return Err(TinyDlError::EmptyNetwork);
        }
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// Applies one SGD step to every layer and clears gradients.
    pub fn apply_gradients(&mut self, learning_rate: f32) {
        for layer in &mut self.layers {
            layer.apply_gradients(learning_rate);
        }
    }

    /// Clears all accumulated gradients.
    pub fn zero_gradients(&mut self) {
        for layer in &mut self.layers {
            layer.zero_gradients();
        }
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.parameter_count()).sum()
    }

    /// Total multiply-accumulate operations of one forward pass on an input of
    /// the given shape.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from individual layers.
    pub fn macs(&self, input_shape: &[usize]) -> Result<u64, TinyDlError> {
        let mut shape = input_shape.to_vec();
        let mut total = 0u64;
        for layer in &self.layers {
            total += layer.macs(&shape)?;
            shape = layer.output_shape(&shape)?;
        }
        Ok(total)
    }

    /// Output shape for a given input shape.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from individual layers.
    pub fn output_shape(&self, input_shape: &[usize]) -> Result<Vec<usize>, TinyDlError> {
        let mut shape = input_shape.to_vec();
        for layer in &self.layers {
            shape = layer.output_shape(&shape)?;
        }
        Ok(shape)
    }

    /// One training step on a single sample: forward, loss, backward, SGD.
    ///
    /// Returns the loss value before the update.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the layers and the loss.
    pub fn train_step(
        &mut self,
        input: &Tensor,
        target: &Tensor,
        loss: Loss,
        learning_rate: f32,
    ) -> Result<f32, TinyDlError> {
        let prediction = self.forward(input)?;
        let (value, grad) = loss.evaluate(&prediction, target)?;
        self.backward(&grad)?;
        self.apply_gradients(learning_rate);
        Ok(value)
    }

    /// Trains for `epochs` passes over `(input, target)` pairs, shuffling the
    /// order each epoch with `rng`. Returns the mean loss of the final epoch.
    ///
    /// # Errors
    ///
    /// Propagates shape errors; returns [`TinyDlError::EmptyNetwork`] when the
    /// network has no layers.
    pub fn fit<R: Rng + ?Sized>(
        &mut self,
        samples: &[(Tensor, Tensor)],
        loss: Loss,
        learning_rate: f32,
        epochs: usize,
        rng: &mut R,
    ) -> Result<f32, TinyDlError> {
        if self.layers.is_empty() {
            return Err(TinyDlError::EmptyNetwork);
        }
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut last_epoch_loss = 0.0f32;
        for _ in 0..epochs {
            // Fisher–Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0f32;
            for &idx in &order {
                let (input, target) = &samples[idx];
                epoch_loss += self.train_step(input, target, loss, learning_rate)?;
            }
            last_epoch_loss = if samples.is_empty() {
                0.0
            } else {
                epoch_loss / samples.len() as f32
            };
        }
        Ok(last_epoch_loss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv1d, Dense, Flatten, GlobalAvgPool, Relu};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_tcn() -> Sequential {
        let mut net = Sequential::new();
        net.push(Conv1d::new(1, 4, 3, 1, 1, true).unwrap());
        net.push(Relu::new());
        net.push(Conv1d::new(4, 4, 3, 2, 2, true).unwrap());
        net.push(Relu::new());
        net.push(GlobalAvgPool::new());
        net.push(Dense::new(4, 1).unwrap());
        net
    }

    #[test]
    fn empty_network_is_rejected() {
        let mut net = Sequential::new();
        assert!(net.is_empty());
        assert!(matches!(
            net.forward(&Tensor::from_slice(&[1.0])),
            Err(TinyDlError::EmptyNetwork)
        ));
        assert!(matches!(
            net.backward(&Tensor::from_slice(&[1.0])),
            Err(TinyDlError::EmptyNetwork)
        ));
    }

    #[test]
    fn forward_produces_scalar_output() {
        let mut net = toy_tcn();
        assert_eq!(net.len(), 6);
        let input = Tensor::from_vec(vec![0.5; 64], &[1, 64]).unwrap();
        let out = net.forward(&input).unwrap();
        assert_eq!(out.shape(), &[1]);
        assert!(out.as_slice()[0].is_finite());
    }

    #[test]
    fn output_shape_matches_forward() {
        let mut net = toy_tcn();
        let input = Tensor::from_vec(vec![0.5; 64], &[1, 64]).unwrap();
        let out = net.forward(&input).unwrap();
        assert_eq!(net.output_shape(&[1, 64]).unwrap(), out.shape().to_vec());
    }

    #[test]
    fn macs_and_parameters_are_positive_and_consistent() {
        let net = toy_tcn();
        let macs = net.macs(&[1, 64]).unwrap();
        // conv1: 64*4*1*3 = 768, conv2: 32*4*4*3 = 1536, dense: 4.
        assert_eq!(macs, 768 + 1536 + 4);
        assert_eq!(
            net.parameter_count(),
            (4 * 3 + 4) + (4 * 4 * 3 + 4) + (4 + 1)
        );
    }

    #[test]
    fn flatten_variant_has_more_dense_parameters() {
        let mut net = Sequential::new();
        net.push(Conv1d::new(1, 2, 3, 1, 1, true).unwrap());
        net.push(Flatten::new());
        net.push(Dense::new(2 * 16, 1).unwrap());
        let out = net
            .forward(&Tensor::from_vec(vec![0.1; 16], &[1, 16]).unwrap())
            .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn training_reduces_loss_on_regression_task() {
        // Learn to predict the mean of the input window scaled by 2.
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = Sequential::new();
        let mut c = Conv1d::new(1, 4, 3, 1, 1, true).unwrap();
        c.randomize(&mut rng);
        net.push(c);
        net.push(Relu::new());
        net.push(GlobalAvgPool::new());
        let mut d = Dense::new(4, 1).unwrap();
        d.randomize(&mut rng);
        net.push(d);

        let samples: Vec<(Tensor, Tensor)> = (0..32)
            .map(|i| {
                let level = (i as f32) / 16.0 - 1.0;
                let input = Tensor::from_vec(vec![level; 32], &[1, 32]).unwrap();
                let target = Tensor::from_slice(&[2.0 * level]);
                (input, target)
            })
            .collect();

        let initial: f32 = samples
            .iter()
            .map(|(x, t)| {
                let y = net.forward(x).unwrap();
                (y.as_slice()[0] - t.as_slice()[0]).powi(2)
            })
            .sum::<f32>()
            / samples.len() as f32;

        let final_loss = net
            .fit(&samples, Loss::MeanSquaredError, 0.05, 60, &mut rng)
            .unwrap();
        assert!(
            final_loss < initial * 0.2,
            "training should reduce loss substantially: {initial} -> {final_loss}"
        );
    }

    #[test]
    fn zero_gradients_does_not_crash_and_layers_accessible() {
        let mut net = toy_tcn();
        net.zero_gradients();
        assert_eq!(net.layers().len(), 6);
        assert_eq!(net.layers_mut().len(), 6);
    }

    #[test]
    fn fit_on_empty_network_fails() {
        let mut net = Sequential::new();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(net
            .fit(&[], Loss::MeanSquaredError, 0.1, 1, &mut rng)
            .is_err());
    }
}
