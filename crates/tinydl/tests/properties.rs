//! Property-based tests for the tinydl engine: shape algebra, gradient
//! plumbing and quantization error bounds.

use proptest::prelude::*;
use tinydl::layers::{Conv1d, Dense, GlobalAvgPool, Layer, Relu};
use tinydl::network::Sequential;
use tinydl::quant::{quantize_slice, QuantizedNetwork};
use tinydl::tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conv_forward_shape_matches_output_shape(
        in_ch in 1usize..4,
        out_ch in 1usize..6,
        kernel in 1usize..5,
        stride in 1usize..3,
        dilation in 1usize..4,
        len in 16usize..64,
        same in prop::bool::ANY
    ) {
        let mut conv = Conv1d::new(in_ch, out_ch, kernel, stride, dilation, same).unwrap();
        let input = Tensor::zeros(&[in_ch, len]).unwrap();
        let predicted = conv.output_shape(&[in_ch, len]).unwrap();
        let out = conv.forward(&input).unwrap();
        prop_assert_eq!(out.shape(), &predicted[..]);
    }

    #[test]
    fn conv_same_padding_stride1_preserves_length(
        channels in 1usize..4,
        kernel in 1usize..6,
        dilation in 1usize..4,
        len in 8usize..128
    ) {
        // Odd effective kernel spans preserve the length exactly with "same"
        // padding; even spans may differ by one, which we allow.
        let conv = Conv1d::new(channels, channels, kernel, 1, dilation, true).unwrap();
        let out = conv.output_shape(&[channels, len]).unwrap();
        let span = dilation * (kernel - 1);
        if span % 2 == 0 {
            prop_assert_eq!(out[1], len);
        } else {
            prop_assert!((out[1] as i64 - len as i64).abs() <= 1);
        }
    }

    #[test]
    fn conv_macs_scale_linearly_with_output_channels(
        in_ch in 1usize..4,
        out_ch in 1usize..5,
        len in 16usize..64
    ) {
        let single = Conv1d::new(in_ch, 1, 3, 1, 1, true).unwrap();
        let multi = Conv1d::new(in_ch, out_ch, 3, 1, 1, true).unwrap();
        let m1 = single.macs(&[in_ch, len]).unwrap();
        let mn = multi.macs(&[in_ch, len]).unwrap();
        prop_assert_eq!(mn, m1 * out_ch as u64);
    }

    #[test]
    fn dense_backward_gradient_has_input_shape(
        inputs in 1usize..16,
        outputs in 1usize..8,
        scale in 0.1f32..2.0
    ) {
        let mut dense = Dense::new(inputs, outputs).unwrap();
        let x = Tensor::from_vec(vec![scale; inputs], &[inputs]).unwrap();
        let y = dense.forward(&x).unwrap();
        prop_assert_eq!(y.len(), outputs);
        let grad = dense.backward(&Tensor::from_vec(vec![1.0; outputs], &[outputs]).unwrap()).unwrap();
        prop_assert_eq!(grad.len(), inputs);
    }

    #[test]
    fn relu_output_is_non_negative_and_bounded_by_input(values in prop::collection::vec(-10.0f32..10.0, 1..64)) {
        let mut relu = Relu::new();
        let input = Tensor::from_slice(&values);
        let out = relu.forward(&input).unwrap();
        for (&o, &i) in out.as_slice().iter().zip(&values) {
            prop_assert!(o >= 0.0);
            prop_assert!(o <= i.max(0.0) + 1e-6);
        }
    }

    #[test]
    fn global_avg_pool_output_is_within_input_range(
        channels in 1usize..4,
        len in 1usize..32,
        offset in -5.0f32..5.0
    ) {
        let mut pool = GlobalAvgPool::new();
        let data: Vec<f32> = (0..channels * len).map(|i| offset + (i as f32 * 0.37).sin()).collect();
        let lo = data.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let input = Tensor::from_vec(data, &[channels, len]).unwrap();
        let out = pool.forward(&input).unwrap();
        for &v in out.as_slice() {
            prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4);
        }
    }

    #[test]
    fn quantize_slice_round_trip_error_is_within_one_step(values in prop::collection::vec(-100.0f32..100.0, 1..256)) {
        let (q, params) = quantize_slice(&values);
        prop_assert_eq!(q.len(), values.len());
        for (&orig, &qi) in values.iter().zip(&q) {
            let back = params.dequantize(qi);
            prop_assert!((back - orig).abs() <= params.scale * 0.5 + 1e-6,
                "value {orig} -> {qi} -> {back} (scale {})", params.scale);
        }
    }

    #[test]
    fn quantized_network_stays_close_to_float_network(seed in 0u64..1000) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Sequential::new();
        let mut conv = Conv1d::new(1, 4, 3, 1, 1, true).unwrap();
        conv.randomize(&mut rng);
        net.push(conv);
        net.push(Relu::new());
        net.push(GlobalAvgPool::new());
        let mut dense = Dense::new(4, 1).unwrap();
        dense.randomize(&mut rng);
        net.push(dense);

        let qnet = QuantizedNetwork::from_sequential(&net).unwrap();
        let input_data: Vec<f32> = (0..32).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        let input = Tensor::from_vec(input_data, &[1, 32]).unwrap();
        let float_out = net.forward(&input).unwrap().as_slice()[0];
        let quant_out = qnet.forward(&input).unwrap().as_slice()[0];
        prop_assert!((float_out - quant_out).abs() < 0.05 + 0.15 * float_out.abs(),
            "float {float_out} vs int8 {quant_out}");
    }

    #[test]
    fn sequential_macs_are_additive(extra_layers in 0usize..3, len in 16usize..64) {
        let mut net = Sequential::new();
        net.push(Conv1d::new(1, 2, 3, 1, 1, true).unwrap());
        let mut expected = Conv1d::new(1, 2, 3, 1, 1, true).unwrap().macs(&[1, len]).unwrap();
        let mut shape = vec![2usize, len];
        for _ in 0..extra_layers {
            let conv = Conv1d::new(2, 2, 3, 1, 1, true).unwrap();
            expected += conv.macs(&shape).unwrap();
            shape = conv.output_shape(&shape).unwrap();
            net.push(conv);
        }
        prop_assert_eq!(net.macs(&[1, len]).unwrap(), expected);
    }
}
