//! Memoized window synthesis: a caching [`WindowSource`] for hot profiling
//! streams.
//!
//! Synthesizing a window stream from `(seed, subjects, activity schedule)` is
//! deterministic, so re-running [`SynthWindows`](crate::SynthWindows) over the
//! same parameters repeats identical signal-generation work. That happens
//! constantly at fleet scale: the CHRIS profiling table is re-profiled over
//! identical calibration windows, and simulated devices whose scenarios share
//! a `(seed, schedule)` pair re-synthesize the same session. This module
//! memoizes that work:
//!
//! * [`WindowCacheKey`] — the full synthesis input: seed, subject count,
//!   activity schedule and per-activity sample count. Two streams with equal
//!   keys are bit-identical, so sharing the materialized windows is
//!   observationally invisible,
//! * [`WindowCache`] — a **bounded, deterministic LRU** from keys to
//!   shared window buffers. Eviction depends only on the access sequence
//!   (never on hash order or clocks), so a run that uses a cache is exactly
//!   as reproducible as one that does not. Hit/miss counters let callers
//!   surface cache effectiveness,
//! * [`CachedWindows`] — the replay [`WindowSource`]: a shared
//!   `Arc<Vec<LabeledWindow>>` buffer yielded one window per pull, with the
//!   same zero-copy [`try_for_each_window`](WindowSource::try_for_each_window)
//!   and [`as_slice`](WindowSource::as_slice) fast paths as
//!   [`SliceSource`](crate::SliceSource),
//! * [`MaybeCachedWindows`] — what a lookup returns: the replay, or (on a
//!   capacity-0 miss, where storing is impossible) the un-drained fresh
//!   stream, preserving the uncached path's O(1)-window memory bound.
//!
//! The cache is deliberately **not** synchronized: fleet executors keep one
//! cache per worker thread (lock-free by construction) and merge the counters
//! afterwards, which is both faster and deterministic per worker.

use std::sync::Arc;

use crate::activity::Activity;
use crate::error::DataError;
use crate::window::LabeledWindow;

use super::{IntoWindowSource, WindowSource};

/// The complete input of a synthesized window stream; equal keys imply
/// bit-identical streams.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WindowCacheKey {
    /// Master RNG seed of the synthesis.
    pub seed: u64,
    /// Number of subjects synthesized.
    pub subjects: usize,
    /// Activity schedule, in order (order is part of the synthesis input).
    pub activities: Vec<Activity>,
    /// Samples generated per activity segment.
    pub samples_per_activity: usize,
}

/// A bounded, deterministic LRU cache of materialized window streams.
///
/// `capacity` bounds the number of *entries* (one entry per distinct
/// [`WindowCacheKey`]; a capacity of `0` disables storage, so every lookup
/// misses and synthesizes fresh — useful as a control, and the reports it
/// produces are still identical). Entries are evicted strictly
/// least-recently-used, where "use" is a [`WindowCache::stream_with`] call;
/// the eviction order therefore depends only on the access sequence, keeping
/// cached runs as reproducible as uncached ones.
#[derive(Debug, Clone, Default)]
pub struct WindowCache {
    capacity: usize,
    /// Most-recently-used first; linear scan keeps ordering deterministic
    /// and is faster than hashing for the small capacities caches run with.
    entries: Vec<(WindowCacheKey, Arc<Vec<LabeledWindow>>)>,
    hits: u64,
    misses: u64,
}

impl WindowCache {
    /// Creates a cache holding at most `capacity` materialized streams
    /// (`usize::MAX` for unbounded, `0` to disable storage).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of materialized streams currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups that found a cached stream.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to synthesize (including every lookup at capacity 0).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Streams the windows for `key`: a hit replays the shared buffer, a
    /// miss materializes the stream once via `synth` and stores it — unless
    /// the capacity is 0, in which case the fresh stream is handed through
    /// untouched (no pointless materialization, the O(1)-window bound of the
    /// uncached path is preserved).
    ///
    /// The returned source yields element-wise exactly what draining
    /// `synth()` would have yielded — consumers cannot observe whether their
    /// stream was a hit or a miss (beyond the counters).
    ///
    /// # Errors
    ///
    /// Propagates [`DataError`] from `synth` or from the drained stream;
    /// failed syntheses are not cached.
    pub fn stream_with<S, F>(
        &mut self,
        key: WindowCacheKey,
        synth: F,
    ) -> Result<MaybeCachedWindows<S>, DataError>
    where
        S: WindowSource,
        F: FnOnce() -> Result<S, DataError>,
    {
        if let Some(index) = self.entries.iter().position(|(k, _)| *k == key) {
            self.hits += 1;
            // LRU touch: move to front without disturbing relative order of
            // the other entries.
            let entry = self.entries.remove(index);
            let windows = Arc::clone(&entry.1);
            self.entries.insert(0, entry);
            return Ok(MaybeCachedWindows::Cached(CachedWindows::new(windows)));
        }
        self.misses += 1;
        if self.capacity == 0 {
            return Ok(MaybeCachedWindows::Fresh(synth()?));
        }
        let mut source = synth()?;
        // Manual drain instead of `collect_windows`: a cache fill is bounded
        // by the cache capacity, not an eager-materialization regression, so
        // it must not trip `stream::metrics::eager_collects` watchdogs.
        let mut out = Vec::with_capacity(source.size_hint().0);
        while let Some(item) = source.next_window() {
            out.push(item?);
        }
        let windows = Arc::new(out);
        self.entries.insert(0, (key, Arc::clone(&windows)));
        self.entries.truncate(self.capacity);
        Ok(MaybeCachedWindows::Cached(CachedWindows::new(windows)))
    }
}

/// What [`WindowCache::stream_with`] hands back: a memoized replay
/// ([`CachedWindows`]) or, when storing is impossible (capacity 0), the
/// fresh synthesis stream itself. Both arms yield identical windows.
#[derive(Debug, Clone)]
pub enum MaybeCachedWindows<S> {
    /// Capacity-0 miss: the un-drained synthesis stream, one window alive at
    /// a time, exactly like the uncached path.
    Fresh(S),
    /// Hit, or a miss that was materialized into the cache.
    Cached(CachedWindows),
}

impl<S: WindowSource> WindowSource for MaybeCachedWindows<S> {
    fn next_window(&mut self) -> Option<Result<LabeledWindow, DataError>> {
        match self {
            MaybeCachedWindows::Fresh(source) => source.next_window(),
            MaybeCachedWindows::Cached(source) => source.next_window(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            MaybeCachedWindows::Fresh(source) => source.size_hint(),
            MaybeCachedWindows::Cached(source) => source.size_hint(),
        }
    }

    fn try_for_each_window<E: From<DataError>>(
        &mut self,
        f: impl FnMut(&LabeledWindow) -> Result<(), E>,
    ) -> Result<usize, E> {
        match self {
            MaybeCachedWindows::Fresh(source) => source.try_for_each_window(f),
            MaybeCachedWindows::Cached(source) => source.try_for_each_window(f),
        }
    }

    fn as_slice(&self) -> Option<&[LabeledWindow]> {
        match self {
            MaybeCachedWindows::Fresh(source) => source.as_slice(),
            MaybeCachedWindows::Cached(source) => source.as_slice(),
        }
    }
}

impl<S: WindowSource> IntoWindowSource for MaybeCachedWindows<S> {
    type Source = Self;

    fn into_window_source(self) -> Self::Source {
        self
    }
}

/// [`WindowSource`] replaying a shared, memoized window buffer (see
/// [`WindowCache::stream_with`]).
///
/// Cloning the source restarts the replay from the clone's position without
/// duplicating the buffer.
#[derive(Debug, Clone)]
pub struct CachedWindows {
    windows: Arc<Vec<LabeledWindow>>,
    next: usize,
}

impl CachedWindows {
    fn new(windows: Arc<Vec<LabeledWindow>>) -> Self {
        Self { windows, next: 0 }
    }

    /// Total number of windows in the underlying shared buffer.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the underlying shared buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

impl WindowSource for CachedWindows {
    fn next_window(&mut self) -> Option<Result<LabeledWindow, DataError>> {
        let window = self.windows.get(self.next)?;
        self.next += 1;
        Some(Ok(window.clone()))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.windows.len() - self.next;
        (remaining, Some(remaining))
    }

    /// Zero-copy override mirroring [`SliceSource`](crate::SliceSource): the
    /// shared buffer is visited by reference, and on a visitor error the
    /// source is positioned after the failing window.
    fn try_for_each_window<E: From<DataError>>(
        &mut self,
        mut f: impl FnMut(&LabeledWindow) -> Result<(), E>,
    ) -> Result<usize, E> {
        let mut visited = 0usize;
        while let Some(window) = self.windows.get(self.next) {
            self.next += 1;
            f(window)?;
            visited += 1;
        }
        Ok(visited)
    }

    fn as_slice(&self) -> Option<&[LabeledWindow]> {
        Some(&self.windows[self.next..])
    }
}

impl IntoWindowSource for CachedWindows {
    type Source = Self;

    fn into_window_source(self) -> Self::Source {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn builder(seed: u64) -> DatasetBuilder {
        DatasetBuilder::new()
            .subjects(1)
            .seconds_per_activity(16.0)
            .seed(seed)
    }

    #[test]
    fn hit_replays_the_synthesized_stream_exactly() {
        let mut cache = WindowCache::new(4);
        let eager: Vec<_> = builder(7)
            .window_stream()
            .unwrap()
            .iter()
            .map(Result::unwrap)
            .collect();
        let miss: Vec<_> = builder(7)
            .cached_window_stream(&mut cache)
            .unwrap()
            .iter()
            .map(Result::unwrap)
            .collect();
        let hit: Vec<_> = builder(7)
            .cached_window_stream(&mut cache)
            .unwrap()
            .iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(miss, eager);
        assert_eq!(hit, eager);
        assert_eq!((cache.hits(), cache.misses()), (1, 2 - 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let mut cache = WindowCache::new(4);
        let a: Vec<_> = builder(1)
            .cached_window_stream(&mut cache)
            .unwrap()
            .iter()
            .map(Result::unwrap)
            .collect();
        let b: Vec<_> = builder(2)
            .cached_window_stream(&mut cache)
            .unwrap()
            .iter()
            .map(Result::unwrap)
            .collect();
        assert_ne!(a, b);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_eviction_is_strictly_least_recently_used() {
        let mut cache = WindowCache::new(2);
        builder(1).cached_window_stream(&mut cache).unwrap(); // miss: [1]
        builder(2).cached_window_stream(&mut cache).unwrap(); // miss: [2, 1]
        builder(1).cached_window_stream(&mut cache).unwrap(); // hit:  [1, 2]
        builder(3).cached_window_stream(&mut cache).unwrap(); // miss, evicts 2
        builder(1).cached_window_stream(&mut cache).unwrap(); // still a hit
        builder(2).cached_window_stream(&mut cache).unwrap(); // miss again
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_storage_but_still_streams() {
        let mut cache = WindowCache::new(0);
        let eager: Vec<_> = builder(9)
            .window_stream()
            .unwrap()
            .iter()
            .map(Result::unwrap)
            .collect();
        for _ in 0..2 {
            let stream = builder(9).cached_window_stream(&mut cache).unwrap();
            // Storage is disabled, so nothing is materialized either: the
            // miss hands the un-drained synthesis stream straight through.
            assert!(matches!(stream, MaybeCachedWindows::Fresh(_)));
            let streamed: Vec<_> = stream.iter().map(Result::unwrap).collect();
            assert_eq!(streamed, eager);
        }
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_windows_supports_slice_and_visitor_fast_paths() {
        let mut cache = WindowCache::new(1);
        let MaybeCachedWindows::Cached(mut stream) =
            builder(11).cached_window_stream(&mut cache).unwrap()
        else {
            panic!("a positive-capacity miss must materialize into the cache")
        };
        let total = stream.len();
        assert!(total > 0);
        assert_eq!(stream.size_hint(), (total, Some(total)));
        assert_eq!(stream.as_slice().unwrap().len(), total);
        stream.next_window().unwrap().unwrap();
        assert_eq!(stream.as_slice().unwrap().len(), total - 1);
        let visited = stream
            .try_for_each_window(|_| Ok::<(), DataError>(()))
            .unwrap();
        assert_eq!(visited, total - 1);
        assert!(stream.next_window().is_none());
        assert_eq!(stream.size_hint(), (0, Some(0)));
    }

    #[test]
    fn synthesis_failures_are_not_cached() {
        let mut cache = WindowCache::new(4);
        let short = DatasetBuilder::new().subjects(1).seconds_per_activity(1.0);
        assert!(short.window_cache_key().is_err());
        // A failing synth closure leaves the cache empty.
        let key = builder(1).window_cache_key().unwrap();
        let result = cache.stream_with(key, || {
            Err::<crate::SynthWindows, _>(DataError::InvalidParameter {
                name: "synth",
                requirement: "always fails",
            })
        });
        assert!(result.is_err());
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 1);
    }
}
