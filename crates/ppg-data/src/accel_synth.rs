//! Synthetic 3-axis wrist accelerometer generation.
//!
//! The accelerometer stream has three roles in the paper:
//!
//! 1. its statistical features feed the activity-recognition random forest
//!    (the difficulty proxy of CHRIS),
//! 2. its energy defines the difficulty ordering of the activities,
//! 3. motion artifacts in the PPG are correlated with it (sensor fusion is
//!    what the deep models exploit).
//!
//! The generator therefore produces, per activity segment: a gravity
//! component with a slowly changing orientation, an optional periodic
//! component at the activity's cadence (walking arm swing, pedalling, ...),
//! aperiodic bursts (reaching, steering, table-soccer shots) and white sensor
//! noise. The per-sample *motion envelope* (non-gravity magnitude, smoothed)
//! is returned alongside the axes so the PPG synthesizer can couple artifacts
//! to it.

use rand::Rng;

use crate::activity::Activity;
use crate::noise::{ar1_noise, white_noise};
use crate::subject::SubjectProfile;

/// A 3-axis accelerometer segment plus the motion envelope used to couple
/// motion artifacts into the PPG.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AccelSegment {
    /// X-axis acceleration in g.
    pub x: Vec<f32>,
    /// Y-axis acceleration in g.
    pub y: Vec<f32>,
    /// Z-axis acceleration in g.
    pub z: Vec<f32>,
    /// Smoothed per-sample magnitude of the non-gravity motion, in g.
    pub motion_envelope: Vec<f32>,
}

impl AccelSegment {
    /// Number of samples in the segment.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the segment contains no samples.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// Generates one activity segment of 3-axis accelerometer data.
pub fn accel_segment<R: Rng + ?Sized>(
    rng: &mut R,
    subject: &SubjectProfile,
    activity: Activity,
    n_samples: usize,
    sample_rate_hz: f32,
) -> AccelSegment {
    if n_samples == 0 {
        return AccelSegment::default();
    }
    let intensity = activity.motion_intensity_g();
    let cadence = activity.motion_periodicity_hz();
    let burst_p = activity.burst_probability();

    // Slowly drifting gravity orientation (wrist pose changes).
    let pose_x = ar1_noise(rng, n_samples, 0.9995, 0.15);
    let pose_y = ar1_noise(rng, n_samples, 0.9995, 0.15);

    // Periodic component phase offsets per axis.
    let phase: [f32; 3] = [
        rng.random_range(0.0..std::f32::consts::TAU),
        rng.random_range(0.0..std::f32::consts::TAU),
        rng.random_range(0.0..std::f32::consts::TAU),
    ];
    // Slight cadence wobble.
    let cadence_jitter = ar1_noise(rng, n_samples, 0.999, 0.05);

    // Aperiodic motion: AR(1) envelope modulating white noise, plus bursts.
    let aperiodic_env = ar1_noise(rng, n_samples, 0.995, 1.0);
    let sensor_noise: [Vec<f32>; 3] = [
        white_noise(rng, n_samples, 0.01),
        white_noise(rng, n_samples, 0.01),
        white_noise(rng, n_samples, 0.01),
    ];

    // Burst schedule: each second may start a burst of 0.5..2 s.
    let mut burst_gain = vec![0.0f32; n_samples];
    let samples_per_second = sample_rate_hz as usize;
    let mut t = 0usize;
    while t < n_samples {
        if rng.random::<f32>() < burst_p {
            let burst_len = rng.random_range(samples_per_second / 2..samples_per_second * 2);
            let amp = rng.random_range(1.5f32..4.0);
            let end = (t + burst_len).min(n_samples);
            for (k, gain) in burst_gain[t..end].iter_mut().enumerate() {
                // Raised-cosine burst shape.
                let frac = k as f32 / burst_len as f32;
                *gain = gain.max(amp * (std::f32::consts::PI * frac).sin().powi(2));
            }
        }
        t += samples_per_second.max(1);
    }

    let mut seg = AccelSegment {
        x: Vec::with_capacity(n_samples),
        y: Vec::with_capacity(n_samples),
        z: Vec::with_capacity(n_samples),
        motion_envelope: Vec::with_capacity(n_samples),
    };

    let periodic_amp = intensity * 1.2;
    let aperiodic_amp = intensity * 0.6;
    for i in 0..n_samples {
        let time_s = i as f32 / sample_rate_hz;
        // Gravity split between axes according to the slowly drifting pose.
        let gx = pose_x[i].sin();
        let gy = pose_y[i].sin() * pose_x[i].cos();
        let gz = (1.0 - (gx * gx + gy * gy)).max(0.0).sqrt();

        let mut motion = [0.0f32; 3];
        if let Some(f0) = cadence {
            let f = f0 * (1.0 + cadence_jitter[i]);
            for (axis, m) in motion.iter_mut().enumerate() {
                *m += periodic_amp
                    * (std::f32::consts::TAU * f * time_s + phase[axis]).sin()
                    * (1.0 + 0.3 * aperiodic_env[i]);
            }
        }
        let burst = burst_gain[i];
        for (axis, m) in motion.iter_mut().enumerate() {
            *m += aperiodic_amp * aperiodic_env[i] * (0.5 + 0.5 * (axis as f32 + 1.0) / 3.0);
            *m += intensity * burst * sensor_noise[axis][i] * 40.0;
        }

        let x = gx + motion[0] + sensor_noise[0][i];
        let y = gy + motion[1] + sensor_noise[1][i];
        let z = gz + motion[2] + sensor_noise[2][i];
        let envelope =
            (motion[0] * motion[0] + motion[1] * motion[1] + motion[2] * motion[2]).sqrt();
        seg.x.push(x);
        seg.y.push(y);
        seg.z.push(z);
        seg.motion_envelope
            .push(envelope * subject.artifact_susceptibility);
    }
    seg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subject::SubjectId;
    use ppg_dsp::features::AccelFeatures;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn subject() -> SubjectProfile {
        SubjectProfile::nominal(SubjectId(0))
    }

    fn segment(activity: Activity, seed: u64) -> AccelSegment {
        let mut rng = StdRng::seed_from_u64(seed);
        accel_segment(&mut rng, &subject(), activity, 32 * 60, 32.0)
    }

    #[test]
    fn segment_lengths_match() {
        let seg = segment(Activity::Walking, 1);
        assert_eq!(seg.len(), 32 * 60);
        assert_eq!(seg.x.len(), seg.y.len());
        assert_eq!(seg.y.len(), seg.z.len());
        assert_eq!(seg.z.len(), seg.motion_envelope.len());
        assert!(!seg.is_empty());
    }

    #[test]
    fn empty_request_is_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let seg = accel_segment(&mut rng, &subject(), Activity::Resting, 0, 32.0);
        assert!(seg.is_empty());
    }

    #[test]
    fn resting_magnitude_is_close_to_gravity() {
        let seg = segment(Activity::Resting, 2);
        let mean_mag: f32 = seg
            .x
            .iter()
            .zip(&seg.y)
            .zip(&seg.z)
            .map(|((&x, &y), &z)| (x * x + y * y + z * z).sqrt())
            .sum::<f32>()
            / seg.len() as f32;
        assert!(
            (mean_mag - 1.0).abs() < 0.15,
            "resting magnitude ≈ 1 g, got {mean_mag}"
        );
    }

    #[test]
    fn motion_energy_increases_with_difficulty() {
        // The activity ordering by accelerometer energy must be (statistically)
        // monotone — this is the foundation of the difficulty proxy.
        let mut energies = Vec::new();
        for (i, activity) in Activity::ALL.iter().enumerate() {
            let seg = segment(*activity, 100 + i as u64);
            let f = AccelFeatures::from_axes(&seg.x, &seg.y, &seg.z).unwrap();
            // Subtract the ~1 g gravity energy so we compare motion only.
            energies.push(f.mean_axis_energy());
        }
        // Check monotonicity loosely: every "hard" activity (index >= 5) must
        // have more energy than every "easy" one (index <= 2).
        for hard in &energies[5..] {
            for easy in &energies[..3] {
                assert!(
                    hard > easy,
                    "hard {hard} should exceed easy {easy}: {energies:?}"
                );
            }
        }
    }

    #[test]
    fn walking_has_periodic_component() {
        let seg = segment(Activity::Walking, 3);
        // Dominant non-DC frequency of the x axis should be near the 1.8 Hz cadence.
        let x = ppg_dsp::filter::remove_mean(&seg.x[..1024]).unwrap();
        let (_, f, _) = ppg_dsp::fft::dominant_frequency(&x, 32.0, 0.8, 4.0).unwrap();
        assert!(
            (f - 1.8).abs() < 0.5,
            "expected cadence near 1.8 Hz, got {f}"
        );
    }

    #[test]
    fn motion_envelope_is_non_negative() {
        for activity in [Activity::Resting, Activity::Lunch, Activity::TableSoccer] {
            let seg = segment(activity, 4);
            assert!(seg.motion_envelope.iter().all(|&e| e >= 0.0));
        }
    }

    #[test]
    fn susceptible_subject_has_larger_envelope() {
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let mut sensitive = subject();
        sensitive.artifact_susceptibility = 1.5;
        let mut robust = subject();
        robust.artifact_susceptibility = 0.7;
        let a = accel_segment(&mut rng_a, &sensitive, Activity::Walking, 32 * 30, 32.0);
        let b = accel_segment(&mut rng_b, &robust, Activity::Walking, 32 * 30, 32.0);
        let sum = |v: &[f32]| v.iter().sum::<f32>();
        assert!(sum(&a.motion_envelope) > sum(&b.motion_envelope));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = segment(Activity::Cycling, 11);
        let b = segment(Activity::Cycling, 11);
        assert_eq!(a, b);
    }
}
