//! Synthetic subject profiles.
//!
//! PPGDalia contains 15 subjects of different ages and fitness levels. The
//! synthetic substitute models the per-subject parameters that matter to the
//! downstream experiments: resting heart rate, heart-rate reactivity to
//! exercise, heart-rate variability, PPG signal amplitude (skin tone / sensor
//! coupling) and susceptibility to motion artifacts.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of a subject within a dataset (zero-based, stable across runs
/// for a given seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SubjectId(pub usize);

impl std::fmt::Display for SubjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0 + 1)
    }
}

/// Physiological and sensor-coupling parameters of one synthetic subject.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SubjectProfile {
    /// Identifier of the subject.
    pub id: SubjectId,
    /// Resting heart rate in BPM.
    pub resting_hr_bpm: f32,
    /// Multiplier applied to the activity-induced HR elevation (fitness proxy;
    /// < 1 means the subject's HR rises less than average during exercise).
    pub hr_reactivity: f32,
    /// Standard deviation of the beat-to-beat HR fluctuation in BPM.
    pub hr_variability_bpm: f32,
    /// Amplitude of the clean PPG pulse (arbitrary units, sensor coupling).
    pub ppg_amplitude: f32,
    /// Multiplier applied to motion-artifact amplitude for this subject
    /// (loose strap, skin tone, wrist shape).
    pub artifact_susceptibility: f32,
}

impl SubjectProfile {
    /// Generates a plausible random subject profile.
    ///
    /// The distributions are wide enough that subject-wise cross-validation is
    /// meaningfully harder than a random split, mirroring the generalization
    /// gap the paper discusses for classical methods.
    pub fn generate<R: Rng + ?Sized>(id: SubjectId, rng: &mut R) -> Self {
        Self {
            id,
            resting_hr_bpm: rng.random_range(52.0..78.0),
            hr_reactivity: rng.random_range(0.75..1.25),
            hr_variability_bpm: rng.random_range(1.0..4.0),
            ppg_amplitude: rng.random_range(0.6..1.4),
            artifact_susceptibility: rng.random_range(0.7..1.5),
        }
    }

    /// A deterministic "average" profile, useful in unit tests and examples.
    pub fn nominal(id: SubjectId) -> Self {
        Self {
            id,
            resting_hr_bpm: 65.0,
            hr_reactivity: 1.0,
            hr_variability_bpm: 2.0,
            ppg_amplitude: 1.0,
            artifact_susceptibility: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn subject_id_display_is_one_based() {
        assert_eq!(SubjectId(0).to_string(), "S1");
        assert_eq!(SubjectId(14).to_string(), "S15");
    }

    #[test]
    fn generated_profiles_are_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..100 {
            let p = SubjectProfile::generate(SubjectId(i), &mut rng);
            assert!(p.resting_hr_bpm >= 52.0 && p.resting_hr_bpm < 78.0);
            assert!(p.hr_reactivity >= 0.75 && p.hr_reactivity < 1.25);
            assert!(p.hr_variability_bpm >= 1.0 && p.hr_variability_bpm < 4.0);
            assert!(p.ppg_amplitude >= 0.6 && p.ppg_amplitude < 1.4);
            assert!(p.artifact_susceptibility >= 0.7 && p.artifact_susceptibility < 1.5);
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let pa = SubjectProfile::generate(SubjectId(3), &mut a);
        let pb = SubjectProfile::generate(SubjectId(3), &mut b);
        assert_eq!(pa, pb);
    }

    #[test]
    fn profiles_differ_across_subjects() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = SubjectProfile::generate(SubjectId(0), &mut rng);
        let b = SubjectProfile::generate(SubjectId(1), &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn nominal_profile_is_stable() {
        let p = SubjectProfile::nominal(SubjectId(2));
        assert_eq!(p.resting_hr_bpm, 65.0);
        assert_eq!(p.hr_reactivity, 1.0);
    }
}
