//! Labeled analysis windows.
//!
//! A [`LabeledWindow`] is the unit every model and the CHRIS runtime operate
//! on: 8 seconds (256 samples) of PPG plus the three accelerometer axes, the
//! ground-truth mean heart rate over the window, the activity being performed
//! and the subject it came from.

use serde::{Deserialize, Serialize};

use crate::activity::Activity;
use crate::subject::SubjectId;

/// One 8-second analysis window with its labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledWindow {
    /// Subject the window was recorded from.
    pub subject: SubjectId,
    /// Activity performed during the window.
    pub activity: Activity,
    /// Ground-truth mean heart rate over the window, in BPM.
    pub hr_bpm: f32,
    /// Raw PPG samples (256 at 32 Hz).
    pub ppg: Vec<f32>,
    /// Accelerometer X axis in g (256 samples).
    pub accel_x: Vec<f32>,
    /// Accelerometer Y axis in g (256 samples).
    pub accel_y: Vec<f32>,
    /// Accelerometer Z axis in g (256 samples).
    pub accel_z: Vec<f32>,
    /// Mean of the motion envelope over the window (g); a direct measure of
    /// how corrupted the window is. Not available to the models (it is a
    /// generator-side quantity) but useful for analysis and tests.
    pub mean_motion_g: f32,
}

impl LabeledWindow {
    /// Number of samples per channel.
    pub fn len(&self) -> usize {
        self.ppg.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.ppg.is_empty()
    }

    /// Difficulty level of the window's activity (1 easiest .. 9 hardest).
    pub fn difficulty(&self) -> crate::activity::DifficultyLevel {
        self.activity.difficulty()
    }

    /// Accelerometer features of the window (the classifier input).
    ///
    /// # Errors
    ///
    /// Propagates [`ppg_dsp::DspError`] if the window is empty.
    pub fn accel_features(&self) -> Result<ppg_dsp::AccelFeatures, ppg_dsp::DspError> {
        ppg_dsp::AccelFeatures::from_axes(&self.accel_x, &self.accel_y, &self.accel_z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> LabeledWindow {
        LabeledWindow {
            subject: SubjectId(0),
            activity: Activity::Walking,
            hr_bpm: 95.0,
            ppg: vec![0.0; 256],
            accel_x: vec![0.1; 256],
            accel_y: vec![0.2; 256],
            accel_z: vec![0.9; 256],
            mean_motion_g: 0.3,
        }
    }

    #[test]
    fn len_and_empty() {
        let w = window();
        assert_eq!(w.len(), 256);
        assert!(!w.is_empty());
    }

    #[test]
    fn difficulty_tracks_activity() {
        let w = window();
        assert_eq!(w.difficulty(), Activity::Walking.difficulty());
    }

    #[test]
    fn accel_features_compute() {
        let w = window();
        let f = w.accel_features().unwrap();
        assert!((f.x.mean - 0.1).abs() < 1e-5);
        assert!((f.z.mean - 0.9).abs() < 1e-5);
    }

    #[test]
    fn accel_features_fail_on_empty_window() {
        let mut w = window();
        w.accel_x.clear();
        w.accel_y.clear();
        w.accel_z.clear();
        assert!(w.accel_features().is_err());
    }
}
