//! Random-noise helpers (Gaussian sampling, smoothed noise).
//!
//! The whitelisted `rand` crate does not bundle a Gaussian distribution, so
//! this module provides a small Box–Muller sampler plus a first-order
//! autoregressive (AR(1)) smoother used by the HR-trajectory and
//! motion-artifact generators.

use rand::Rng;

/// Draws one sample from a standard normal distribution using the Box–Muller
/// transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid ln(0) by sampling the half-open interval (0, 1].
    let u1: f32 = 1.0 - rng.random::<f32>();
    let u2: f32 = rng.random::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Draws one sample from a normal distribution with the given mean and
/// standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f32, std_dev: f32) -> f32 {
    mean + std_dev * standard_normal(rng)
}

/// Generates `n` samples of zero-mean white Gaussian noise with standard
/// deviation `std_dev`.
pub fn white_noise<R: Rng + ?Sized>(rng: &mut R, n: usize, std_dev: f32) -> Vec<f32> {
    (0..n).map(|_| std_dev * standard_normal(rng)).collect()
}

/// First-order autoregressive process: `x[t] = rho * x[t-1] + e[t]` with
/// Gaussian innovations scaled so the process variance equals
/// `std_dev²` (for `|rho| < 1`).
///
/// Used for smooth, band-limited random fluctuations such as heart-rate
/// wandering and slow motion-artifact envelopes.
pub fn ar1_noise<R: Rng + ?Sized>(rng: &mut R, n: usize, rho: f32, std_dev: f32) -> Vec<f32> {
    let rho = rho.clamp(-0.9999, 0.9999);
    let innovation_std = std_dev * (1.0 - rho * rho).sqrt();
    let mut out = Vec::with_capacity(n);
    let mut x = std_dev * standard_normal(rng);
    for _ in 0..n {
        x = rho * x + innovation_std * standard_normal(rng);
        out.push(x);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn normal_respects_mean_and_std() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn white_noise_length_and_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let noise = white_noise(&mut rng, 5000, 0.5);
        assert_eq!(noise.len(), 5000);
        let var: f32 = noise.iter().map(|x| x * x).sum::<f32>() / 5000.0;
        assert!((var - 0.25).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn ar1_noise_is_smoother_than_white_noise() {
        let mut rng = StdRng::seed_from_u64(4);
        let smooth = ar1_noise(&mut rng, 4000, 0.98, 1.0);
        let white = white_noise(&mut rng, 4000, 1.0);
        // Mean squared sample-to-sample difference is far smaller for AR(1).
        let diff_energy = |v: &[f32]| {
            v.windows(2).map(|p| (p[1] - p[0]).powi(2)).sum::<f32>() / (v.len() - 1) as f32
        };
        assert!(diff_energy(&smooth) < diff_energy(&white) * 0.2);
    }

    #[test]
    fn ar1_noise_variance_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(5);
        let samples = ar1_noise(&mut rng, 50_000, 0.9, 2.0);
        let mean: f32 = samples.iter().sum::<f32>() / samples.len() as f32;
        let var: f32 =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / samples.len() as f32;
        assert!((var - 4.0).abs() < 0.6, "variance {var}");
    }

    #[test]
    fn ar1_handles_degenerate_rho() {
        let mut rng = StdRng::seed_from_u64(6);
        let samples = ar1_noise(&mut rng, 100, 1.0, 1.0);
        assert_eq!(samples.len(), 100);
        assert!(samples.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = white_noise(&mut StdRng::seed_from_u64(9), 10, 1.0);
        let b = white_noise(&mut StdRng::seed_from_u64(9), 10, 1.0);
        assert_eq!(a, b);
    }
}
