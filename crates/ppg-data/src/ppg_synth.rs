//! Synthetic wrist PPG generation.
//!
//! The clean PPG is a pulse train driven by the ground-truth heart-rate
//! trajectory: each cardiac cycle contributes a systolic peak and a smaller
//! diastolic (dicrotic) bump, modelled as two Gaussian lobes. On top of the
//! clean signal the generator adds:
//!
//! * **baseline wander** — a slow (~0.2–0.4 Hz) respiratory oscillation,
//! * **sensor noise** — white Gaussian noise,
//! * **motion artifacts** — the dominant corruption on the wrist.  Artifacts
//!   are *correlated with the accelerometer motion envelope* produced by
//!   [`crate::accel_synth`]: the envelope modulates both an in-band oscillatory
//!   component (the light-leakage artifact has pseudo-periodic content in the
//!   cardiac band, which is what confuses naive spectral trackers) and an
//!   abrupt baseline-shift component.
//!
//! The relative amplitude of artifacts versus the clean pulse is what makes an
//! activity "difficult": at rest the artifact term is negligible; during table
//! soccer it dominates the pulse by several times, as in the real dataset.

use rand::Rng;

use crate::noise::{ar1_noise, white_noise};
use crate::subject::SubjectProfile;

/// Relative amplitude of the diastolic (dicrotic) bump versus the systolic peak.
const DIASTOLIC_RATIO: f32 = 0.35;
/// Gain converting the accelerometer motion envelope (g) into artifact
/// amplitude relative to the clean pulse amplitude.
const ARTIFACT_COUPLING: f32 = 2.2;

/// Synthesizes a PPG segment from a per-sample heart-rate trajectory and the
/// accelerometer motion envelope of the same segment.
///
/// `hr_bpm` and `motion_envelope` must have the same length; the output has
/// that length too.
///
/// # Panics
///
/// Panics if the two inputs differ in length (this is an internal generator
/// invariant; the public dataset builder always passes matched segments).
pub fn ppg_segment<R: Rng + ?Sized>(
    rng: &mut R,
    subject: &SubjectProfile,
    hr_bpm: &[f32],
    motion_envelope: &[f32],
    sample_rate_hz: f32,
) -> Vec<f32> {
    assert_eq!(
        hr_bpm.len(),
        motion_envelope.len(),
        "hr trajectory and motion envelope must be sample-aligned"
    );
    let n = hr_bpm.len();
    if n == 0 {
        return Vec::new();
    }

    let amp = subject.ppg_amplitude;

    // Cardiac phase: integrate the instantaneous frequency.
    let mut phase = rng.random_range(0.0..1.0f32);
    let mut clean = Vec::with_capacity(n);
    for &hr in hr_bpm {
        let f = hr / 60.0;
        phase += f / sample_rate_hz;
        if phase >= 1.0 {
            phase -= 1.0;
        }
        clean.push(amp * beat_waveform(phase));
    }

    // Respiratory baseline wander: slow sinusoid with drifting frequency.
    let resp_f = rng.random_range(0.2..0.4f32);
    let resp_phase = rng.random_range(0.0..std::f32::consts::TAU);
    let wander_amp = 0.3 * amp;

    // Motion artifacts: oscillatory in-band component + baseline shifts,
    // both modulated by the accelerometer motion envelope.
    let artifact_f = rng.random_range(0.8..2.5f32); // pseudo-periodic, cardiac band
    let artifact_phase = rng.random_range(0.0..std::f32::consts::TAU);
    let baseline_shift = ar1_noise(rng, n, 0.995, 1.0);
    let sensor_noise = white_noise(rng, n, 0.02 * amp);

    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f32 / sample_rate_hz;
        let wander = wander_amp * (std::f32::consts::TAU * resp_f * t + resp_phase).sin();
        let envelope = motion_envelope[i];
        let artifact = ARTIFACT_COUPLING
            * envelope
            * amp
            * ((std::f32::consts::TAU * artifact_f * t + artifact_phase).sin()
                + 0.6 * baseline_shift[i]);
        out.push(clean[i] + wander + artifact + sensor_noise[i]);
    }
    out
}

/// Normalized single-beat waveform as a function of the cardiac phase in
/// `[0, 1)`: a systolic Gaussian peak followed by a smaller diastolic bump.
pub fn beat_waveform(phase: f32) -> f32 {
    let gaussian = |center: f32, width: f32| {
        let d = (phase - center) / width;
        (-0.5 * d * d).exp()
    };
    gaussian(0.20, 0.07) + DIASTOLIC_RATIO * gaussian(0.45, 0.10)
}

/// Signal-to-artifact ratio of a window: ratio of clean-pulse amplitude to the
/// artifact amplitude implied by the mean motion envelope. Used in tests and
/// analysis to verify the difficulty ordering.
pub fn signal_to_artifact_ratio(subject: &SubjectProfile, mean_envelope_g: f32) -> f32 {
    if mean_envelope_g <= 0.0 {
        return f32::INFINITY;
    }
    subject.ppg_amplitude / (ARTIFACT_COUPLING * mean_envelope_g * subject.ppg_amplitude)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::Activity;
    use crate::hr_profile::hr_trajectory;
    use crate::subject::{SubjectId, SubjectProfile};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn subject() -> SubjectProfile {
        SubjectProfile::nominal(SubjectId(0))
    }

    #[test]
    fn beat_waveform_peaks_at_systole() {
        let systole = beat_waveform(0.20);
        let diastole = beat_waveform(0.45);
        let end = beat_waveform(0.95);
        assert!(systole > diastole);
        assert!(diastole > end);
        assert!(systole <= 1.0 + DIASTOLIC_RATIO);
    }

    #[test]
    fn output_length_matches_input() {
        let mut rng = StdRng::seed_from_u64(1);
        let hr = vec![70.0f32; 256];
        let env = vec![0.0f32; 256];
        let ppg = ppg_segment(&mut rng, &subject(), &hr, &env, 32.0);
        assert_eq!(ppg.len(), 256);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(ppg_segment(&mut rng, &subject(), &[], &[], 32.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "sample-aligned")]
    fn mismatched_inputs_panic() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = ppg_segment(&mut rng, &subject(), &[70.0; 10], &[0.0; 5], 32.0);
    }

    #[test]
    fn clean_ppg_has_cardiac_dominant_frequency() {
        // With no motion the dominant in-band frequency must track the HR.
        let mut rng = StdRng::seed_from_u64(2);
        let hr = vec![90.0f32; 1024]; // 1.5 Hz
        let env = vec![0.0f32; 1024];
        let ppg = ppg_segment(&mut rng, &subject(), &hr, &env, 32.0);
        let centered = ppg_dsp::filter::band_pass(&ppg, 0.6, 4.0, 32.0).unwrap();
        let (_, f, _) = ppg_dsp::fft::dominant_frequency(&centered[512..], 32.0, 0.7, 4.0).unwrap();
        assert!((f - 1.5).abs() < 0.25, "expected ~1.5 Hz, got {f}");
    }

    #[test]
    fn motion_artifacts_increase_signal_power() {
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let hr = vec![70.0f32; 512];
        let quiet = ppg_segment(&mut rng_a, &subject(), &hr, &vec![0.0; 512], 32.0);
        let moving = ppg_segment(&mut rng_b, &subject(), &hr, &vec![0.8; 512], 32.0);
        let power = |v: &[f32]| v.iter().map(|x| x * x).sum::<f32>() / v.len() as f32;
        assert!(power(&moving) > power(&quiet) * 2.0);
    }

    #[test]
    fn realistic_pipeline_resting_window_tracks_hr() {
        // End-to-end sanity: with a real HR trajectory and a quiet envelope,
        // the spectral peak of the PPG is within a few BPM of the mean HR.
        let mut rng = StdRng::seed_from_u64(4);
        let s = subject();
        let hr = hr_trajectory(&mut rng, &s, Activity::Resting, 1024, 32.0, 65.0);
        let env = vec![0.01f32; 1024];
        let ppg = ppg_segment(&mut rng, &s, &hr, &env, 32.0);
        let filtered = ppg_dsp::filter::band_pass(&ppg, 0.6, 4.0, 32.0).unwrap();
        let (_, f, _) = ppg_dsp::fft::dominant_frequency(&filtered[512..], 32.0, 0.7, 4.0).unwrap();
        let mean_hr = hr.iter().sum::<f32>() / hr.len() as f32;
        assert!(
            (f * 60.0 - mean_hr).abs() < 8.0,
            "spectral HR {} vs ground truth {}",
            f * 60.0,
            mean_hr
        );
    }

    #[test]
    fn signal_to_artifact_ratio_decreases_with_motion() {
        let s = subject();
        let high = signal_to_artifact_ratio(&s, 0.01);
        let low = signal_to_artifact_ratio(&s, 0.8);
        assert!(high > low);
        assert!(signal_to_artifact_ratio(&s, 0.0).is_infinite());
    }
}
