//! Subject-wise cross-validation folds.
//!
//! The paper splits PPGDalia's 15 subjects into 5 folds of 3 subjects each: in
//! every iteration 4 folds train the models, two subjects of the remaining
//! fold are used for validation and the last one for testing, rotating the
//! test subject within the fold. This module reproduces that protocol and also
//! offers the simpler "hold out k subjects" split used by the lighter-weight
//! examples.

use serde::{Deserialize, Serialize};

use crate::error::DataError;
use crate::subject::SubjectId;

/// One train/validation/test split by subject.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fold {
    /// Subjects used to train (and profile) the models.
    pub train: Vec<SubjectId>,
    /// Subjects used for validation / threshold tuning.
    pub validation: Vec<SubjectId>,
    /// Subjects used for the final test metrics.
    pub test: Vec<SubjectId>,
}

impl Fold {
    /// Returns `true` when no subject appears in more than one split.
    pub fn is_disjoint(&self) -> bool {
        let mut all: Vec<SubjectId> = self
            .train
            .iter()
            .chain(&self.validation)
            .chain(&self.test)
            .copied()
            .collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        all.len() == before
    }
}

/// The paper's 5 × 3 cross-validation protocol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossValidation {
    folds: Vec<Fold>,
    subjects_per_fold: usize,
}

impl CrossValidation {
    /// Builds the cross-validation splits for `subject_count` subjects grouped
    /// into folds of `subjects_per_fold`.
    ///
    /// For every group, each member takes a turn as the test subject while the
    /// rest of the group validates, producing
    /// `groups × subjects_per_fold` [`Fold`]s (15 for the paper's 15/3 split).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if `subjects_per_fold` is zero
    /// or does not divide `subject_count`.
    pub fn new(subject_count: usize, subjects_per_fold: usize) -> Result<Self, DataError> {
        if subjects_per_fold == 0 || subject_count == 0 {
            return Err(DataError::InvalidParameter {
                name: "subjects_per_fold",
                requirement: "fold size and subject count must be non-zero",
            });
        }
        if !subject_count.is_multiple_of(subjects_per_fold) {
            return Err(DataError::InvalidParameter {
                name: "subjects_per_fold",
                requirement: "must divide the subject count evenly",
            });
        }
        let groups = subject_count / subjects_per_fold;
        let mut folds = Vec::with_capacity(subject_count);
        for g in 0..groups {
            let group: Vec<SubjectId> = (0..subjects_per_fold)
                .map(|i| SubjectId(g * subjects_per_fold + i))
                .collect();
            let train: Vec<SubjectId> = (0..subject_count)
                .map(SubjectId)
                .filter(|s| !group.contains(s))
                .collect();
            for (t, &test_subject) in group.iter().enumerate() {
                let validation: Vec<SubjectId> = group
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != t)
                    .map(|(_, &s)| s)
                    .collect();
                folds.push(Fold {
                    train: train.clone(),
                    validation,
                    test: vec![test_subject],
                });
            }
        }
        Ok(Self {
            folds,
            subjects_per_fold,
        })
    }

    /// The paper's protocol: 15 subjects, folds of 3.
    ///
    /// # Errors
    ///
    /// Never fails for the default arguments; propagates
    /// [`DataError::InvalidParameter`] otherwise.
    pub fn paper_protocol() -> Result<Self, DataError> {
        Self::new(crate::FULL_SUBJECT_COUNT, 3)
    }

    /// Number of folds (train/val/test rotations).
    pub fn len(&self) -> usize {
        self.folds.len()
    }

    /// Whether there are no folds (never true for a successfully built split).
    pub fn is_empty(&self) -> bool {
        self.folds.is_empty()
    }

    /// All folds.
    pub fn folds(&self) -> &[Fold] {
        &self.folds
    }

    /// One fold by index.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::UnknownFold`] when `index` is out of range.
    pub fn fold(&self, index: usize) -> Result<&Fold, DataError> {
        self.folds.get(index).ok_or(DataError::UnknownFold {
            index,
            available: self.folds.len(),
        })
    }
}

/// Simple split: the last `holdout` subjects are the test set, the rest train.
///
/// # Errors
///
/// Returns [`DataError::InvalidParameter`] if `holdout` is zero or not smaller
/// than `subject_count`.
pub fn holdout_split(subject_count: usize, holdout: usize) -> Result<Fold, DataError> {
    if holdout == 0 || holdout >= subject_count {
        return Err(DataError::InvalidParameter {
            name: "holdout",
            requirement: "must be non-zero and smaller than the subject count",
        });
    }
    let split = subject_count - holdout;
    Ok(Fold {
        train: (0..split).map(SubjectId).collect(),
        validation: Vec::new(),
        test: (split..subject_count).map(SubjectId).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_protocol_has_15_rotations() {
        let cv = CrossValidation::paper_protocol().unwrap();
        assert_eq!(cv.len(), 15);
        assert!(!cv.is_empty());
        assert_eq!(cv.subjects_per_fold, 3);
    }

    #[test]
    fn folds_are_disjoint_and_complete() {
        let cv = CrossValidation::paper_protocol().unwrap();
        for fold in cv.folds() {
            assert!(fold.is_disjoint());
            assert_eq!(fold.train.len(), 12);
            assert_eq!(fold.validation.len(), 2);
            assert_eq!(fold.test.len(), 1);
            let total = fold.train.len() + fold.validation.len() + fold.test.len();
            assert_eq!(total, 15);
        }
    }

    #[test]
    fn every_subject_is_tested_exactly_once() {
        let cv = CrossValidation::paper_protocol().unwrap();
        let mut tested: Vec<usize> = cv.folds().iter().map(|f| f.test[0].0).collect();
        tested.sort_unstable();
        assert_eq!(tested, (0..15).collect::<Vec<_>>());
    }

    #[test]
    fn validation_subjects_come_from_the_same_group() {
        let cv = CrossValidation::new(6, 3).unwrap();
        // First group is subjects 0,1,2; when 0 is tested, 1 and 2 validate.
        let fold = cv.fold(0).unwrap();
        assert_eq!(fold.test, vec![SubjectId(0)]);
        assert_eq!(fold.validation, vec![SubjectId(1), SubjectId(2)]);
        assert!(fold.train.iter().all(|s| s.0 >= 3));
    }

    #[test]
    fn rejects_non_dividing_fold_size() {
        assert!(CrossValidation::new(15, 4).is_err());
        assert!(CrossValidation::new(15, 0).is_err());
        assert!(CrossValidation::new(0, 3).is_err());
    }

    #[test]
    fn fold_index_out_of_range() {
        let cv = CrossValidation::new(6, 3).unwrap();
        assert!(cv.fold(6).is_err());
        assert!(cv.fold(0).is_ok());
    }

    #[test]
    fn holdout_split_partitions_subjects() {
        let f = holdout_split(5, 2).unwrap();
        assert_eq!(f.train.len(), 3);
        assert_eq!(f.test.len(), 2);
        assert!(f.is_disjoint());
        assert!(holdout_split(5, 0).is_err());
        assert!(holdout_split(5, 5).is_err());
    }

    #[test]
    fn non_disjoint_fold_detected() {
        let f = Fold {
            train: vec![SubjectId(0)],
            validation: vec![SubjectId(0)],
            test: vec![SubjectId(1)],
        };
        assert!(!f.is_disjoint());
    }
}
