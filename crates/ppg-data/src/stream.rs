//! Streaming window delivery: the [`WindowSource`] trait and its sources.
//!
//! The paper's CHRIS system is an *online* pipeline — the wearable sees one
//! 8-second window at a time and decides per window whether to run locally or
//! offload. Batch `Vec<LabeledWindow>` APIs were an artifact of the
//! reproduction, not the design. This module makes the window-by-window shape
//! first-class:
//!
//! * [`WindowSource`] — an iterator-like pull interface
//!   (`next_window() -> Option<Result<LabeledWindow, DataError>>`) with a
//!   [`size_hint`](WindowSource::size_hint) contract, implemented by every
//!   window producer in the workspace,
//! * [`SynthWindows`] — fully lazy synthesis from
//!   `(seed, subjects, activity schedule)` via
//!   [`DatasetBuilder::window_stream`](crate::DatasetBuilder::window_stream):
//!   at most **one activity segment** of raw signal is alive at a time and
//!   exactly **one window** is materialized per pull, instead of the whole
//!   session,
//! * [`DatasetWindows`] / [`RecordingWindows`] — lazy window extraction from
//!   already-materialized recordings
//!   ([`Dataset::window_stream`](crate::Dataset::window_stream) /
//!   [`SessionRecording::window_stream`](crate::SessionRecording::window_stream)),
//! * [`SliceSource`] / [`VecSource`] — adapters that keep every existing
//!   `&[LabeledWindow]` call site compiling: [`IntoWindowSource`] is
//!   implemented for slices, slice references, arrays and vectors, so
//!   consumers such as `chris_core::ChrisRuntime::run` accept both eager
//!   buffers and streams through one generic parameter,
//! * [`cache`] — memoized synthesis: [`cache::WindowCache`] is a bounded,
//!   deterministic LRU over materialized streams keyed by the full synthesis
//!   input, and [`cache::CachedWindows`] replays the shared buffer as a
//!   stream that is observationally identical to a fresh [`SynthWindows`].
//!
//! The streams are **bit-exact** replays of the eager paths: collecting any
//! of them yields element-wise the same `LabeledWindow`s the legacy
//! `Vec`-returning methods produced (locked in by property tests), so reports
//! computed from a stream are byte-identical to reports computed from the
//! eager vectors.

pub mod cache;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::activity::Activity;
use crate::dataset::{synthesize_recording, Dataset, SessionRecording};
use crate::error::DataError;
use crate::subject::{SubjectId, SubjectProfile};
use crate::window::LabeledWindow;
use crate::{WINDOW_SAMPLES, WINDOW_STRIDE};

/// Number of analysis windows extractable from `samples` samples with the
/// paper's 256-sample / 64-sample-stride scheme (0 when too short).
pub fn window_count_for(samples: usize) -> usize {
    if samples < WINDOW_SAMPLES {
        0
    } else {
        (samples - WINDOW_SAMPLES) / WINDOW_STRIDE + 1
    }
}

/// A pull-based producer of labeled analysis windows.
///
/// The streaming analogue of `&[LabeledWindow]`: callers repeatedly ask for
/// the next window until `None`, and at most one window needs to be alive at
/// a time. Errors are yielded in-band (`Some(Err(..))`) so lazy synthesis can
/// fail mid-stream without having validated the whole session up front.
///
/// # Contract
///
/// * After the first `None`, every subsequent call returns `None` (fused).
/// * [`size_hint`](Self::size_hint) bounds the number of *windows* still to
///   be yielded (error items are not counted); like
///   [`Iterator::size_hint`], `(lo, Some(hi))` promises `lo <= n <= hi`.
///   Sources backed by known geometry (slices, synthesis) return exact
///   bounds.
pub trait WindowSource {
    /// Pulls the next window, `Some(Err(..))` on a synthesis/extraction
    /// failure, or `None` when the stream is exhausted.
    fn next_window(&mut self) -> Option<Result<LabeledWindow, DataError>>;

    /// Bounds on the number of windows remaining, `(lower, upper)`.
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }

    /// Drives the source to exhaustion with a **by-reference** visitor,
    /// returning the number of windows visited; stops at the first error
    /// (from the source, converted via `From<DataError>`, or from the
    /// visitor).
    ///
    /// The zero-copy consumption path: single-pass consumers
    /// (`chris_core::ChrisRuntime::run`, `chris_core::Profiler`) drive their
    /// loops through it, so buffer-backed sources like [`SliceSource`]
    /// override it to iterate without cloning a single window — eager call
    /// sites keep their pre-streaming cost.
    fn try_for_each_window<E: From<DataError>>(
        &mut self,
        mut f: impl FnMut(&LabeledWindow) -> Result<(), E>,
    ) -> Result<usize, E>
    where
        Self: Sized,
    {
        let mut n = 0usize;
        while let Some(item) = self.next_window() {
            let window = item.map_err(E::from)?;
            f(&window)?;
            n += 1;
        }
        Ok(n)
    }

    /// Borrowed view of the remaining windows when the source is backed by
    /// an in-memory buffer ([`SliceSource`], [`VecSource`]); `None` for lazy
    /// sources. Lets inherently multi-pass consumers
    /// (`chris_core::Profiler::profile_all`) use already-materialized
    /// workloads in place instead of buffering a copy.
    fn as_slice(&self) -> Option<&[LabeledWindow]> {
        None
    }

    /// Adapts the source into a standard [`Iterator`] of
    /// `Result<LabeledWindow, DataError>` for use with combinators.
    fn iter(self) -> WindowSourceIter<Self>
    where
        Self: Sized,
    {
        WindowSourceIter { source: self }
    }
}

/// Conversion into a [`WindowSource`].
///
/// The generic bound used by window consumers
/// (`chris_core::ChrisRuntime::run`, `chris_core::Profiler::profile_all`):
/// implemented identically (identity) by every source in this module and by
/// reference-to-buffer types via [`SliceSource`] / [`VecSource`], so call
/// sites can pass `&windows`, `&[..]`, a `Vec` or any stream without
/// adapting manually.
pub trait IntoWindowSource {
    /// The concrete source this value converts into.
    type Source: WindowSource;

    /// Performs the conversion.
    fn into_window_source(self) -> Self::Source;
}

/// [`Iterator`] adapter over any [`WindowSource`] (see
/// [`WindowSource::iter`]).
#[derive(Debug)]
pub struct WindowSourceIter<S> {
    source: S,
}

impl<S: WindowSource> Iterator for WindowSourceIter<S> {
    type Item = Result<LabeledWindow, DataError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.source.next_window()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // The source's hint counts windows only; this iterator additionally
        // yields error items, so only the lower bound carries over.
        (self.source.size_hint().0, None)
    }
}

/// Eagerly drains a source into a `Vec`, stopping at the first error.
///
/// The bridge back from the streaming world for call sites that genuinely
/// need random access (multi-pass profiling, tests). Each call is recorded in
/// [`metrics::eager_collects`] so tests can assert that hot paths — the fleet
/// executor in particular — never materialize a full window vector.
///
/// # Errors
///
/// Propagates the first [`DataError`] the source yields.
pub fn collect_windows<S: IntoWindowSource>(source: S) -> Result<Vec<LabeledWindow>, DataError> {
    metrics::record_eager_collect();
    let mut source = source.into_window_source();
    let mut out = Vec::with_capacity(source.size_hint().0);
    while let Some(item) = source.next_window() {
        out.push(item?);
    }
    Ok(out)
}

/// Instrumentation counters for the streaming migration.
///
/// A facade over the process-global [`telemetry`] registry: the counter is
/// the `chris_eager_collects_total` series on [`telemetry::global`], so it
/// shows up in metrics expositions while keeping the original process-wide
/// watchdog semantics that integration tests (and debug assertions in
/// downstream crates) rely on to verify that streaming hot paths never fall
/// back to eager `Vec<LabeledWindow>` materialization.
pub mod metrics {
    use std::sync::OnceLock;
    use telemetry::{Counter, Stability};

    /// Series name of the eager-materialization watchdog counter.
    pub const EAGER_COLLECTS_SERIES: &str = "chris_eager_collects_total";

    fn counter() -> &'static Counter {
        static EAGER_COLLECTS: OnceLock<Counter> = OnceLock::new();
        EAGER_COLLECTS.get_or_init(|| {
            telemetry::global()
                .counter(
                    EAGER_COLLECTS_SERIES,
                    &[],
                    "Full window-vector materializations since process start",
                    Stability::Observational,
                )
                .expect("eager-collect series registration cannot fail")
        })
    }

    /// Number of full window-vector materializations since process start
    /// (every [`super::collect_windows`] call, which all eager `windows()`
    /// methods delegate to).
    pub fn eager_collects() -> usize {
        usize::try_from(counter().value()).unwrap_or(usize::MAX)
    }

    pub(crate) fn record_eager_collect() {
        counter().inc();
    }
}

/// [`WindowSource`] over a borrowed window buffer; windows are cloned out one
/// at a time.
///
/// The compatibility adapter that keeps `&[LabeledWindow]` call sites working
/// against stream-consuming APIs.
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    remaining: &'a [LabeledWindow],
}

impl<'a> SliceSource<'a> {
    /// Wraps a window slice.
    pub fn new(windows: &'a [LabeledWindow]) -> Self {
        Self { remaining: windows }
    }
}

impl WindowSource for SliceSource<'_> {
    fn next_window(&mut self) -> Option<Result<LabeledWindow, DataError>> {
        let (first, rest) = self.remaining.split_first()?;
        self.remaining = rest;
        Some(Ok(first.clone()))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining.len(), Some(self.remaining.len()))
    }

    /// Zero-copy override: visits the buffered windows by reference; the
    /// per-pull clone of [`SliceSource::next_window`] only happens when a
    /// consumer genuinely needs owned windows. On a visitor error the
    /// source is positioned after the failing window, exactly like the
    /// default implementation.
    fn try_for_each_window<E: From<DataError>>(
        &mut self,
        mut f: impl FnMut(&LabeledWindow) -> Result<(), E>,
    ) -> Result<usize, E> {
        let mut visited = 0usize;
        while let Some((first, rest)) = self.remaining.split_first() {
            self.remaining = rest;
            f(first)?;
            visited += 1;
        }
        Ok(visited)
    }

    fn as_slice(&self) -> Option<&[LabeledWindow]> {
        Some(self.remaining)
    }
}

/// Owning [`WindowSource`] over a window vector.
#[derive(Debug)]
pub struct VecSource {
    windows: std::vec::IntoIter<LabeledWindow>,
}

impl VecSource {
    /// Wraps an owned window vector.
    pub fn new(windows: Vec<LabeledWindow>) -> Self {
        Self {
            windows: windows.into_iter(),
        }
    }
}

impl WindowSource for VecSource {
    fn next_window(&mut self) -> Option<Result<LabeledWindow, DataError>> {
        self.windows.next().map(Ok)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.windows.size_hint()
    }

    fn as_slice(&self) -> Option<&[LabeledWindow]> {
        Some(self.windows.as_slice())
    }
}

impl<'a> IntoWindowSource for &'a [LabeledWindow] {
    type Source = SliceSource<'a>;

    fn into_window_source(self) -> Self::Source {
        SliceSource::new(self)
    }
}

impl<'a> IntoWindowSource for &'a Vec<LabeledWindow> {
    type Source = SliceSource<'a>;

    fn into_window_source(self) -> Self::Source {
        SliceSource::new(self)
    }
}

impl<'a, const N: usize> IntoWindowSource for &'a [LabeledWindow; N] {
    type Source = SliceSource<'a>;

    fn into_window_source(self) -> Self::Source {
        SliceSource::new(self)
    }
}

impl IntoWindowSource for Vec<LabeledWindow> {
    type Source = VecSource;

    fn into_window_source(self) -> Self::Source {
        VecSource::new(self)
    }
}

impl<'a> IntoWindowSource for SliceSource<'a> {
    type Source = Self;

    fn into_window_source(self) -> Self::Source {
        self
    }
}

impl IntoWindowSource for VecSource {
    type Source = Self;

    fn into_window_source(self) -> Self::Source {
        self
    }
}

impl<'a> IntoWindowSource for RecordingWindows<'a> {
    type Source = Self;

    fn into_window_source(self) -> Self::Source {
        self
    }
}

impl<'a> IntoWindowSource for DatasetWindows<'a> {
    type Source = Self;

    fn into_window_source(self) -> Self::Source {
        self
    }
}

impl IntoWindowSource for SynthWindows {
    type Source = Self;

    fn into_window_source(self) -> Self::Source {
        self
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecordingState {
    /// Length not yet validated.
    Fresh,
    /// Validated; yielding windows.
    Yielding,
    /// Exhausted or failed.
    Done,
}

/// Lazy [`WindowSource`] over one materialized [`SessionRecording`]
/// (see [`SessionRecording::window_stream`]).
///
/// Mirrors the legacy eager extraction exactly: a recording shorter than one
/// window yields a single [`DataError::RecordingTooShort`]; otherwise every
/// stride-aligned window is yielded in order, one allocation per pull.
#[derive(Debug, Clone)]
pub struct RecordingWindows<'a> {
    recording: &'a SessionRecording,
    next_start: usize,
    state: RecordingState,
}

impl<'a> RecordingWindows<'a> {
    pub(crate) fn new(recording: &'a SessionRecording) -> Self {
        Self {
            recording,
            next_start: 0,
            state: RecordingState::Fresh,
        }
    }
}

impl WindowSource for RecordingWindows<'_> {
    fn next_window(&mut self) -> Option<Result<LabeledWindow, DataError>> {
        match self.state {
            RecordingState::Fresh => {
                if self.recording.len() < WINDOW_SAMPLES {
                    self.state = RecordingState::Done;
                    return Some(Err(DataError::RecordingTooShort {
                        samples: self.recording.len(),
                        required: WINDOW_SAMPLES,
                    }));
                }
                self.state = RecordingState::Yielding;
            }
            RecordingState::Yielding => {}
            RecordingState::Done => return None,
        }
        if self.next_start + WINDOW_SAMPLES <= self.recording.len() {
            let window = self.recording.window_at(self.next_start);
            self.next_start += WINDOW_STRIDE;
            Some(Ok(window))
        } else {
            self.state = RecordingState::Done;
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = match self.state {
            RecordingState::Done => 0,
            _ => window_count_for(self.recording.len().saturating_sub(self.next_start)),
        };
        (remaining, Some(remaining))
    }
}

/// Lazy [`WindowSource`] over every recording of a materialized [`Dataset`]
/// (see [`Dataset::window_stream`]), in subject/activity order.
///
/// Recordings too short for one window are skipped, matching the legacy
/// `Dataset::windows()` behaviour (such recordings cannot exist after a
/// successful build).
#[derive(Debug, Clone)]
pub struct DatasetWindows<'a> {
    recordings: std::slice::Iter<'a, SessionRecording>,
    current: Option<RecordingWindows<'a>>,
}

impl<'a> DatasetWindows<'a> {
    pub(crate) fn new(dataset: &'a Dataset) -> Self {
        Self {
            recordings: dataset.recordings().iter(),
            current: None,
        }
    }
}

impl WindowSource for DatasetWindows<'_> {
    fn next_window(&mut self) -> Option<Result<LabeledWindow, DataError>> {
        loop {
            if let Some(current) = &mut self.current {
                match current.next_window() {
                    Some(Ok(window)) => return Some(Ok(window)),
                    // Parity with the eager path's `unwrap_or_default()`:
                    // a too-short recording contributes no windows.
                    Some(Err(_)) | None => self.current = None,
                }
            }
            match self.recordings.next() {
                Some(recording) => self.current = Some(recording.window_stream()),
                None => return None,
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let current = self.current.as_ref().map_or(0, |c| c.size_hint().0);
        let rest: usize = self
            .recordings
            .clone()
            .map(|r| r.window_count())
            .sum::<usize>();
        let total = current + rest;
        (total, Some(total))
    }
}

/// Per-subject synthesis cursor of a [`SynthWindows`] stream.
#[derive(Debug, Clone)]
struct SubjectCursor {
    rng: StdRng,
    profile: SubjectProfile,
    last_hr: f32,
    next_activity: usize,
    /// The one activity segment currently alive, plus the next window start.
    current: Option<(SessionRecording, usize)>,
}

/// Fully lazy [`WindowSource`]: synthesizes windows on demand from
/// `(seed, subject count, activity schedule)` without ever materializing the
/// dataset, a session, or a window vector.
///
/// Produced by [`DatasetBuilder::window_stream`](crate::DatasetBuilder::window_stream)
/// (and, one layer up, by `fleet::DeviceScenario::window_stream`). The replay
/// is bit-exact with the eager `build()?.windows()` path: the same master RNG
/// draws, the same per-subject streams, the same activity chaining of the
/// heart-rate trajectory. Peak memory is one activity segment of raw signal
/// (a few KiB) instead of the whole multi-activity session and its window
/// vector.
#[derive(Debug, Clone)]
pub struct SynthWindows {
    activities: Vec<Activity>,
    samples_per_activity: usize,
    subject_count: usize,
    master: StdRng,
    next_subject: usize,
    subject: Option<SubjectCursor>,
    remaining: usize,
}

impl SynthWindows {
    pub(crate) fn new(
        subject_count: usize,
        activities: Vec<Activity>,
        samples_per_activity: usize,
        seed: u64,
    ) -> Self {
        let remaining = subject_count * activities.len() * window_count_for(samples_per_activity);
        Self {
            activities,
            samples_per_activity,
            subject_count,
            master: StdRng::seed_from_u64(seed),
            next_subject: 0,
            subject: None,
            remaining,
        }
    }

    /// Exact number of windows still to be synthesized.
    pub fn len(&self) -> usize {
        self.remaining
    }

    /// Whether the stream is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining == 0
    }
}

impl WindowSource for SynthWindows {
    fn next_window(&mut self) -> Option<Result<LabeledWindow, DataError>> {
        loop {
            if let Some(subject) = &mut self.subject {
                if let Some((recording, next_start)) = &mut subject.current {
                    if *next_start + WINDOW_SAMPLES <= recording.len() {
                        let window = recording.window_at(*next_start);
                        *next_start += WINDOW_STRIDE;
                        self.remaining -= 1;
                        return Some(Ok(window));
                    }
                    subject.current = None;
                }
                if subject.next_activity < self.activities.len() {
                    let activity = self.activities[subject.next_activity];
                    subject.next_activity += 1;
                    let recording = synthesize_recording(
                        &mut subject.rng,
                        &subject.profile,
                        activity,
                        self.samples_per_activity,
                        &mut subject.last_hr,
                    );
                    subject.current = Some((recording, 0));
                    continue;
                }
                self.subject = None;
            }
            if self.next_subject < self.subject_count {
                // Same derivation as `DatasetBuilder::build`: every subject
                // gets an independent stream drawn from the master RNG.
                let subject_seed: u64 = self.master.random();
                let mut rng = StdRng::seed_from_u64(subject_seed);
                let profile = SubjectProfile::generate(SubjectId(self.next_subject), &mut rng);
                self.subject = Some(SubjectCursor {
                    last_hr: profile.resting_hr_bpm,
                    rng,
                    profile,
                    next_activity: 0,
                    current: None,
                });
                self.next_subject += 1;
                continue;
            }
            return None;
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetBuilder;

    fn small_builder() -> DatasetBuilder {
        DatasetBuilder::new()
            .subjects(2)
            .seconds_per_activity(24.0)
            .seed(11)
    }

    #[test]
    fn slice_source_round_trips_and_reports_exact_size() {
        let windows = small_builder().build().unwrap().windows();
        let mut source = SliceSource::new(&windows);
        assert_eq!(source.size_hint(), (windows.len(), Some(windows.len())));
        let mut collected = Vec::new();
        while let Some(item) = source.next_window() {
            collected.push(item.unwrap());
        }
        assert_eq!(collected, windows);
        assert_eq!(source.size_hint(), (0, Some(0)));
        assert!(source.next_window().is_none());
    }

    #[test]
    fn vec_source_owns_its_windows() {
        let windows = small_builder().build().unwrap().windows();
        let n = windows.len();
        let collected: Vec<_> = VecSource::new(windows.clone())
            .iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(collected.len(), n);
        assert_eq!(collected, windows);
    }

    #[test]
    fn synth_stream_replays_the_eager_dataset_exactly() {
        let eager = small_builder().build().unwrap().windows();
        let stream = small_builder().window_stream().unwrap();
        assert_eq!(stream.len(), eager.len());
        let streamed: Vec<_> = stream.iter().map(Result::unwrap).collect();
        assert_eq!(streamed, eager);
    }

    #[test]
    fn synth_stream_size_hint_counts_down_exactly() {
        let mut stream = small_builder().window_stream().unwrap();
        let total = stream.len();
        assert!(total > 0);
        let mut seen = 0usize;
        while let Some(item) = stream.next_window() {
            item.unwrap();
            seen += 1;
            assert_eq!(stream.size_hint(), (total - seen, Some(total - seen)));
        }
        assert_eq!(seen, total);
        assert!(stream.is_empty());
    }

    #[test]
    fn dataset_stream_matches_eager_windows() {
        let dataset = small_builder().build().unwrap();
        let eager = dataset.windows();
        let streamed: Vec<_> = dataset.window_stream().iter().map(Result::unwrap).collect();
        assert_eq!(streamed, eager);
        assert_eq!(dataset.window_stream().size_hint().0, eager.len());
    }

    #[test]
    fn recording_stream_errors_once_on_short_recordings() {
        let dataset = small_builder().build().unwrap();
        let mut recording = dataset.recordings()[0].clone();
        recording.ppg.truncate(100);
        let mut stream = recording.window_stream();
        assert_eq!(stream.size_hint(), (0, Some(0)));
        assert!(matches!(
            stream.next_window(),
            Some(Err(DataError::RecordingTooShort { samples: 100, .. }))
        ));
        assert!(stream.next_window().is_none());
    }

    #[test]
    fn collect_windows_bumps_the_eager_counter() {
        let before = metrics::eager_collects();
        let windows = collect_windows(small_builder().window_stream().unwrap()).unwrap();
        assert!(!windows.is_empty());
        assert!(metrics::eager_collects() > before);
    }

    #[test]
    fn window_count_for_matches_extraction_arithmetic() {
        assert_eq!(window_count_for(0), 0);
        assert_eq!(window_count_for(WINDOW_SAMPLES - 1), 0);
        assert_eq!(window_count_for(WINDOW_SAMPLES), 1);
        assert_eq!(window_count_for(WINDOW_SAMPLES + WINDOW_STRIDE), 2);
        let samples = (24.0 * crate::SAMPLE_RATE_HZ) as usize;
        let dataset = small_builder().build().unwrap();
        assert_eq!(
            dataset.recordings()[0].window_count(),
            window_count_for(samples)
        );
    }
}
