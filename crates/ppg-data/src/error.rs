//! Error type for dataset generation and slicing.

use std::fmt;

/// Errors produced while building or slicing the synthetic dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A builder parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the requirement.
        requirement: &'static str,
    },
    /// A recording is too short to produce even one analysis window.
    RecordingTooShort {
        /// Number of samples in the recording.
        samples: usize,
        /// Number of samples required for one window.
        required: usize,
    },
    /// A subject index was out of range.
    UnknownSubject {
        /// The requested subject index.
        index: usize,
        /// Number of subjects in the dataset.
        available: usize,
    },
    /// A cross-validation fold index was out of range.
    UnknownFold {
        /// The requested fold index.
        index: usize,
        /// Number of folds available.
        available: usize,
    },
    /// A DSP routine failed while deriving labels or features.
    Dsp(ppg_dsp::DspError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidParameter { name, requirement } => {
                write!(f, "invalid dataset parameter `{name}` ({requirement})")
            }
            DataError::RecordingTooShort { samples, required } => {
                write!(
                    f,
                    "recording too short: {samples} samples, {required} required"
                )
            }
            DataError::UnknownSubject { index, available } => {
                write!(f, "unknown subject {index}, dataset has {available}")
            }
            DataError::UnknownFold { index, available } => {
                write!(f, "unknown fold {index}, cross-validation has {available}")
            }
            DataError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ppg_dsp::DspError> for DataError {
    fn from(e: ppg_dsp::DspError) -> Self {
        DataError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = DataError::InvalidParameter {
            name: "subjects",
            requirement: "must be 1..=15",
        };
        assert!(e.to_string().contains("subjects"));
        let e = DataError::RecordingTooShort {
            samples: 10,
            required: 256,
        };
        assert!(e.to_string().contains("256"));
        let e = DataError::UnknownSubject {
            index: 20,
            available: 15,
        };
        assert!(e.to_string().contains("20"));
        let e = DataError::UnknownFold {
            index: 9,
            available: 5,
        };
        assert!(e.to_string().contains("9"));
    }

    #[test]
    fn dsp_error_is_wrapped_with_source() {
        use std::error::Error;
        let e: DataError = ppg_dsp::DspError::EmptyInput { op: "mae" }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("mae"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
