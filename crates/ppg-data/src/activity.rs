//! The nine PPGDalia activities and their difficulty ordering.
//!
//! The paper orders the activities by the average accelerometer signal energy
//! they induce (its ref. [19]) and assigns a *difficulty level* from 1 (least
//! motion artifacts) to 9 (most). The CHRIS decision engine compares the
//! predicted activity's difficulty against a per-configuration threshold to
//! pick the simple or the complex HR model.

use serde::{Deserialize, Serialize};

/// One of the nine daily activities recorded in PPGDalia.
///
/// The variants are listed in difficulty order (least to most motion
/// artifacts), so `Activity::ALL[i]` has difficulty level `i + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Activity {
    /// Lying or sitting still during the guided rest periods.
    Resting,
    /// Sitting and reading.
    Sitting,
    /// Working at a desk (typing, mouse use).
    Working,
    /// Having lunch (irregular arm movements of moderate amplitude).
    Lunch,
    /// Driving a car.
    Driving,
    /// Cycling outdoors.
    Cycling,
    /// Walking (includes short walking breaks).
    Walking,
    /// Ascending and descending stairs.
    Stairs,
    /// Playing table soccer (sudden, high-energy arm movements).
    TableSoccer,
}

/// Difficulty level of an activity: 1 (easiest) to 9 (hardest).
///
/// Wraps the cardinal number the paper associates with each activity so that
/// thresholds and levels cannot be confused with arbitrary integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DifficultyLevel(u8);

impl DifficultyLevel {
    /// Lowest difficulty (resting).
    pub const MIN: DifficultyLevel = DifficultyLevel(1);
    /// Highest difficulty (table soccer).
    pub const MAX: DifficultyLevel = DifficultyLevel(9);

    /// Creates a difficulty level, returning `None` outside `1..=9`.
    pub fn new(level: u8) -> Option<Self> {
        (1..=9).contains(&level).then_some(Self(level))
    }

    /// The raw level in `1..=9`.
    pub fn value(self) -> u8 {
        self.0
    }
}

impl std::fmt::Display for DifficultyLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Activity {
    /// All activities in difficulty order (easiest first).
    pub const ALL: [Activity; 9] = [
        Activity::Resting,
        Activity::Sitting,
        Activity::Working,
        Activity::Lunch,
        Activity::Driving,
        Activity::Cycling,
        Activity::Walking,
        Activity::Stairs,
        Activity::TableSoccer,
    ];

    /// Number of distinct activities.
    pub const COUNT: usize = 9;

    /// Difficulty level from 1 (least motion artifacts) to 9 (most), following
    /// the ordering by average accelerometer energy used in the paper.
    pub fn difficulty(self) -> DifficultyLevel {
        let idx = Self::ALL
            .iter()
            .position(|&a| a == self)
            .expect("activity is in ALL");
        DifficultyLevel::new(idx as u8 + 1).expect("index within 1..=9")
    }

    /// Activity with the given difficulty level.
    pub fn from_difficulty(level: DifficultyLevel) -> Self {
        Self::ALL[(level.value() - 1) as usize]
    }

    /// Stable zero-based index (same order as [`Activity::ALL`]); useful as a
    /// class label for the activity-recognition classifier.
    pub fn index(self) -> usize {
        (self.difficulty().value() - 1) as usize
    }

    /// Activity from a zero-based class index, if valid.
    pub fn from_index(index: usize) -> Option<Self> {
        Self::ALL.get(index).copied()
    }

    /// Short human-readable name (matches the paper's terminology).
    pub fn name(self) -> &'static str {
        match self {
            Activity::Resting => "resting",
            Activity::Sitting => "sitting",
            Activity::Working => "working",
            Activity::Lunch => "lunch",
            Activity::Driving => "driving",
            Activity::Cycling => "cycling",
            Activity::Walking => "walking",
            Activity::Stairs => "stairs",
            Activity::TableSoccer => "table soccer",
        }
    }

    /// Typical heart-rate band (BPM) induced by the activity, used by the
    /// synthetic HR trajectory generator.
    pub fn hr_band_bpm(self) -> (f32, f32) {
        match self {
            Activity::Resting => (55.0, 70.0),
            Activity::Sitting => (60.0, 75.0),
            Activity::Working => (62.0, 80.0),
            Activity::Lunch => (65.0, 85.0),
            Activity::Driving => (65.0, 85.0),
            Activity::Cycling => (90.0, 130.0),
            Activity::Walking => (80.0, 110.0),
            Activity::Stairs => (95.0, 135.0),
            Activity::TableSoccer => (85.0, 125.0),
        }
    }

    /// Root-mean-square amplitude (in g) of the non-gravity accelerometer
    /// component typical of the activity. Drives both the synthetic
    /// accelerometer and the amount of motion artifacts in the PPG.
    pub fn motion_intensity_g(self) -> f32 {
        match self {
            Activity::Resting => 0.015,
            Activity::Sitting => 0.03,
            Activity::Working => 0.06,
            Activity::Lunch => 0.12,
            Activity::Driving => 0.18,
            Activity::Cycling => 0.28,
            Activity::Walking => 0.42,
            Activity::Stairs => 0.60,
            Activity::TableSoccer => 0.85,
        }
    }

    /// Dominant periodicity of the wrist movement in Hz (arm swing cadence,
    /// pedalling, ...), or `None` for aperiodic activities.
    pub fn motion_periodicity_hz(self) -> Option<f32> {
        match self {
            Activity::Walking => Some(1.8),
            Activity::Stairs => Some(1.5),
            Activity::Cycling => Some(1.1),
            Activity::TableSoccer => Some(2.6),
            _ => None,
        }
    }

    /// Fraction of windows containing sudden high-amplitude motion bursts
    /// (non-periodic artifacts such as reaching for food or steering).
    pub fn burst_probability(self) -> f32 {
        match self {
            Activity::Resting => 0.01,
            Activity::Sitting => 0.03,
            Activity::Working => 0.08,
            Activity::Lunch => 0.25,
            Activity::Driving => 0.20,
            Activity::Cycling => 0.10,
            Activity::Walking => 0.10,
            Activity::Stairs => 0.15,
            Activity::TableSoccer => 0.45,
        }
    }
}

impl std::fmt::Display for Activity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_nine_activities() {
        assert_eq!(Activity::ALL.len(), Activity::COUNT);
        assert_eq!(Activity::COUNT, 9);
    }

    #[test]
    fn difficulty_levels_are_unique_and_cover_1_to_9() {
        let mut seen = [false; 9];
        for a in Activity::ALL {
            let d = a.difficulty().value();
            assert!((1..=9).contains(&d));
            assert!(!seen[(d - 1) as usize], "duplicate difficulty {d}");
            seen[(d - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn difficulty_round_trip() {
        for a in Activity::ALL {
            assert_eq!(Activity::from_difficulty(a.difficulty()), a);
            assert_eq!(Activity::from_index(a.index()), Some(a));
        }
        assert_eq!(Activity::from_index(9), None);
    }

    #[test]
    fn difficulty_level_bounds() {
        assert!(DifficultyLevel::new(0).is_none());
        assert!(DifficultyLevel::new(10).is_none());
        assert_eq!(DifficultyLevel::new(1), Some(DifficultyLevel::MIN));
        assert_eq!(DifficultyLevel::new(9), Some(DifficultyLevel::MAX));
        assert_eq!(DifficultyLevel::MAX.to_string(), "9");
    }

    #[test]
    fn motion_intensity_is_monotone_in_difficulty() {
        for pair in Activity::ALL.windows(2) {
            assert!(
                pair[1].motion_intensity_g() > pair[0].motion_intensity_g(),
                "{} should move more than {}",
                pair[1],
                pair[0]
            );
        }
    }

    #[test]
    fn resting_is_easiest_table_soccer_hardest() {
        assert_eq!(Activity::Resting.difficulty(), DifficultyLevel::MIN);
        assert_eq!(Activity::TableSoccer.difficulty(), DifficultyLevel::MAX);
    }

    #[test]
    fn hr_bands_are_well_formed() {
        for a in Activity::ALL {
            let (lo, hi) = a.hr_band_bpm();
            assert!(
                lo > 30.0 && hi < 200.0 && lo < hi,
                "{a}: bad band ({lo}, {hi})"
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Activity::ALL.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn burst_probabilities_are_probabilities() {
        for a in Activity::ALL {
            let p = a.burst_probability();
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn periodic_activities_have_plausible_cadence() {
        for a in Activity::ALL {
            if let Some(f) = a.motion_periodicity_hz() {
                assert!(f > 0.5 && f < 5.0);
            }
        }
    }
}
