//! # ppg-data — synthetic PPGDalia-like dataset
//!
//! The CHRIS paper evaluates on **PPGDalia** (Reiss et al., 2019): 37.5 hours
//! of wrist PPG, 3-axis accelerometer and ECG-derived ground-truth heart rate
//! recorded from 15 subjects performing 8 daily activities plus rest.  The
//! real dataset cannot be redistributed here, so this crate generates a
//! **synthetic substitute** that preserves the properties CHRIS actually
//! consumes:
//!
//! * 15 subjects × 9 activities with *equal representation* (the paper points
//!   out Fig. 5 depends on this),
//! * a monotone relationship between an activity's difficulty rank and the
//!   amount of motion artifacts (MAs) corrupting the PPG,
//! * accelerometer signals whose statistical features separate the activities
//!   (so a small random forest reaches > 90 % easy/hard accuracy, as reported),
//! * 32 Hz sampling, 256-sample (8 s) windows with a 64-sample (2 s) stride,
//! * subject-wise cross-validation folds (5 folds × 3 subjects).
//!
//! The generative model is intentionally simple and fully documented in
//! [`ppg_synth`]: a pulse train driven by a smooth heart-rate trajectory, plus
//! baseline wander, sensor noise and motion artifacts that are *correlated
//! with the synthetic accelerometer*, exactly the coupling the paper's
//! difficulty proxy exploits.
//!
//! ## Example
//!
//! ```
//! use ppg_data::{DatasetBuilder, Activity};
//!
//! // A small dataset: 3 subjects, 30 s per activity, deterministic seed.
//! let dataset = DatasetBuilder::new()
//!     .subjects(3)
//!     .seconds_per_activity(30.0)
//!     .seed(7)
//!     .build()?;
//!
//! assert_eq!(dataset.subject_count(), 3);
//! let windows = dataset.windows();
//! assert!(!windows.is_empty());
//! assert!(windows.iter().any(|w| w.activity == Activity::Walking));
//!
//! // The same windows, streamed lazily without materializing the dataset:
//! use ppg_data::WindowSource;
//! let stream = DatasetBuilder::new()
//!     .subjects(3)
//!     .seconds_per_activity(30.0)
//!     .seed(7)
//!     .window_stream()?;
//! assert_eq!(stream.len(), windows.len());
//! # Ok::<(), ppg_data::DataError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accel_synth;
pub mod activity;
pub mod dataset;
pub mod error;
pub mod folds;
pub mod hr_profile;
pub mod noise;
pub mod ppg_synth;
pub mod stream;
pub mod subject;
pub mod window;

pub use activity::{Activity, DifficultyLevel};
pub use dataset::{Dataset, DatasetBuilder, SessionRecording};
pub use error::DataError;
pub use folds::{CrossValidation, Fold};
pub use stream::cache::{CachedWindows, MaybeCachedWindows, WindowCache, WindowCacheKey};
pub use stream::{
    collect_windows, DatasetWindows, IntoWindowSource, RecordingWindows, SliceSource, SynthWindows,
    VecSource, WindowSource,
};
pub use subject::{SubjectId, SubjectProfile};
pub use window::LabeledWindow;

/// Sampling rate of every synthesized stream, matching the paper's 32 Hz.
pub const SAMPLE_RATE_HZ: f32 = ppg_dsp::SAMPLE_RATE_HZ;

/// Samples per analysis window (8 s at 32 Hz).
pub const WINDOW_SAMPLES: usize = ppg_dsp::WINDOW_SAMPLES;

/// Stride between windows (2 s at 32 Hz).
pub const WINDOW_STRIDE: usize = ppg_dsp::WINDOW_STRIDE;

/// Number of subjects in the full synthetic dataset (as in PPGDalia).
pub const FULL_SUBJECT_COUNT: usize = 15;
