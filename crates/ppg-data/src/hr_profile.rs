//! Ground-truth heart-rate trajectory generation.
//!
//! Each activity segment gets a smooth per-sample heart-rate trajectory: the
//! subject's HR drifts towards an activity- and subject-dependent set point
//! with a first-order response, plus band-limited variability. The trajectory
//! plays the role of the ECG-derived ground truth of PPGDalia: it drives the
//! synthetic PPG pulse train and provides the per-window reference the MAE is
//! computed against.

use rand::Rng;

use crate::activity::Activity;
use crate::noise::{ar1_noise, normal};
use crate::subject::SubjectProfile;

/// Physiological bounds applied to every generated trajectory.
pub const HR_MIN_BPM: f32 = 40.0;
/// Upper physiological bound.
pub const HR_MAX_BPM: f32 = 190.0;

/// Generates a per-sample heart-rate trajectory (in BPM) for one activity
/// segment of `n_samples` samples at `sample_rate_hz`.
///
/// `start_hr_bpm` is the heart rate at the end of the previous segment so
/// consecutive segments join continuously; pass the subject's resting HR for
/// the first segment.
pub fn hr_trajectory<R: Rng + ?Sized>(
    rng: &mut R,
    subject: &SubjectProfile,
    activity: Activity,
    n_samples: usize,
    sample_rate_hz: f32,
    start_hr_bpm: f32,
) -> Vec<f32> {
    if n_samples == 0 {
        return Vec::new();
    }
    let (band_lo, band_hi) = activity.hr_band_bpm();
    // Subject-specific set point within the activity band.
    let band_mid = (band_lo + band_hi) / 2.0;
    let elevation = (band_mid - 62.0).max(0.0) * subject.hr_reactivity;
    let set_point =
        (subject.resting_hr_bpm + elevation + normal(rng, 0.0, (band_hi - band_lo) / 6.0))
            .clamp(HR_MIN_BPM + 5.0, HR_MAX_BPM - 10.0);

    // First-order approach to the set point with a ~30 s time constant.
    let tau_s = 30.0;
    let alpha = (1.0 / (tau_s * sample_rate_hz)).min(1.0);

    // Band-limited variability around the trend.
    let variability = ar1_noise(rng, n_samples, 0.999, subject.hr_variability_bpm);

    let mut out = Vec::with_capacity(n_samples);
    let mut hr = start_hr_bpm.clamp(HR_MIN_BPM, HR_MAX_BPM);
    for v in variability {
        hr += alpha * (set_point - hr);
        out.push((hr + v).clamp(HR_MIN_BPM, HR_MAX_BPM));
    }
    out
}

/// Average of a heart-rate trajectory over a window `[start, start + len)`,
/// which is the ground-truth label convention used for the 8 s windows.
pub fn window_mean_hr(trajectory: &[f32], start: usize, len: usize) -> f32 {
    let end = (start + len).min(trajectory.len());
    let slice = &trajectory[start..end];
    slice.iter().sum::<f32>() / slice.len().max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subject::SubjectId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn subject() -> SubjectProfile {
        SubjectProfile::nominal(SubjectId(0))
    }

    #[test]
    fn trajectory_has_requested_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = hr_trajectory(&mut rng, &subject(), Activity::Sitting, 1000, 32.0, 65.0);
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn trajectory_respects_physiological_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for activity in Activity::ALL {
            let t = hr_trajectory(&mut rng, &subject(), activity, 32 * 120, 32.0, 65.0);
            assert!(t.iter().all(|&hr| (HR_MIN_BPM..=HR_MAX_BPM).contains(&hr)));
        }
    }

    #[test]
    fn exercise_raises_heart_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let rest = hr_trajectory(
            &mut rng,
            &subject(),
            Activity::Resting,
            32 * 300,
            32.0,
            65.0,
        );
        let stairs = hr_trajectory(&mut rng, &subject(), Activity::Stairs, 32 * 300, 32.0, 65.0);
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        // Compare the steady-state tail.
        assert!(
            mean(&stairs[stairs.len() / 2..]) > mean(&rest[rest.len() / 2..]) + 10.0,
            "stairs HR should be well above resting HR"
        );
    }

    #[test]
    fn trajectory_is_continuous_with_start_hr() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = hr_trajectory(&mut rng, &subject(), Activity::Cycling, 320, 32.0, 70.0);
        assert!(
            (t[0] - 70.0).abs() < 8.0,
            "first sample {} should stay near 70",
            t[0]
        );
    }

    #[test]
    fn trajectory_is_smooth() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = hr_trajectory(&mut rng, &subject(), Activity::Walking, 32 * 60, 32.0, 70.0);
        let max_step = t
            .windows(2)
            .map(|p| (p[1] - p[0]).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_step < 1.0,
            "per-sample HR step should be small, got {max_step}"
        );
    }

    #[test]
    fn empty_request_returns_empty() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(hr_trajectory(&mut rng, &subject(), Activity::Resting, 0, 32.0, 65.0).is_empty());
    }

    #[test]
    fn window_mean_hr_averages() {
        let t = vec![60.0, 62.0, 64.0, 66.0];
        assert!((window_mean_hr(&t, 0, 4) - 63.0).abs() < 1e-5);
        assert!((window_mean_hr(&t, 2, 2) - 65.0).abs() < 1e-5);
        // Window extending past the end is clamped.
        assert!((window_mean_hr(&t, 2, 100) - 65.0).abs() < 1e-5);
    }

    #[test]
    fn reactive_subject_has_higher_exercise_hr() {
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let mut low = subject();
        low.hr_reactivity = 0.75;
        let mut high = subject();
        high.hr_reactivity = 1.25;
        let t_low = hr_trajectory(&mut rng_a, &low, Activity::Stairs, 32 * 240, 32.0, 65.0);
        let t_high = hr_trajectory(&mut rng_b, &high, Activity::Stairs, 32 * 240, 32.0, 65.0);
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean(&t_high[t_high.len() / 2..]) > mean(&t_low[t_low.len() / 2..]));
    }
}
