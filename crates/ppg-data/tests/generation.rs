//! Integration tests of the synthetic dataset generator: statistical
//! properties that the downstream experiments rely on.

use ppg_data::{Activity, CrossValidation, DatasetBuilder, SubjectId};
use ppg_dsp::features::AccelFeatures;
use proptest::prelude::*;

#[test]
fn activity_energy_ordering_matches_difficulty_ranking() {
    // The foundation of the paper's difficulty proxy: ordering activities by
    // average accelerometer energy reproduces the difficulty ranking.
    let dataset = DatasetBuilder::new()
        .subjects(4)
        .seconds_per_activity(40.0)
        .seed(77)
        .build()
        .unwrap();
    let windows = dataset.windows();
    let mean_energy = |activity: Activity| {
        let values: Vec<f32> = windows
            .iter()
            .filter(|w| w.activity == activity)
            .map(|w| {
                AccelFeatures::from_axes(&w.accel_x, &w.accel_y, &w.accel_z)
                    .unwrap()
                    .mean_axis_energy()
            })
            .collect();
        values.iter().sum::<f32>() / values.len() as f32
    };
    // The raw accelerometer energy is dominated by the ~1 g gravity component
    // for sedentary activities, so the exact 9-way ordering is noisy there;
    // what CHRIS needs is that the difficulty *groups* are separable, which is
    // what the grouped means check.
    let energies: Vec<f32> = Activity::ALL.iter().map(|&a| mean_energy(a)).collect();
    let group_mean = |range: std::ops::Range<usize>| {
        energies[range.clone()].iter().sum::<f32>() / range.len() as f32
    };
    let easy = group_mean(0..3);
    let medium = group_mean(3..6);
    let hard = group_mean(6..9);
    assert!(
        medium > easy,
        "medium {medium} should exceed easy {easy}: {energies:?}"
    );
    assert!(
        hard > medium * 1.5,
        "hard {hard} should clearly exceed medium {medium}: {energies:?}"
    );
    // And the hardest activity individually dominates every easy one.
    for easy_energy in &energies[..3] {
        assert!(energies[8] > easy_energy * 2.0);
    }
}

#[test]
fn ppg_quality_degrades_with_activity_difficulty() {
    // The mean motion envelope per window (the quantity coupled into the PPG)
    // grows by more than an order of magnitude from resting to table soccer.
    let dataset = DatasetBuilder::new()
        .subjects(3)
        .seconds_per_activity(40.0)
        .seed(78)
        .build()
        .unwrap();
    let windows = dataset.windows();
    let mean_motion = |activity: Activity| {
        let values: Vec<f32> = windows
            .iter()
            .filter(|w| w.activity == activity)
            .map(|w| w.mean_motion_g)
            .collect();
        values.iter().sum::<f32>() / values.len() as f32
    };
    assert!(mean_motion(Activity::TableSoccer) > mean_motion(Activity::Resting) * 10.0);
    assert!(mean_motion(Activity::Walking) > mean_motion(Activity::Working) * 2.0);
}

#[test]
fn subjects_differ_but_activities_are_balanced_per_subject() {
    let dataset = DatasetBuilder::new()
        .subjects(3)
        .seconds_per_activity(30.0)
        .seed(79)
        .build()
        .unwrap();
    let windows = dataset.windows();
    for s in 0..3 {
        let per_subject: Vec<_> = windows
            .iter()
            .filter(|w| w.subject == SubjectId(s))
            .collect();
        assert!(!per_subject.is_empty());
        let mut counts = std::collections::HashMap::new();
        for w in &per_subject {
            *counts.entry(w.activity).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 9);
        let first = *counts.values().next().unwrap();
        assert!(counts.values().all(|&c| c == first));
    }
    // Different subjects produce different signals.
    let a = &windows
        .iter()
        .find(|w| w.subject == SubjectId(0))
        .unwrap()
        .ppg;
    let b = &windows
        .iter()
        .find(|w| w.subject == SubjectId(1))
        .unwrap()
        .ppg;
    assert_ne!(a, b);
}

#[test]
fn paper_cross_validation_covers_every_subject_exactly_once_as_test() {
    let cv = CrossValidation::paper_protocol().unwrap();
    assert_eq!(cv.len(), 15);
    let mut tested = [0usize; 15];
    for fold in cv.folds() {
        assert!(fold.is_disjoint());
        tested[fold.test[0].0] += 1;
    }
    assert!(tested.iter().all(|&t| t == 1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn window_count_matches_duration(seconds in 16.0f32..64.0, subjects in 1usize..3) {
        let dataset = DatasetBuilder::new()
            .subjects(subjects)
            .seconds_per_activity(seconds)
            .seed(80)
            .build()
            .unwrap();
        let samples = (seconds * 32.0) as usize;
        let per_recording = if samples >= 256 { (samples - 256) / 64 + 1 } else { 0 };
        prop_assert_eq!(dataset.windows().len(), per_recording * 9 * subjects);
    }

    #[test]
    fn ground_truth_hr_respects_activity_bands_loosely(seed in 0u64..100) {
        let dataset = DatasetBuilder::new()
            .subjects(1)
            .seconds_per_activity(20.0)
            .seed(seed)
            .build()
            .unwrap();
        for w in dataset.windows() {
            // Ground-truth HR stays within a generous envelope of the activity
            // band (subject variability and transients allowed).
            let (lo, hi) = w.activity.hr_band_bpm();
            prop_assert!(w.hr_bpm > lo - 30.0 && w.hr_bpm < hi + 35.0,
                "{}: {} BPM outside generous band ({lo}, {hi})", w.activity, w.hr_bpm);
        }
    }
}
