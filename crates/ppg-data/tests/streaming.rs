//! Conformance suite for streaming window synthesis: for random
//! `(seed, subjects, schedule)` parameters, the lazy `WindowSource` paths
//! must be **element-wise identical** to the legacy eager vectors — the
//! property that lets every downstream report stay byte-identical after the
//! streaming redesign.

use ppg_data::{Activity, DatasetBuilder, WindowSource};
use proptest::prelude::*;

/// Decodes a non-empty activity subset from a 9-bit mask.
fn activities_from_mask(mask: usize) -> Vec<Activity> {
    Activity::ALL
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, &a)| a)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `DatasetBuilder::window_stream()` collected equals
    /// `build()?.windows()` for random generation parameters, with an exact
    /// `len`/`size_hint`.
    #[test]
    fn synth_stream_is_element_wise_identical_to_eager_build(
        seed in 0u64..10_000,
        subjects in 1usize..=3,
        seconds_idx in 0usize..3,
        activity_mask in 1usize..512,
    ) {
        let seconds = [16.0f32, 24.0, 40.0][seconds_idx];
        let activities = activities_from_mask(activity_mask);
        let builder = || DatasetBuilder::new()
            .subjects(subjects)
            .seconds_per_activity(seconds)
            .seed(seed)
            .activities(&activities);

        let eager = builder().build().unwrap().windows();
        let stream = builder().window_stream().unwrap();
        prop_assert_eq!(stream.len(), eager.len());
        prop_assert_eq!(stream.size_hint(), (eager.len(), Some(eager.len())));
        let streamed: Vec<_> = stream.iter().map(Result::unwrap).collect();
        prop_assert_eq!(streamed, eager);
    }

    /// The lazy streams over a *materialized* dataset (dataset- and
    /// recording-level) also replay the eager vectors exactly.
    #[test]
    fn dataset_and_recording_streams_match_their_eager_vectors(
        seed in 0u64..10_000,
        subjects in 1usize..=2,
    ) {
        let dataset = DatasetBuilder::new()
            .subjects(subjects)
            .seconds_per_activity(20.0)
            .seed(seed)
            .build()
            .unwrap();

        let eager = dataset.windows();
        let streamed: Vec<_> = dataset.window_stream().iter().map(Result::unwrap).collect();
        prop_assert_eq!(&streamed, &eager);

        let mut from_recordings = Vec::new();
        for recording in dataset.recordings() {
            prop_assert_eq!(recording.window_count(), recording.windows().unwrap().len());
            from_recordings.extend(recording.window_stream().iter().map(Result::unwrap));
        }
        prop_assert_eq!(&from_recordings, &eager);
    }
}

#[test]
fn builder_stream_validates_parameters_like_build() {
    assert!(DatasetBuilder::new().subjects(0).window_stream().is_err());
    assert!(DatasetBuilder::new().subjects(16).window_stream().is_err());
    assert!(DatasetBuilder::new()
        .seconds_per_activity(1.0)
        .window_stream()
        .is_err());
    assert!(DatasetBuilder::new()
        .activities(&[])
        .window_stream()
        .is_err());
}
