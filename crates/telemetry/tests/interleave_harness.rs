//! Exhaustive model-checking harness for the metrics hot path.
//!
//! Runs only with `--features interleave`: the facade in
//! `telemetry::sync` then resolves to the `interleave` crate's shimmed
//! atomics, and every test body below is re-executed under **every**
//! thread interleaving and every C11-lite weak-memory read the shims
//! admit (see `crates/interleave`).
//!
//! Subject under proof: the histogram observe/snapshot tearing window.
//! `Histogram::observe` bumps bucket, sum and count as three independent
//! relaxed RMWs, and `Registry::snapshot` reads them back with three
//! independent relaxed loads — torn views are *designed in*, and the
//! exposition layer (`telemetry::text`) repairs them by clamping. These
//! harnesses prove the repair is total: in every interleaving the
//! rendered family is a valid monotone CDF with `+Inf == _count`, and
//! never reports more than was truly observed.

#![cfg(feature = "interleave")]

use std::sync::{Arc, Mutex};

use telemetry::{parse_exposition, render_text, sample_value, Registry, Stability};

/// Values observed by the writer; both land in the single finite bucket.
const OBSERVATIONS: [u64; 2] = [5, 7];
const TRUE_SUM: u64 = OBSERVATIONS[0] + OBSERVATIONS[1];
const TRUE_COUNT: u64 = OBSERVATIONS.len() as u64;

/// One writer racing one scraper over a fresh registry. Every interleaving
/// (and every legal stale read) must yield a well-formed exposition whose
/// totals never run ahead of the observations that actually happened.
#[test]
fn histogram_snapshot_tearing_is_repaired_by_the_exposition_clamp() {
    // Set to true whenever some execution actually witnesses a torn
    // snapshot (cumulative bucket ahead of count) — proving the clamp in
    // `telemetry::text` is load-bearing, not dead code.
    let torn_seen = Arc::new(Mutex::new(false));
    let torn = Arc::clone(&torn_seen);

    let stats = interleave::explore(&interleave::Options::default(), move || {
        let registry = Registry::new();
        let histogram = registry
            .histogram(
                "chris_probe_ns",
                &[],
                "tearing probe",
                Stability::Observational,
                &[10],
            )
            .expect("fresh registry accepts the series");

        let writer = {
            let histogram = histogram.clone();
            interleave::thread::spawn(move || {
                for value in OBSERVATIONS {
                    histogram.observe(value);
                }
            })
        };

        // Race a scrape against the in-flight observations.
        let snapshot = registry.snapshot();
        let sample = &snapshot.histograms[0];
        if sample.buckets[0] > sample.count {
            *torn.lock().unwrap() = true;
        }
        let rendered = render_text(&snapshot);
        let samples = parse_exposition(&rendered).expect("exposition is grammatical");
        let finite = sample_value(&samples, "chris_probe_ns_bucket{le=\"10\"}")
            .expect("finite bucket rendered");
        let inf = sample_value(&samples, "chris_probe_ns_bucket{le=\"+Inf\"}")
            .expect("+Inf bucket rendered");
        let count = sample_value(&samples, "chris_probe_ns_count").expect("_count rendered");
        let sum = sample_value(&samples, "chris_probe_ns_sum").expect("_sum rendered");
        // Monotone CDF: cumulative buckets never decrease.
        assert!(finite <= inf, "CDF must be monotone: {finite} > {inf}");
        // Prometheus requires the +Inf bucket and _count to agree.
        assert!(
            (inf - count).abs() < f64::EPSILON,
            "+Inf bucket {inf} != _count {count}"
        );
        // The scrape may lag the writer but can never run ahead of it.
        assert!(inf <= TRUE_COUNT as f64, "over-reported count: {inf}");
        assert!(sum <= TRUE_SUM as f64, "over-reported sum: {sum}");

        // Quiescent after the join: the snapshot is exact and unclamped.
        writer.join().expect("writer must not panic");
        let settled = registry.snapshot();
        let sample = &settled.histograms[0];
        assert_eq!(sample.buckets, vec![TRUE_COUNT]);
        assert_eq!(sample.count, TRUE_COUNT);
        assert_eq!(sample.sum, TRUE_SUM);
        let samples =
            parse_exposition(&render_text(&settled)).expect("settled exposition is grammatical");
        assert_eq!(
            sample_value(&samples, "chris_probe_ns_count"),
            Some(TRUE_COUNT as f64)
        );
        assert_eq!(
            sample_value(&samples, "chris_probe_ns_bucket{le=\"+Inf\"}"),
            Some(TRUE_COUNT as f64)
        );
    })
    .unwrap_or_else(|failure| panic!("{failure}"));

    assert!(stats.complete, "schedule space not exhausted: {stats:?}");
    assert!(
        stats.executions > 1,
        "expected many interleavings, got {stats:?}"
    );
    assert!(
        *torn_seen.lock().unwrap(),
        "no execution witnessed a torn snapshot — the harness lost its subject"
    );
}

/// Counters are a single relaxed RMW cell: no interleaving of two
/// incrementers and a scraper can lose an update or over-report.
#[test]
fn counter_increments_are_never_lost_or_over_reported() {
    let stats = interleave::explore(&interleave::Options::default(), || {
        let registry = Registry::new();
        let counter = registry
            .counter("chris_ops_total", &[], "counter probe", Stability::Stable)
            .expect("fresh registry accepts the series");

        let workers: Vec<_> = (0..2)
            .map(|_| {
                let counter = counter.clone();
                interleave::thread::spawn(move || counter.add(3))
            })
            .collect();
        // A racing read sees some prefix of the increments, never more.
        let mid = counter.value();
        assert!(mid <= 6, "over-reported counter: {mid}");
        assert!(mid.is_multiple_of(3), "torn counter value: {mid}");
        for worker in workers {
            worker.join().expect("incrementer must not panic");
        }
        assert_eq!(counter.value(), 6, "lost update");
    })
    .unwrap_or_else(|failure| panic!("{failure}"));
    assert!(stats.complete, "schedule space not exhausted: {stats:?}");
    assert!(
        stats.executions > 1,
        "expected many interleavings, got {stats:?}"
    );
}
