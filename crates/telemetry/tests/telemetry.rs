//! Unit and conformance tests for the metrics core: registration
//! validation, saturating arithmetic, exposition escaping and grammar,
//! snapshot merging, and scope semantics.

use telemetry::{
    parse_exposition, render_text, sample_value, HistogramSample, MetricsSnapshot, Registry,
    Stability, TelemetryError, DURATION_NS_BOUNDS,
};

#[test]
fn counters_saturate_instead_of_wrapping() {
    let registry = Registry::new();
    let c = registry
        .counter("sat_total", &[], "saturation probe", Stability::Stable)
        .unwrap();
    c.add(u64::MAX - 1);
    c.add(5);
    assert_eq!(c.value(), u64::MAX);
    c.inc();
    assert_eq!(c.value(), u64::MAX);
}

#[test]
fn gauges_support_add_sub_and_running_max() {
    let registry = Registry::new();
    let g = registry
        .gauge("live", &[], "liveness probe", Stability::Observational)
        .unwrap();
    g.add(3);
    g.sub(1);
    assert_eq!(g.value(), 2);
    g.set_max(10);
    g.set_max(4);
    assert_eq!(g.value(), 10);
    g.set(-2);
    assert_eq!(g.value(), -2);
}

#[test]
fn gauge_sub_of_i64_min_saturates_instead_of_adding_max() {
    let registry = Registry::new();
    let g = registry
        .gauge("extreme", &[], "saturation probe", Stability::Observational)
        .unwrap();
    // Subtracting the most negative delta must behave like
    // `v.saturating_sub(i64::MIN)`. The old `d.saturating_neg()` pre-negation
    // collapsed `i64::MIN` to `i64::MAX` and produced `i64::MAX - 5` here.
    g.set(-5);
    g.sub(i64::MIN);
    assert_eq!(g.value(), i64::MAX - 4);
    g.set(10);
    g.sub(i64::MIN);
    assert_eq!(g.value(), i64::MAX);
    // The ordinary path is unchanged.
    g.set(7);
    g.sub(3);
    assert_eq!(g.value(), 4);
    g.set(i64::MIN);
    g.sub(1);
    assert_eq!(g.value(), i64::MIN);
}

#[test]
fn torn_histogram_snapshot_still_renders_a_monotone_cdf() {
    // `observe()` bumps bucket and count as independent relaxed atomics, so
    // a concurrent snapshot can capture the bucket increment but not the
    // count increment: 3 + 2 = 5 bucketed observations, count still 4.
    let mut snapshot = MetricsSnapshot::default();
    snapshot.histograms.push(HistogramSample {
        name: "chris_torn_ns".to_string(),
        labels: Vec::new(),
        help: "torn snapshot probe".to_string(),
        stability: Stability::Observational,
        bounds: vec![250, 1_000],
        buckets: vec![3, 2],
        sum: 900,
        count: 4,
    });
    let samples = parse_exposition(&render_text(&snapshot)).unwrap();
    // The +Inf line is clamped up to the last finite cumulative bucket...
    assert_eq!(
        sample_value(&samples, "chris_torn_ns_bucket{le=\"+Inf\"}"),
        Some(5.0)
    );
    assert_eq!(
        sample_value(&samples, "chris_torn_ns_bucket{le=\"1000\"}"),
        Some(5.0)
    );
    // ...and _count is clamped with it: Prometheus requires
    // `_count == _bucket{le="+Inf"}`, and a scraper that trusts the raw
    // torn count would see a CDF whose tail exceeds its total.
    assert_eq!(sample_value(&samples, "chris_torn_ns_count"), Some(5.0));

    // A consistent snapshot is untouched: +Inf and _count equal the count.
    snapshot.histograms[0].count = 6;
    let samples = parse_exposition(&render_text(&snapshot)).unwrap();
    assert_eq!(
        sample_value(&samples, "chris_torn_ns_bucket{le=\"+Inf\"}"),
        Some(6.0)
    );
    assert_eq!(sample_value(&samples, "chris_torn_ns_count"), Some(6.0));
}

#[test]
fn invalid_names_and_labels_are_rejected_with_typed_errors() {
    let registry = Registry::new();
    assert!(matches!(
        registry.counter("", &[], "h", Stability::Stable),
        Err(TelemetryError::InvalidMetricName { .. })
    ));
    assert!(matches!(
        registry.counter("9leading_digit", &[], "h", Stability::Stable),
        Err(TelemetryError::InvalidMetricName { .. })
    ));
    assert!(matches!(
        registry.counter("has space", &[], "h", Stability::Stable),
        Err(TelemetryError::InvalidMetricName { .. })
    ));
    assert!(matches!(
        registry.counter("ok_total", &[("", "v")], "h", Stability::Stable),
        Err(TelemetryError::InvalidLabelName { .. })
    ));
    assert!(matches!(
        registry.counter("ok_total", &[("__reserved", "v")], "h", Stability::Stable),
        Err(TelemetryError::InvalidLabelName { .. })
    ));
    assert!(matches!(
        registry.counter("ok_total", &[("label", "")], "h", Stability::Stable),
        Err(TelemetryError::EmptyLabelValue { .. })
    ));
}

#[test]
fn re_registration_resolves_the_same_series_or_errors_on_mismatch() {
    let registry = Registry::new();
    let a = registry
        .counter("dup_total", &[("k", "v")], "help", Stability::Stable)
        .unwrap();
    let b = registry
        .counter("dup_total", &[("k", "v")], "help", Stability::Stable)
        .unwrap();
    a.add(2);
    b.add(3);
    assert_eq!(a.value(), 5);
    assert!(matches!(
        registry.gauge("dup_total", &[("k", "v")], "help", Stability::Stable),
        Err(TelemetryError::KindMismatch { .. })
    ));
    assert!(matches!(
        registry.counter("dup_total", &[("k", "v")], "other help", Stability::Stable),
        Err(TelemetryError::KindMismatch { .. })
    ));
    assert!(matches!(
        registry.counter("dup_total", &[("k", "v")], "help", Stability::Observational),
        Err(TelemetryError::KindMismatch { .. })
    ));
}

#[test]
fn histogram_bounds_must_be_strictly_increasing_and_consistent() {
    let registry = Registry::new();
    assert!(registry
        .histogram("h_ns", &[], "h", Stability::Observational, &[])
        .is_err());
    assert!(registry
        .histogram("h_ns", &[], "h", Stability::Observational, &[5, 5])
        .is_err());
    registry
        .histogram("h_ns", &[], "h", Stability::Observational, &[1, 2, 3])
        .unwrap();
    assert!(matches!(
        registry.histogram("h_ns", &[], "h", Stability::Observational, &[1, 2]),
        Err(TelemetryError::KindMismatch { .. })
    ));
}

#[test]
fn exposition_escapes_newlines_quotes_and_backslashes() {
    let registry = Registry::new();
    registry
        .counter(
            "esc_total",
            &[("path", "a\\b\"c\nd")],
            "help with\nnewline and \\ backslash",
            Stability::Stable,
        )
        .unwrap()
        .inc();
    let text = render_text(&registry.snapshot());
    assert!(text.contains("# HELP esc_total help with\\nnewline and \\\\ backslash"));
    assert!(text.contains("esc_total{path=\"a\\\\b\\\"c\\nd\"} 1"));
    // The escaped form must survive a parse round-trip.
    let samples = parse_exposition(&text).unwrap();
    assert_eq!(
        sample_value(&samples, "esc_total{path=\"a\\\\b\\\"c\\nd\"}"),
        Some(1.0)
    );
}

#[test]
fn render_is_deterministic_and_groups_families() {
    let registry = Registry::new();
    for backend in ["wearable", "phone"] {
        registry
            .counter(
                "decisions_total",
                &[("backend", backend)],
                "offload decisions",
                Stability::Stable,
            )
            .unwrap()
            .add(2);
    }
    let h = registry
        .histogram(
            "stage_duration_ns",
            &[("stage", "fft")],
            "stage durations",
            Stability::Observational,
            &DURATION_NS_BOUNDS,
        )
        .unwrap();
    h.observe(500);
    h.observe(2_000_000);
    let text = render_text(&registry.snapshot());
    assert_eq!(text, render_text(&registry.snapshot()));
    // One HELP/TYPE pair per family, series sorted by label set.
    assert_eq!(text.matches("# TYPE decisions_total counter").count(), 1);
    let phone = text.find("backend=\"phone\"").unwrap();
    let wearable = text.find("backend=\"wearable\"").unwrap();
    assert!(phone < wearable);
    let samples = parse_exposition(&text).unwrap();
    assert_eq!(
        sample_value(&samples, "stage_duration_ns_count{stage=\"fft\"}"),
        Some(2.0)
    );
    assert_eq!(
        sample_value(
            &samples,
            "stage_duration_ns_bucket{le=\"+Inf\",stage=\"fft\"}"
        ),
        Some(2.0)
    );
    // Cumulative buckets: the 1_000 bucket holds only the 500ns observation.
    assert_eq!(
        sample_value(
            &samples,
            "stage_duration_ns_bucket{le=\"1000\",stage=\"fft\"}"
        ),
        Some(1.0)
    );
}

#[test]
fn parser_rejects_malformed_lines() {
    assert!(parse_exposition("name{unterminated 3").is_err());
    assert!(parse_exposition("name{l=\"v\"} not_a_number").is_err());
    assert!(parse_exposition("9bad 1").is_err());
    assert!(parse_exposition("# TYPE x flavor").is_err());
    assert!(parse_exposition("name{l=v} 1").is_err());
}

#[test]
fn snapshots_merge_commutatively_and_reject_conflicts() {
    let a = Registry::new();
    let b = Registry::new();
    for (reg, n) in [(&a, 3u64), (&b, 4u64)] {
        reg.counter("windows_total", &[], "windows", Stability::Stable)
            .unwrap()
            .add(n);
        let h = reg
            .histogram(
                "lat_ns",
                &[],
                "latency",
                Stability::Observational,
                &[10, 100],
            )
            .unwrap();
        h.observe(n);
    }
    b.counter("only_b_total", &[], "b-only", Stability::Stable)
        .unwrap()
        .inc();
    let sa = a.snapshot();
    let sb = b.snapshot();
    let ab = sa.merged(&sb).unwrap();
    let ba = sb.merged(&sa).unwrap();
    assert_eq!(ab, ba);
    assert_eq!(ab.counter_value("windows_total", &[]), Some(7));
    assert_eq!(ab.counter_value("only_b_total", &[]), Some(1));

    let conflicting = Registry::new();
    conflicting
        .counter("windows_total", &[], "different help", Stability::Stable)
        .unwrap();
    assert!(matches!(
        sa.merged(&conflicting.snapshot()),
        Err(TelemetryError::MergeConflict { .. })
    ));
}

#[test]
fn absorb_folds_a_snapshot_into_a_registry() {
    let worker = Registry::new();
    worker
        .counter("windows_total", &[], "windows", Stability::Stable)
        .unwrap()
        .add(9);
    let batch = Registry::new();
    batch.absorb(&worker.snapshot()).unwrap();
    batch.absorb(&worker.snapshot()).unwrap();
    assert_eq!(
        batch.snapshot().counter_value("windows_total", &[]),
        Some(18)
    );
}

#[test]
fn stable_snapshot_filters_observational_series() {
    let registry = Registry::new();
    registry
        .counter("stable_total", &[], "s", Stability::Stable)
        .unwrap();
    registry
        .counter("obs_total", &[], "o", Stability::Observational)
        .unwrap();
    let stable = registry.snapshot_stable();
    assert_eq!(stable.len(), 1);
    assert_eq!(stable.counter_value("stable_total", &[]), Some(0));
    assert_eq!(registry.snapshot().stable_only(), stable);
}

#[test]
fn snapshot_serializes_round_trip() {
    let registry = Registry::new();
    registry
        .counter("rt_total", &[("k", "v")], "round trip", Stability::Stable)
        .unwrap()
        .add(7);
    registry
        .histogram("rt_ns", &[], "hist", Stability::Observational, &[1, 10])
        .unwrap()
        .observe(3);
    let snap = registry.snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn scopes_nest_and_fall_back_to_global() {
    let outer = Registry::new();
    let inner = Registry::new();
    assert_eq!(telemetry::active().id(), telemetry::global().id());
    {
        let _o = telemetry::scoped(&outer);
        assert_eq!(telemetry::active().id(), outer.id());
        {
            let _i = telemetry::scoped(&inner);
            assert_eq!(telemetry::active().id(), inner.id());
        }
        assert_eq!(telemetry::active().id(), outer.id());
        // Spawned threads do not inherit the scope.
        let outer_id = outer.id();
        std::thread::scope(|s| {
            s.spawn(move || {
                assert_ne!(telemetry::active().id(), outer_id);
            });
        });
    }
    assert_eq!(telemetry::active().id(), telemetry::global().id());
}

#[test]
fn disabled_registry_records_nothing() {
    let registry = Registry::disabled();
    let c = registry
        .counter("noop_total", &[], "noop", Stability::Stable)
        .unwrap();
    c.add(100);
    assert_eq!(c.value(), 0);
    let h = registry
        .histogram("noop_ns", &[], "noop", Stability::Observational, &[1, 2])
        .unwrap();
    h.observe(5);
    drop(h.start_timer());
    assert_eq!(h.count(), 0);
}
