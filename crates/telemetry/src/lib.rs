//! Lock-free metrics core for the CHRIS workspace.
//!
//! This crate is the observability substrate the fleet engine reports
//! through: a [`Registry`] of named instruments ([`Counter`], [`Gauge`],
//! [`Histogram`]) with Prometheus-style labels, a deterministic text
//! exposition writer ([`render_text`]), and a serde-serializable
//! [`MetricsSnapshot`] that merges across shards and processes.
//!
//! Design constraints, in order:
//!
//! 1. **The hot path never locks.** Instrument handles are cheap clones
//!    around shared atomics; incrementing a counter or observing into a
//!    histogram is a handful of relaxed atomic operations. Only
//!    *registration* (resolving a name to a handle) takes the registry's
//!    internal lock — callers resolve once and cache the handle.
//! 2. **Determinism is first-class.** Counters saturate instead of
//!    wrapping, histogram sums are integer nanoseconds (addition is
//!    commutative and order-independent), snapshots are sorted by
//!    `(name, labels)`, and merging two snapshots is a pure function —
//!    so per-worker registries merged at worker exit produce byte-identical
//!    reports for any thread count.
//! 3. **Stability is explicit.** Every series is registered as either
//!    [`Stability::Stable`] (value depends only on the simulated workload —
//!    safe to embed in shard artifacts that must be byte-identical across
//!    thread counts and cache settings) or [`Stability::Observational`]
//!    (timings, cache effectiveness — scheduling-dependent, exposed only
//!    through the sidecar exposition).
//!
//! ## Scopes
//!
//! Instrumented code does not take a registry parameter; it resolves the
//! thread's *active* registry via [`active`]. [`scoped`] pushes a registry
//! onto the current thread's scope stack for the lifetime of the returned
//! guard; with no scope installed, [`active`] falls back to the process
//! [`global`] registry. Worker threads do not inherit scopes — executors
//! install a per-worker registry explicitly and merge snapshots at exit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod registry;
mod scope;
mod snapshot;
pub mod sync;
mod text;

pub use error::TelemetryError;
pub use registry::{Counter, Gauge, Histogram, Registry, ScopedTimer, Stability};
pub use scope::{active, global, scoped, RegistryScope};
pub use snapshot::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};
pub use text::{parse_exposition, render_text, sample_value, Sample};

/// Series name shared by every per-stage pipeline duration histogram
/// (labelled by `stage`). Centralized so all crates register the family with
/// identical metadata and snapshots merge cleanly.
pub const STAGE_DURATION_SERIES: &str = "chris_stage_duration_ns";

/// Help text of the [`STAGE_DURATION_SERIES`] family.
pub const STAGE_DURATION_HELP: &str =
    "Wall-clock duration of one pipeline stage invocation, in nanoseconds";

/// Default bucket upper bounds (nanoseconds) for stage-duration histograms:
/// a coarse exponential ladder from sub-microsecond to tens of milliseconds.
pub const DURATION_NS_BOUNDS: [u64; 10] = [
    250, 1_000, 4_000, 16_000, 64_000, 256_000, 1_000_000, 4_000_000, 16_000_000, 64_000_000,
];
