//! Thread-scoped active registries with a process-global fallback.

use std::cell::RefCell;
use std::sync::OnceLock;

use crate::registry::Registry;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

thread_local! {
    static ACTIVE: RefCell<Vec<Registry>> = const { RefCell::new(Vec::new()) };
}

/// The process-global registry. Used as the fallback when no scope is
/// installed on the current thread, and as the home of process-lifetime
/// series (liveness gauges, watchdog counters).
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// The registry instrumented code should record into: the innermost scope
/// installed on this thread via [`scoped`], or [`global`] when none is.
pub fn active() -> Registry {
    ACTIVE.with(|stack| {
        stack
            .borrow()
            .last()
            .cloned()
            .unwrap_or_else(|| global().clone())
    })
}

/// Guard keeping a registry installed as the current thread's active one;
/// uninstalls on drop. Scopes nest (innermost wins) and are thread-local:
/// spawned threads start with no scope.
#[derive(Debug)]
pub struct RegistryScope {
    // !Send by construction: the guard must drop on the installing thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Installs `registry` as the active registry of the current thread for the
/// lifetime of the returned guard.
pub fn scoped(registry: &Registry) -> RegistryScope {
    ACTIVE.with(|stack| stack.borrow_mut().push(registry.clone()));
    RegistryScope {
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for RegistryScope {
    fn drop(&mut self) {
        ACTIVE.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}
