//! The instrument registry and its handle types.

use crate::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::error::TelemetryError;
use crate::snapshot::{CounterSample, GaugeSample, HistogramSample, MetricsSnapshot};

/// Whether a series' value is invariant to execution strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stability {
    /// Depends only on the simulated workload: identical for any thread
    /// count, chunking, cache setting, or shard partition. Safe to embed in
    /// byte-stable artifacts such as `ShardReport`.
    Stable,
    /// Scheduling- or wall-clock-dependent (durations, cache effectiveness,
    /// liveness gauges). Exposed through the sidecar exposition only.
    Observational,
}

/// A saturating, monotonically non-decreasing `u64` counter.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    enabled: bool,
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX` instead of wrapping.
    #[inline]
    pub fn add(&self, n: u64) {
        if !self.enabled || n == 0 {
            return;
        }
        let _ = self
            .cell
            // relaxed: single-cell counter; no other memory is published
            // under it, and the exposition layer tolerates skew between
            // cells (PR 7 monotone clamp).
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            });
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        // relaxed: single-cell read; freshness, not ordering, is all a
        // metrics scrape can ask of a live counter.
        self.cell.load(Ordering::Relaxed)
    }
}

/// A signed gauge supporting set/add/sub and running-maximum updates.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
    enabled: bool,
}

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.enabled {
            // relaxed: single-cell gauge write; readers only need some
            // recent value, never a happens-before edge.
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `d` (saturating).
    #[inline]
    pub fn add(&self, d: i64) {
        if !self.enabled {
            return;
        }
        let _ = self
            .cell
            // relaxed: single-cell read-modify-write; RMW atomicity alone
            // guarantees no lost updates.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(d))
            });
    }

    /// Subtracts `d` (saturating).
    ///
    /// Saturation applies to the *subtraction on the cell value*, not to a
    /// pre-negation of `d`: `d.saturating_neg()` would map `i64::MIN` to
    /// `i64::MAX` and turn the most negative delta into an off-by-one add.
    #[inline]
    pub fn sub(&self, d: i64) {
        if !self.enabled {
            return;
        }
        let _ = self
            .cell
            // relaxed: single-cell read-modify-write, as in `add`.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(d))
            });
    }

    /// Raises the gauge to `v` if it is currently lower.
    #[inline]
    pub fn set_max(&self, v: i64) {
        if self.enabled {
            // relaxed: fetch_max is an atomic RMW; racing maxima converge to
            // the true maximum regardless of ordering.
            self.cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        // relaxed: single-cell read, as in `Counter::value`.
        self.cell.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Bucket upper bounds, strictly increasing; an implicit `+Inf` bucket
    /// follows (`count` doubles as its cumulative value).
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram over `u64` observations (nanoseconds by
/// convention). Sums are saturating integer adds, so merged histograms are
/// independent of merge order.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
    enabled: bool,
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        if !self.enabled {
            return;
        }
        // relaxed (all three cells): bucket/sum/count are updated without a
        // transaction on purpose — a scrape may see count ahead of a bucket,
        // and the exposition layer re-derives a consistent view by clamping
        // cumulative buckets monotonically (PR 7). Stronger orderings here
        // would not close that window, only slow the hot path. Every
        // interleaving of this method against a snapshot is exhaustively
        // model-checked in telemetry/tests/interleave_harness.rs
        // (histogram_snapshot_tearing_is_repaired_by_the_exposition_clamp).
        if let Some(i) = self.core.bounds.iter().position(|&b| value <= b) {
            // relaxed: see the tearing note above.
            self.core.buckets[i].fetch_add(1, Ordering::Relaxed);
        }
        let _ = self
            .core
            .sum
            // relaxed: see the tearing note above.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(value))
            });
        // relaxed: see the tearing note above.
        self.core.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Starts a timer that observes the elapsed nanoseconds when dropped.
    /// On a disabled registry the clock is never read.
    #[inline]
    pub fn start_timer(&self) -> ScopedTimer {
        ScopedTimer {
            histogram: self.clone(),
            start: self.enabled.then(Instant::now),
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        // relaxed: single-cell read for display; see `observe`.
        self.core.count.load(Ordering::Relaxed)
    }

    fn absorb_sample(&self, sample: &HistogramSample) {
        for (bucket, add) in self.core.buckets.iter().zip(&sample.buckets) {
            // relaxed: same per-cell merge discipline as `observe` — the
            // exposition clamp handles cross-cell skew.
            bucket.fetch_add(*add, Ordering::Relaxed);
        }
        let _ = self
            .core
            .sum
            // relaxed: see `observe`.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(sample.sum))
            });
        // relaxed: see `observe`.
        self.core.count.fetch_add(sample.count, Ordering::Relaxed);
    }
}

/// Guard returned by [`Histogram::start_timer`]; observes the elapsed time
/// into the histogram on drop.
#[derive(Debug)]
pub struct ScopedTimer {
    histogram: Histogram,
    start: Option<Instant>,
}

impl ScopedTimer {
    /// Stops the timer early, recording the elapsed nanoseconds now.
    pub fn stop(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if let Some(start) = self.start.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.histogram.observe(ns);
        }
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        self.record();
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

#[derive(Debug)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Series {
    help: String,
    stability: Stability,
    instrument: Instrument,
}

#[derive(Debug, Default)]
struct RegistryInner {
    enabled: bool,
    series: RwLock<BTreeMap<SeriesKey, Series>>,
}

/// A collection of named instruments. Cloning shares the underlying store;
/// handles resolved from any clone observe into the same series.
///
/// Registration (the `counter`/`gauge`/`histogram` methods) takes a write
/// lock; the returned handles are lock-free. Callers on hot paths resolve
/// handles once and reuse them.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    if name.starts_with("__") {
        return false;
    }
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn validated_key(name: &str, labels: &[(&str, &str)]) -> Result<SeriesKey, TelemetryError> {
    if !valid_metric_name(name) {
        return Err(TelemetryError::InvalidMetricName {
            name: name.to_string(),
        });
    }
    let mut owned: Vec<(String, String)> = Vec::with_capacity(labels.len());
    for (label, value) in labels {
        if !valid_label_name(label) {
            return Err(TelemetryError::InvalidLabelName {
                label: (*label).to_string(),
            });
        }
        if value.is_empty() {
            return Err(TelemetryError::EmptyLabelValue {
                label: (*label).to_string(),
            });
        }
        owned.push(((*label).to_string(), (*value).to_string()));
    }
    owned.sort();
    Ok(SeriesKey {
        name: name.to_string(),
        labels: owned,
    })
}

impl Registry {
    /// Creates an empty, enabled registry.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(RegistryInner {
                enabled: true,
                series: RwLock::new(BTreeMap::new()),
            }),
        }
    }

    /// Creates a registry whose instruments are no-ops: registration still
    /// validates and returns handles, but `inc`/`observe`/timers do nothing
    /// (timers never read the clock). Used to measure instrumentation
    /// overhead against a true baseline.
    pub fn disabled() -> Self {
        Self {
            inner: Arc::new(RegistryInner {
                enabled: false,
                series: RwLock::new(BTreeMap::new()),
            }),
        }
    }

    /// Whether instruments on this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// An identity token for handle caching: stable for the registry's
    /// lifetime, distinct between live registries.
    pub fn id(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// Registers (or resolves) a counter series.
    ///
    /// # Errors
    ///
    /// [`TelemetryError`] when the name or labels are invalid, or the series
    /// exists with a different kind, help, or stability.
    pub fn counter(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        stability: Stability,
    ) -> Result<Counter, TelemetryError> {
        let key = validated_key(name, labels)?;
        let mut store = self
            .inner
            .series
            .write()
            .expect("telemetry registry poisoned");
        if let Some(existing) = store.get(&key) {
            check_meta(existing, "counter", help, stability, &key.name)?;
            if let Instrument::Counter(c) = &existing.instrument {
                return Ok(c.clone());
            }
            unreachable!("kind checked above");
        }
        let counter = Counter {
            cell: Arc::new(AtomicU64::new(0)),
            enabled: self.inner.enabled,
        };
        store.insert(
            key,
            Series {
                help: help.to_string(),
                stability,
                instrument: Instrument::Counter(counter.clone()),
            },
        );
        Ok(counter)
    }

    /// Registers (or resolves) a gauge series.
    ///
    /// # Errors
    ///
    /// [`TelemetryError`] when the name or labels are invalid, or the series
    /// exists with a different kind, help, or stability.
    pub fn gauge(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        stability: Stability,
    ) -> Result<Gauge, TelemetryError> {
        let key = validated_key(name, labels)?;
        let mut store = self
            .inner
            .series
            .write()
            .expect("telemetry registry poisoned");
        if let Some(existing) = store.get(&key) {
            check_meta(existing, "gauge", help, stability, &key.name)?;
            if let Instrument::Gauge(g) = &existing.instrument {
                return Ok(g.clone());
            }
            unreachable!("kind checked above");
        }
        let gauge = Gauge {
            cell: Arc::new(AtomicI64::new(0)),
            enabled: self.inner.enabled,
        };
        store.insert(
            key,
            Series {
                help: help.to_string(),
                stability,
                instrument: Instrument::Gauge(gauge.clone()),
            },
        );
        Ok(gauge)
    }

    /// Registers (or resolves) a histogram series with the given bucket
    /// upper bounds (strictly increasing; an implicit `+Inf` bucket is
    /// always appended at exposition time).
    ///
    /// # Errors
    ///
    /// [`TelemetryError`] when the name, labels, or bounds are invalid, or
    /// the series exists with different metadata or bucket layout.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        stability: Stability,
        bounds: &[u64],
    ) -> Result<Histogram, TelemetryError> {
        let key = validated_key(name, labels)?;
        if bounds.is_empty() || bounds.windows(2).any(|w| w[0] >= w[1]) {
            return Err(TelemetryError::KindMismatch {
                name: key.name,
                detail: "histogram bounds must be non-empty and strictly increasing".to_string(),
            });
        }
        let mut store = self
            .inner
            .series
            .write()
            .expect("telemetry registry poisoned");
        if let Some(existing) = store.get(&key) {
            check_meta(existing, "histogram", help, stability, &key.name)?;
            if let Instrument::Histogram(h) = &existing.instrument {
                if h.core.bounds != bounds {
                    return Err(TelemetryError::KindMismatch {
                        name: key.name,
                        detail: "histogram bucket bounds differ".to_string(),
                    });
                }
                return Ok(h.clone());
            }
            unreachable!("kind checked above");
        }
        let histogram = Histogram {
            core: Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
            enabled: self.inner.enabled,
        };
        store.insert(
            key,
            Series {
                help: help.to_string(),
                stability,
                instrument: Instrument::Histogram(histogram.clone()),
            },
        );
        Ok(histogram)
    }

    /// A point-in-time snapshot of every series, sorted by `(name, labels)`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot_filtered(None)
    }

    /// Like [`Registry::snapshot`] but containing only
    /// [`Stability::Stable`] series — the subset safe to embed in
    /// byte-stable artifacts.
    pub fn snapshot_stable(&self) -> MetricsSnapshot {
        self.snapshot_filtered(Some(Stability::Stable))
    }

    /// Snapshots the registry and renders it as Prometheus text exposition in
    /// one call — the live scrape path of a serving process (e.g. `fleetd`'s
    /// `GET /metrics`), as opposed to the `--metrics-out` file the one-shot
    /// CLIs write at exit. Each call observes the registry at that instant;
    /// two scrapes of a busy process legitimately differ.
    pub fn exposition(&self) -> String {
        crate::text::render_text(&self.snapshot())
    }

    fn snapshot_filtered(&self, only: Option<Stability>) -> MetricsSnapshot {
        let store = self
            .inner
            .series
            .read()
            .expect("telemetry registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (key, series) in store.iter() {
            if only.is_some_and(|s| series.stability != s) {
                continue;
            }
            match &series.instrument {
                Instrument::Counter(c) => snap.counters.push(CounterSample {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    help: series.help.clone(),
                    stability: series.stability,
                    value: c.value(),
                }),
                Instrument::Gauge(g) => snap.gauges.push(GaugeSample {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    help: series.help.clone(),
                    stability: series.stability,
                    value: g.value(),
                }),
                Instrument::Histogram(h) => snap.histograms.push(HistogramSample {
                    name: key.name.clone(),
                    labels: key.labels.clone(),
                    help: series.help.clone(),
                    stability: series.stability,
                    bounds: h.core.bounds.clone(),
                    buckets: h
                        .core
                        .buckets
                        .iter()
                        // relaxed: snapshot reads race in-flight `observe`
                        // calls by design; the exposition clamp repairs
                        // cross-cell skew, so acquire loads buy nothing —
                        // proven over every interleaving in
                        // telemetry/tests/interleave_harness.rs.
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                    // relaxed: see the bucket note above.
                    sum: h.core.sum.load(Ordering::Relaxed),
                    // relaxed: see the bucket note above.
                    count: h.core.count.load(Ordering::Relaxed),
                }),
            }
        }
        // BTreeMap iteration is already (name, labels)-sorted per kind.
        snap
    }

    /// Folds a snapshot into this registry: missing series are registered
    /// with the snapshot's metadata, counters add (saturating), gauges take
    /// the running maximum, histogram buckets add.
    ///
    /// # Errors
    ///
    /// [`TelemetryError`] when a sample conflicts with an already-registered
    /// series (different kind, help, stability, or bucket bounds).
    pub fn absorb(&self, snapshot: &MetricsSnapshot) -> Result<(), TelemetryError> {
        for sample in &snapshot.counters {
            let labels = borrow_labels(&sample.labels);
            let counter = self.counter(&sample.name, &labels, &sample.help, sample.stability)?;
            counter.add(sample.value);
        }
        for sample in &snapshot.gauges {
            let labels = borrow_labels(&sample.labels);
            let gauge = self.gauge(&sample.name, &labels, &sample.help, sample.stability)?;
            gauge.set_max(sample.value);
        }
        for sample in &snapshot.histograms {
            let labels = borrow_labels(&sample.labels);
            let histogram = self.histogram(
                &sample.name,
                &labels,
                &sample.help,
                sample.stability,
                &sample.bounds,
            )?;
            histogram.absorb_sample(sample);
        }
        Ok(())
    }
}

fn borrow_labels(labels: &[(String, String)]) -> Vec<(&str, &str)> {
    labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect()
}

fn check_meta(
    existing: &Series,
    kind: &'static str,
    help: &str,
    stability: Stability,
    name: &str,
) -> Result<(), TelemetryError> {
    if existing.instrument.kind() != kind {
        return Err(TelemetryError::KindMismatch {
            name: name.to_string(),
            detail: format!(
                "registered as {}, requested as {kind}",
                existing.instrument.kind()
            ),
        });
    }
    if existing.help != help {
        return Err(TelemetryError::KindMismatch {
            name: name.to_string(),
            detail: "help text differs".to_string(),
        });
    }
    if existing.stability != stability {
        return Err(TelemetryError::KindMismatch {
            name: name.to_string(),
            detail: "stability differs".to_string(),
        });
    }
    Ok(())
}
