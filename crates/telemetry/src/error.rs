//! Typed errors for registration and snapshot merging.

/// Error raised by instrument registration or snapshot merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryError {
    /// The metric name is empty or contains characters outside
    /// `[a-zA-Z0-9_:]` (first character must not be a digit).
    InvalidMetricName {
        /// The offending name.
        name: String,
    },
    /// A label name is empty, reserved (`__` prefix), or contains
    /// characters outside `[a-zA-Z0-9_]` (first character must not be a
    /// digit).
    InvalidLabelName {
        /// The offending label name.
        label: String,
    },
    /// A label value is empty. (Any non-empty UTF-8 value is allowed;
    /// newlines, quotes and backslashes are escaped at exposition time.)
    EmptyLabelValue {
        /// The label whose value was empty.
        label: String,
    },
    /// The series is already registered with a different kind, help text,
    /// stability, or histogram bucket layout.
    KindMismatch {
        /// The conflicting series name.
        name: String,
        /// What differed.
        detail: String,
    },
    /// Two snapshots disagree about a series' metadata and cannot merge.
    MergeConflict {
        /// The conflicting series name.
        name: String,
        /// What differed.
        detail: String,
    },
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::InvalidMetricName { name } => {
                write!(
                    f,
                    "invalid metric name {name:?}: must match [a-zA-Z_:][a-zA-Z0-9_:]*"
                )
            }
            TelemetryError::InvalidLabelName { label } => {
                write!(
                    f,
                    "invalid label name {label:?}: must match [a-zA-Z_][a-zA-Z0-9_]* and not start with __"
                )
            }
            TelemetryError::EmptyLabelValue { label } => {
                write!(f, "label {label:?} has an empty value")
            }
            TelemetryError::KindMismatch { name, detail } => {
                write!(
                    f,
                    "series {name:?} already registered differently: {detail}"
                )
            }
            TelemetryError::MergeConflict { name, detail } => {
                write!(f, "snapshots disagree on series {name:?}: {detail}")
            }
        }
    }
}

impl std::error::Error for TelemetryError {}
