//! Prometheus text-format exposition: deterministic writer and a small
//! grammar checker used by tests and the `promcheck` CI binary.

use std::fmt::Write as _;

use crate::snapshot::MetricsSnapshot;

fn escape_help(text: &str) -> String {
    text.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders a snapshot in the Prometheus text exposition format. Output is
/// deterministic: families ordered by name, series by label set, one
/// `# HELP`/`# TYPE` pair per family. Histograms emit cumulative
/// `_bucket{le=...}` lines (bounds printed as integer nanoseconds), then
/// `_sum` and `_count`.
pub fn render_text(snapshot: &MetricsSnapshot) -> String {
    // (name, kind, help, body-lines) per family, assembled then sorted.
    let mut families: Vec<(String, &'static str, String, Vec<String>)> = Vec::new();

    for sample in &snapshot.counters {
        let line = format!(
            "{}{} {}",
            sample.name,
            label_block(&sample.labels, None),
            sample.value
        );
        push_family(&mut families, &sample.name, "counter", &sample.help, line);
    }
    for sample in &snapshot.gauges {
        let line = format!(
            "{}{} {}",
            sample.name,
            label_block(&sample.labels, None),
            sample.value
        );
        push_family(&mut families, &sample.name, "gauge", &sample.help, line);
    }
    for sample in &snapshot.histograms {
        let mut lines = Vec::with_capacity(sample.bounds.len() + 3);
        let mut cumulative = 0u64;
        for (bound, bucket) in sample.bounds.iter().zip(&sample.buckets) {
            cumulative = cumulative.saturating_add(*bucket);
            lines.push(format!(
                "{}_bucket{} {}",
                sample.name,
                label_block(&sample.labels, Some(("le", &bound.to_string()))),
                cumulative
            ));
        }
        // `observe()` bumps bucket and count as independent relaxed atomics,
        // so a snapshot taken mid-observation can hold a `count` smaller
        // than a finite cumulative bucket. Clamp the rendered `+Inf` line —
        // and `_count`, which Prometheus requires to equal it — so the
        // exposition is always a valid monotone CDF. The whole repaired
        // family (monotone buckets, `+Inf == _count`, totals never ahead of
        // the true ones) is model-checked against every interleaving of
        // observe/snapshot in telemetry/tests/interleave_harness.rs.
        let clamped_count = sample.count.max(cumulative);
        lines.push(format!(
            "{}_bucket{} {}",
            sample.name,
            label_block(&sample.labels, Some(("le", "+Inf"))),
            clamped_count
        ));
        lines.push(format!(
            "{}_sum{} {}",
            sample.name,
            label_block(&sample.labels, None),
            sample.sum
        ));
        lines.push(format!(
            "{}_count{} {}",
            sample.name,
            label_block(&sample.labels, None),
            clamped_count
        ));
        for line in lines {
            push_family(&mut families, &sample.name, "histogram", &sample.help, line);
        }
    }

    families.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out = String::new();
    for (name, kind, help, lines) in families {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(&help));
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for line in lines {
            let _ = writeln!(out, "{line}");
        }
    }
    out
}

fn push_family(
    families: &mut Vec<(String, &'static str, String, Vec<String>)>,
    name: &str,
    kind: &'static str,
    help: &str,
    line: String,
) {
    if let Some(family) = families.iter_mut().find(|f| f.0 == name) {
        family.3.push(line);
    } else {
        families.push((name.to_string(), kind, help.to_string(), vec![line]));
    }
}

/// One parsed sample line: the canonical series key
/// (`name{label="value",...}` with labels sorted) and its value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Canonical series identifier.
    pub series: String,
    /// Parsed sample value.
    pub value: f64,
}

/// Parses (and thereby validates) a Prometheus text exposition. Every line
/// must be empty, a well-formed `# HELP`/`# TYPE` comment, or a sample line
/// matching the text-format grammar.
///
/// # Errors
///
/// A description of the first malformed line, 1-indexed.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            parse_comment(comment).map_err(|e| format!("line {lineno}: {e}"))?;
            continue;
        }
        let sample = parse_sample(line).map_err(|e| format!("line {lineno}: {e}"))?;
        samples.push(sample);
    }
    Ok(samples)
}

/// Looks up a sample by canonical series key (`name` or
/// `name{label="value",...}` with labels in sorted order).
pub fn sample_value(samples: &[Sample], series: &str) -> Option<f64> {
    samples.iter().find(|s| s.series == series).map(|s| s.value)
}

fn parse_comment(rest: &str) -> Result<(), String> {
    let rest = rest.strip_prefix(' ').ok_or("expected a space after '#'")?;
    if let Some(help) = rest.strip_prefix("HELP ") {
        let (name, _) = help
            .split_once(' ')
            .ok_or("HELP needs a metric name and text")?;
        validate_name_token(name)?;
        return Ok(());
    }
    if let Some(typ) = rest.strip_prefix("TYPE ") {
        let (name, kind) = typ.split_once(' ').ok_or("TYPE needs a name and a kind")?;
        validate_name_token(name)?;
        match kind {
            "counter" | "gauge" | "histogram" | "summary" | "untyped" => Ok(()),
            other => Err(format!("unknown metric type {other:?}")),
        }
    } else {
        // Free-form comments are legal in the text format.
        Ok(())
    }
}

fn validate_name_token(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first =
        matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':');
    if !ok_first || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        return Err(format!("invalid metric name {name:?}"));
    }
    Ok(())
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let name_end = line.find(['{', ' ']).ok_or("sample line needs a value")?;
    let name = &line[..name_end];
    validate_name_token(name)?;
    let mut labels: Vec<(String, String)> = Vec::new();
    let rest = if line[name_end..].starts_with('{') {
        let body_end = parse_labels(&line[name_end + 1..], &mut labels)?;
        &line[name_end + 1 + body_end + 1..]
    } else {
        &line[name_end..]
    };
    let value_str = rest.trim_start_matches(' ');
    if value_str.is_empty() {
        return Err("missing sample value".to_string());
    }
    // Timestamps (a second field) are allowed by the grammar.
    let mut fields = value_str.split(' ');
    let value_token = fields.next().unwrap_or_default();
    let value = match value_token {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|_| format!("invalid sample value {v:?}"))?,
    };
    if let Some(ts) = fields.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("invalid timestamp {ts:?}"))?;
    }
    labels.sort();
    let series = if labels.is_empty() {
        name.to_string()
    } else {
        let body: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
            .collect();
        format!("{name}{{{}}}", body.join(","))
    };
    Ok(Sample { series, value })
}

/// Parses `k="v",...}`-style label bodies starting just after `{`; returns
/// the byte offset of the closing `}` relative to the input.
fn parse_labels(body: &str, labels: &mut Vec<(String, String)>) -> Result<usize, String> {
    let bytes = body.as_bytes();
    let mut i = 0usize;
    loop {
        if i >= bytes.len() {
            return Err("unterminated label block".to_string());
        }
        if bytes[i] == b'}' {
            return Ok(i);
        }
        // Label name.
        let name_start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        let name = &body[name_start..i];
        let mut chars = name.chars();
        let ok_first = matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_');
        if !ok_first || !chars.all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("invalid label name {name:?}"));
        }
        i += 1; // '='
        if i >= bytes.len() || bytes[i] != b'"' {
            return Err("label value must be quoted".to_string());
        }
        i += 1; // '"'
        let mut value = String::new();
        loop {
            if i >= bytes.len() {
                return Err("unterminated label value".to_string());
            }
            match bytes[i] {
                b'"' => break,
                b'\\' => {
                    i += 1;
                    match bytes.get(i) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    i += 1;
                }
                _ => {
                    // Advance one full UTF-8 character.
                    let ch_len = body[i..].chars().next().map(char::len_utf8).unwrap_or(1);
                    value.push_str(&body[i..i + ch_len]);
                    i += ch_len;
                }
            }
        }
        i += 1; // closing '"'
        labels.push((name.to_string(), value));
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => return Ok(i),
            _ => return Err("expected ',' or '}' after a label".to_string()),
        }
    }
}
