//! Serializable, mergeable point-in-time metric snapshots.

use serde::{Deserialize, Serialize};

use crate::error::TelemetryError;
use crate::registry::Stability;

/// One counter series: identity, metadata, and value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Sorted `(label, value)` pairs.
    pub labels: Vec<(String, String)>,
    /// Help text.
    pub help: String,
    /// Stability class.
    pub stability: Stability,
    /// Counter value.
    pub value: u64,
}

/// One gauge series: identity, metadata, and value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Sorted `(label, value)` pairs.
    pub labels: Vec<(String, String)>,
    /// Help text.
    pub help: String,
    /// Stability class.
    pub stability: Stability,
    /// Gauge value.
    pub value: i64,
}

/// One histogram series: identity, metadata, bucket layout and contents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Sorted `(label, value)` pairs.
    pub labels: Vec<(String, String)>,
    /// Help text.
    pub help: String,
    /// Stability class.
    pub stability: Stability,
    /// Bucket upper bounds (strictly increasing; `+Inf` implicit).
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts (same length as `bounds`,
    /// non-cumulative).
    pub buckets: Vec<u64>,
    /// Saturating sum of all observations.
    pub sum: u64,
    /// Total observation count (also the implicit `+Inf` cumulative value).
    pub count: u64,
}

/// A point-in-time capture of a [`Registry`](crate::Registry): three
/// kind-segregated sample lists, each sorted by `(name, labels)` so equal
/// registries produce byte-identical serializations.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter series.
    pub counters: Vec<CounterSample>,
    /// Gauge series.
    pub gauges: Vec<GaugeSample>,
    /// Histogram series.
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// Whether the snapshot holds no series at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Total number of series across all kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// The value of a counter series, if present.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let mut sorted: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        sorted.sort();
        self.counters
            .iter()
            .find(|c| c.name == name && c.labels == sorted)
            .map(|c| c.value)
    }

    /// The subset of [`Stability::Stable`] series, preserving order.
    pub fn stable_only(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|c| c.stability == Stability::Stable)
                .cloned()
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|g| g.stability == Stability::Stable)
                .cloned()
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|h| h.stability == Stability::Stable)
                .cloned()
                .collect(),
        }
    }

    /// Merges two snapshots into a new one: counters add (saturating),
    /// gauges take the maximum, histograms add bucket-wise. Series present
    /// in only one side pass through. The merge is commutative and
    /// associative, so folding any number of shard snapshots in any order
    /// yields the same result.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::MergeConflict`] when both sides define the same
    /// series with different metadata or bucket layouts, or the same name
    /// with different kinds.
    pub fn merged(&self, other: &MetricsSnapshot) -> Result<MetricsSnapshot, TelemetryError> {
        let mut out = MetricsSnapshot {
            counters: merge_samples(
                &self.counters,
                &other.counters,
                |s| (s.name.clone(), s.labels.clone()),
                |a, b| {
                    check_common(&a.name, &a.help, a.stability, &b.help, b.stability)?;
                    Ok(CounterSample {
                        value: a.value.saturating_add(b.value),
                        ..a.clone()
                    })
                },
            )?,
            gauges: merge_samples(
                &self.gauges,
                &other.gauges,
                |s| (s.name.clone(), s.labels.clone()),
                |a, b| {
                    check_common(&a.name, &a.help, a.stability, &b.help, b.stability)?;
                    Ok(GaugeSample {
                        value: a.value.max(b.value),
                        ..a.clone()
                    })
                },
            )?,
            histograms: merge_samples(
                &self.histograms,
                &other.histograms,
                |s| (s.name.clone(), s.labels.clone()),
                |a, b| {
                    check_common(&a.name, &a.help, a.stability, &b.help, b.stability)?;
                    if a.bounds != b.bounds {
                        return Err(TelemetryError::MergeConflict {
                            name: a.name.clone(),
                            detail: "histogram bucket bounds differ".to_string(),
                        });
                    }
                    Ok(HistogramSample {
                        buckets: a
                            .buckets
                            .iter()
                            .zip(&b.buckets)
                            .map(|(x, y)| x.saturating_add(*y))
                            .collect(),
                        sum: a.sum.saturating_add(b.sum),
                        count: a.count.saturating_add(b.count),
                        ..a.clone()
                    })
                },
            )?,
        };
        check_kind_collisions(&out)?;
        out.counters
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        out.gauges
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        out.histograms
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Ok(out)
    }
}

fn check_common(
    name: &str,
    help_a: &str,
    stab_a: Stability,
    help_b: &str,
    stab_b: Stability,
) -> Result<(), TelemetryError> {
    if help_a != help_b {
        return Err(TelemetryError::MergeConflict {
            name: name.to_string(),
            detail: "help text differs".to_string(),
        });
    }
    if stab_a != stab_b {
        return Err(TelemetryError::MergeConflict {
            name: name.to_string(),
            detail: "stability differs".to_string(),
        });
    }
    Ok(())
}

fn merge_samples<T: Clone>(
    a: &[T],
    b: &[T],
    key: impl Fn(&T) -> (String, Vec<(String, String)>),
    combine: impl Fn(&T, &T) -> Result<T, TelemetryError>,
) -> Result<Vec<T>, TelemetryError> {
    let mut out: Vec<T> = a.to_vec();
    for sample in b {
        let k = key(sample);
        if let Some(existing) = out.iter_mut().find(|s| key(s) == k) {
            *existing = combine(existing, sample)?;
        } else {
            out.push(sample.clone());
        }
    }
    Ok(out)
}

fn check_kind_collisions(snap: &MetricsSnapshot) -> Result<(), TelemetryError> {
    for c in &snap.counters {
        if snap.gauges.iter().any(|g| g.name == c.name)
            || snap.histograms.iter().any(|h| h.name == c.name)
        {
            return Err(TelemetryError::MergeConflict {
                name: c.name.clone(),
                detail: "same name used by different instrument kinds".to_string(),
            });
        }
    }
    for g in &snap.gauges {
        if snap.histograms.iter().any(|h| h.name == g.name) {
            return Err(TelemetryError::MergeConflict {
                name: g.name.clone(),
                detail: "same name used by different instrument kinds".to_string(),
            });
        }
    }
    Ok(())
}
