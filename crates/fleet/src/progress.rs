//! Live progress reporting for streaming fleet execution.
//!
//! With eager window synthesis, a shard worker was silent until its whole
//! device range finished. The streaming executor pulls windows one at a time,
//! so it can report partial progress — windows processed, devices completed —
//! through a [`ProgressSink`] while the simulation runs, which is what the
//! `--progress` flag of the `fleet` / `fleet-shard` CLIs surfaces. Progress
//! is observational only: sinks receive callbacks from worker threads in
//! whatever order devices finish, and the simulation's reports remain
//! byte-identical whether a sink is attached or not.

use ppg_data::{DataError, IntoWindowSource, LabeledWindow, WindowSource};

/// Receiver of live fleet-execution progress.
///
/// Implementations must be [`Sync`]: the executor's worker threads call them
/// concurrently. Callbacks arrive in completion order, which depends on
/// scheduling — sinks must not assume device-id order.
pub trait ProgressSink: Sync {
    /// One or more windows of `device_id` were pulled through the runtime.
    fn windows_processed(&self, device_id: u64, count: usize);

    /// The device finished simulating; `windows` is its total window count.
    fn device_completed(&self, device_id: u64, windows: usize);
}

/// [`WindowSource`] adapter that reports every pulled window to a
/// [`ProgressSink`] — how the executor observes progress without the runtime
/// knowing about fleets.
#[derive(Clone, Copy)]
pub struct ProgressSource<'a, S> {
    inner: S,
    sink: &'a dyn ProgressSink,
    device_id: u64,
}

impl<'a, S: WindowSource> ProgressSource<'a, S> {
    /// Wraps a window source so each yielded window is reported to `sink`
    /// under `device_id`.
    pub fn new(inner: S, sink: &'a dyn ProgressSink, device_id: u64) -> Self {
        Self {
            inner,
            sink,
            device_id,
        }
    }
}

impl<S: WindowSource> WindowSource for ProgressSource<'_, S> {
    fn next_window(&mut self) -> Option<Result<LabeledWindow, DataError>> {
        let item = self.inner.next_window();
        if let Some(Ok(_)) = &item {
            self.sink.windows_processed(self.device_id, 1);
        }
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }

    /// Delegates to the inner source's visitor (preserving its zero-copy
    /// overrides), reporting each pulled window to the sink.
    fn try_for_each_window<E: From<DataError>>(
        &mut self,
        mut f: impl FnMut(&LabeledWindow) -> Result<(), E>,
    ) -> Result<usize, E> {
        let sink = self.sink;
        let device_id = self.device_id;
        self.inner.try_for_each_window(|window| {
            sink.windows_processed(device_id, 1);
            f(window)
        })
    }
}

impl<'a, S: WindowSource> IntoWindowSource for ProgressSource<'a, S> {
    type Source = Self;

    fn into_window_source(self) -> Self::Source {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Default)]
    struct CountingSink {
        windows: AtomicUsize,
        devices: AtomicUsize,
    }

    impl ProgressSink for CountingSink {
        fn windows_processed(&self, _device_id: u64, count: usize) {
            self.windows.fetch_add(count, Ordering::Relaxed);
        }

        fn device_completed(&self, _device_id: u64, _windows: usize) {
            self.devices.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn progress_source_reports_every_window_and_preserves_the_stream() {
        let stream = ppg_data::DatasetBuilder::new()
            .subjects(1)
            .seconds_per_activity(16.0)
            .seed(3)
            .window_stream()
            .unwrap();
        let expected: Vec<_> = stream.clone().iter().map(Result::unwrap).collect();
        let sink = CountingSink::default();
        let observed: Vec<_> = ProgressSource::new(stream, &sink, 7)
            .iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(observed, expected);
        assert_eq!(sink.windows.load(Ordering::Relaxed), expected.len());
    }
}
