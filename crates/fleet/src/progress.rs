//! Live progress reporting for streaming fleet execution.
//!
//! With eager window synthesis, a shard worker was silent until its whole
//! device range finished. The streaming executor pulls windows one at a time,
//! so it can report partial progress — windows processed, devices completed —
//! through a [`ProgressSink`] while the simulation runs, which is what the
//! `--progress` flag of the `fleet` / `fleet-shard` CLIs surfaces. Progress
//! is observational only: sinks receive callbacks from worker threads in
//! whatever order devices finish, and the simulation's reports remain
//! byte-identical whether a sink is attached or not.

use ppg_data::{DataError, IntoWindowSource, LabeledWindow, WindowSource};

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// One-shot cross-thread publication of the merged profile-cache counters:
/// a worker writes `(hits, misses)` once, any thread may poll for them.
///
/// This is the Release/Acquire pair progress sinks rely on: the two counter
/// cells are written Relaxed and *published* by the Release store of the
/// `reported` flag; [`CachePublication::stats`] reads the flag with Acquire,
/// so a reader that observes `true` is guaranteed to observe the counters —
/// never a torn `Some((0, 0))`. The pair is exhaustively model-checked in
/// `fleet/tests/interleave_harness.rs` (`cache_publication_*`), including a
/// mutation self-test proving the checker rejects a Relaxed downgrade of
/// the flag store.
#[derive(Debug, Default)]
pub struct CachePublication {
    reported: AtomicBool,
    hits: AtomicU64,
    misses: AtomicU64,
    /// `false` only in the checker's mutation self-test.
    downgraded: bool,
}

impl CachePublication {
    /// Creates an empty, unpublished pair.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            reported: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            downgraded: false,
        }
    }

    /// Mutation-test twin of [`CachePublication::new`]: publishes the flag
    /// with a Relaxed store instead of Release. Exists only so the
    /// interleaving harness can prove the checker catches the downgrade —
    /// never use it for real publication.
    #[cfg(feature = "interleave")]
    #[must_use]
    pub const fn new_unsound_relaxed() -> Self {
        Self {
            reported: AtomicBool::new(false),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            downgraded: true,
        }
    }

    /// Publishes the counters. Call at most once; later readers of
    /// [`CachePublication::stats`] then observe exactly these values.
    pub fn publish(&self, hits: u64, misses: u64) {
        // relaxed: published by the release store of the flag below; never
        // read before the flag is seen (proven in
        // fleet/tests/interleave_harness.rs::cache_publication_is_sound).
        self.hits.store(hits, Ordering::Relaxed);
        // relaxed: published by the release store of the flag below.
        self.misses.store(misses, Ordering::Relaxed);
        let order = if self.downgraded {
            // relaxed: deliberately unsound, reachable only through
            // `new_unsound_relaxed` — the checker's mutation self-test.
            Ordering::Relaxed
        } else {
            // release: publishes the two counter stores above to the
            // acquire load in `stats`.
            Ordering::Release
        };
        self.reported.store(true, order);
    }

    /// The published `(hits, misses)`, or `None` while unpublished.
    pub fn stats(&self) -> Option<(u64, u64)> {
        // acquire: pairs with the release store in `publish` — seeing the
        // flag must also make the counter cells it publishes visible
        // (proven in fleet/tests/interleave_harness.rs).
        self.reported.load(Ordering::Acquire).then(|| {
            (
                // relaxed: ordered by the acquire load of the flag above.
                self.hits.load(Ordering::Relaxed),
                // relaxed: ordered by the acquire load of the flag above.
                self.misses.load(Ordering::Relaxed),
            )
        })
    }
}

/// Receiver of live fleet-execution progress.
///
/// Implementations must be [`Sync`]: the executor's worker threads call them
/// concurrently. Callbacks arrive in completion order, which depends on
/// scheduling — sinks must not assume device-id order.
pub trait ProgressSink: Sync {
    /// One or more windows of `device_id` were pulled through the runtime.
    fn windows_processed(&self, device_id: u64, count: usize);

    /// The device finished simulating; `windows` is its total window count.
    fn device_completed(&self, device_id: u64, windows: usize);

    /// Merged profiling-window cache counters of a finished run, summed over
    /// the executor's per-worker caches. Called once per run, after the last
    /// device, and only when the cache is enabled
    /// (`ExecutorOptions::profile_cache`). The split between hits and misses
    /// can vary with scheduling (each worker owns its cache), but the
    /// simulation's reports never do. Default: ignored.
    fn profile_cache(&self, hits: u64, misses: u64) {
        let _ = (hits, misses);
    }

    /// Cooperative cancellation hook, polled by the executor between devices
    /// (before each device starts, and before a worker claims its next
    /// chunk). Returning `true` makes the run abort at the next device
    /// boundary with [`crate::FleetError::Cancelled`] instead of producing a
    /// partial report — in-flight devices finish their current window stream
    /// first, so cancellation never tears a device mid-simulation. Default:
    /// never cancel, which keeps plain progress sinks byte-invisible.
    fn should_cancel(&self) -> bool {
        false
    }
}

/// [`WindowSource`] adapter that reports every pulled window to a
/// [`ProgressSink`] — how the executor observes progress without the runtime
/// knowing about fleets.
#[derive(Clone, Copy)]
pub struct ProgressSource<'a, S> {
    inner: S,
    sink: &'a dyn ProgressSink,
    device_id: u64,
}

impl<'a, S: WindowSource> ProgressSource<'a, S> {
    /// Wraps a window source so each yielded window is reported to `sink`
    /// under `device_id`.
    pub fn new(inner: S, sink: &'a dyn ProgressSink, device_id: u64) -> Self {
        Self {
            inner,
            sink,
            device_id,
        }
    }
}

/// The one place a window is counted, shared by both consumption paths.
///
/// Counting contract: a window is reported to the sink exactly when the
/// source successfully *yields* it — error items are never counted, and a
/// consumer that fails while processing an already-yielded window does not
/// un-count it (the pull path could not know about that failure anyway).
/// Keeping `next_window` and `try_for_each_window` on this single helper is
/// what guarantees the two paths report identical totals, including when a
/// callback errors mid-stream (locked in by the
/// `callback_error_leaves_identical_totals_on_both_paths` test).
fn report_yielded(sink: &dyn ProgressSink, device_id: u64) {
    sink.windows_processed(device_id, 1);
}

impl<S: WindowSource> WindowSource for ProgressSource<'_, S> {
    fn next_window(&mut self) -> Option<Result<LabeledWindow, DataError>> {
        let item = self.inner.next_window();
        if let Some(Ok(_)) = &item {
            report_yielded(self.sink, self.device_id);
        }
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }

    /// Delegates to the inner source's visitor (preserving its zero-copy
    /// overrides). Each window is reported at yield time — before the
    /// visitor consumes it, mirroring `next_window`'s yield-time counting —
    /// so the sink's totals are identical on both paths even when the
    /// visitor fails mid-stream.
    fn try_for_each_window<E: From<DataError>>(
        &mut self,
        mut f: impl FnMut(&LabeledWindow) -> Result<(), E>,
    ) -> Result<usize, E> {
        let sink = self.sink;
        let device_id = self.device_id;
        self.inner.try_for_each_window(|window| {
            report_yielded(sink, device_id);
            f(window)
        })
    }
}

impl<'a, S: WindowSource> IntoWindowSource for ProgressSource<'a, S> {
    type Source = Self;

    fn into_window_source(self) -> Self::Source {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Default)]
    struct CountingSink {
        windows: AtomicUsize,
        devices: AtomicUsize,
    }

    impl ProgressSink for CountingSink {
        fn windows_processed(&self, _device_id: u64, count: usize) {
            // relaxed: single-threaded test counter.
            self.windows.fetch_add(count, Ordering::Relaxed);
        }

        fn device_completed(&self, _device_id: u64, _windows: usize) {
            // relaxed: single-threaded test counter.
            self.devices.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Test source yielding a scripted sequence of windows and in-band
    /// errors.
    struct ScriptedSource {
        items: std::vec::IntoIter<Result<LabeledWindow, DataError>>,
    }

    impl ScriptedSource {
        fn new(items: Vec<Result<LabeledWindow, DataError>>) -> Self {
            Self {
                items: items.into_iter(),
            }
        }
    }

    impl WindowSource for ScriptedSource {
        fn next_window(&mut self) -> Option<Result<LabeledWindow, DataError>> {
            self.items.next()
        }
    }

    fn sample_windows(count: usize) -> Vec<LabeledWindow> {
        ppg_data::DatasetBuilder::new()
            .subjects(1)
            .seconds_per_activity(24.0)
            .seed(5)
            .window_stream()
            .unwrap()
            .iter()
            .take(count)
            .map(Result::unwrap)
            .collect()
    }

    #[test]
    fn callback_error_leaves_identical_totals_on_both_paths() {
        let windows = sample_windows(6);
        assert_eq!(windows.len(), 6);
        let fail_at = 3usize; // error on the 4th window, mid-stream

        // Path 1: the visitor (`try_for_each_window`, the runtime's path).
        let visitor_sink = CountingSink::default();
        let mut source =
            ProgressSource::new(ppg_data::SliceSource::new(&windows), &visitor_sink, 7);
        let mut seen = 0usize;
        let result: Result<usize, DataError> = source.try_for_each_window(|_| {
            if seen == fail_at {
                return Err(DataError::RecordingTooShort {
                    samples: 0,
                    required: 1,
                });
            }
            seen += 1;
            Ok(())
        });
        assert!(result.is_err());

        // Path 2: a manual `next_window` pull loop applying the same
        // failing consumer.
        let pull_sink = CountingSink::default();
        let mut source = ProgressSource::new(ppg_data::SliceSource::new(&windows), &pull_sink, 7);
        let mut seen = 0usize;
        while let Some(item) = source.next_window() {
            item.unwrap();
            if seen == fail_at {
                break; // the consumer fails on this window
            }
            seen += 1;
        }

        assert_eq!(
            // relaxed: single-threaded test assertion.
            visitor_sink.windows.load(Ordering::Relaxed),
            // relaxed: single-threaded test assertion.
            pull_sink.windows.load(Ordering::Relaxed),
            "the visitor and pull paths must report identical progress totals"
        );
        // Both count the yielded-but-failed window: yield-time counting.
        // relaxed: single-threaded test assertion.
        assert_eq!(pull_sink.windows.load(Ordering::Relaxed), fail_at + 1);
    }

    #[test]
    fn source_errors_are_not_counted_on_either_path() {
        let windows = sample_windows(3);
        let script = || {
            vec![
                Ok(windows[0].clone()),
                Ok(windows[1].clone()),
                Err(DataError::RecordingTooShort {
                    samples: 0,
                    required: 1,
                }),
                Ok(windows[2].clone()),
            ]
        };

        let visitor_sink = CountingSink::default();
        let mut source = ProgressSource::new(ScriptedSource::new(script()), &visitor_sink, 1);
        let result: Result<usize, DataError> = source.try_for_each_window(|_| Ok(()));
        assert!(result.is_err());

        let pull_sink = CountingSink::default();
        let mut source = ProgressSource::new(ScriptedSource::new(script()), &pull_sink, 1);
        let mut failed = false;
        while let Some(item) = source.next_window() {
            if item.is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed);

        // relaxed: single-threaded test assertion.
        assert_eq!(visitor_sink.windows.load(Ordering::Relaxed), 2);
        // relaxed: single-threaded test assertion.
        assert_eq!(pull_sink.windows.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn progress_source_reports_every_window_and_preserves_the_stream() {
        let stream = ppg_data::DatasetBuilder::new()
            .subjects(1)
            .seconds_per_activity(16.0)
            .seed(3)
            .window_stream()
            .unwrap();
        let expected: Vec<_> = stream.clone().iter().map(Result::unwrap).collect();
        let sink = CountingSink::default();
        let observed: Vec<_> = ProgressSource::new(stream, &sink, 7)
            .iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(observed, expected);
        // relaxed: single-threaded test assertion.
        assert_eq!(sink.windows.load(Ordering::Relaxed), expected.len());
    }
}
