//! Aggregate fleet reporting.
//!
//! [`DeviceReport`] is the distilled outcome of one device's run;
//! [`FleetReport`] folds a fleet of them into the population statistics an
//! operator watches: MAE percentiles, energy and projected battery-life
//! distributions, the offload-fraction histogram (how much work the phones
//! absorb) and constraint-violation counts. Aggregation is *incremental*:
//! [`FleetAccumulator`] folds device reports one at a time (in id order, with
//! fixed-order floating-point reductions) and
//! [`FleetReport::from_devices`] is just that fold over a slice — so a
//! fleet's report is byte-identical no matter how many threads produced the
//! device reports, and, because [`crate::merge`] feeds id-ordered shard
//! artifacts through the same accumulator, no matter how many *processes or
//! hosts* produced them either. Percentiles are exact nearest-rank order
//! statistics with the rank computed in integer arithmetic
//! ([`DistributionSummary::nearest_rank_index`]).

use std::collections::BTreeMap;

use chris_core::config::EnergyAccounting;
use chris_core::decision::UserConstraint;
use hw_sim::units::Energy;
use serde::{Deserialize, Serialize};

/// Number of bins of the offload-fraction histogram (equal width over
/// `[0, 1]`).
pub const OFFLOAD_HISTOGRAM_BINS: usize = 10;

/// Distilled outcome of one device's simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Device id within the fleet.
    pub device_id: u64,
    /// Number of windows the device processed.
    pub windows: usize,
    /// Realized MAE over the device's windows, in BPM.
    pub mae_bpm: f32,
    /// Average smartwatch energy per prediction.
    pub avg_watch_energy: Energy,
    /// Average phone energy per prediction.
    pub avg_phone_energy: Energy,
    /// Fraction of windows offloaded to the phone.
    pub offload_fraction: f32,
    /// Fraction of windows handled by the simple model.
    pub simple_fraction: f32,
    /// Fraction of windows processed while the link was down.
    pub disconnected_fraction: f32,
    /// Projected battery life at the device's average power, in hours.
    pub battery_life_hours: f64,
    /// The constraint the device ran under.
    pub constraint: UserConstraint,
    /// The energy accounting the device ran under.
    pub accounting: EnergyAccounting,
    /// Whether the realized MAE/energy exceeded the (soft) constraint.
    pub constraint_violated: bool,
}

/// Order statistics of one per-device quantity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributionSummary {
    /// Smallest value.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Largest value.
    pub max: f64,
}

impl DistributionSummary {
    /// Zero-based index of the nearest-rank `p`th percentile in a sorted
    /// sample of `n` values, computed exactly: `ceil(p * n / 100) - 1`.
    ///
    /// The arithmetic is pure integer math (`div_ceil`), never floating
    /// point. The previous `(p / 100.0 * n as f64).ceil()` formulation is an
    /// off-by-one trap: whenever the inexact double `p / 100.0` rounds *up*
    /// (e.g. `7.0 / 100.0`), the product for an exact-rank sample size lands
    /// epsilon above the true integer (`0.07 * 100 == 7.000000000000001`)
    /// and `ceil` overshoots the rank by one whole sample.
    ///
    /// # Panics
    ///
    /// Debug-asserts `1 <= p <= 100` and `n > 0`; in release builds the
    /// result is clamped into `0..n`.
    pub fn nearest_rank_index(p: u32, n: usize) -> usize {
        debug_assert!((1..=100).contains(&p), "percentile {p} outside 1..=100");
        debug_assert!(n > 0, "nearest rank of an empty sample");
        let rank = (u128::from(p) * n as u128).div_ceil(100).max(1);
        usize::try_from(rank - 1)
            .unwrap_or(usize::MAX)
            .min(n.saturating_sub(1))
    }

    /// Nearest-rank `p`th percentile of a sample **sorted** with
    /// [`f64::total_cmp`]; `None` for an empty sample.
    pub fn percentile_sorted(sorted: &[f64], p: u32) -> Option<f64> {
        if sorted.is_empty() {
            return None;
        }
        Some(sorted[Self::nearest_rank_index(p, sorted.len())])
    }

    /// Summarizes a non-empty sample; `None` for an empty one.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |p: u32| sorted[Self::nearest_rank_index(p, sorted.len())];
        Some(Self {
            min: sorted[0],
            mean: values.iter().sum::<f64>() / values.len() as f64,
            p50: rank(50),
            p90: rank(90),
            p99: rank(99),
            max: sorted[sorted.len() - 1],
        })
    }
}

/// The all-zero summary reported for quantities of an empty fleet.
const EMPTY_SUMMARY: DistributionSummary = DistributionSummary {
    min: 0.0,
    mean: 0.0,
    p50: 0.0,
    p90: 0.0,
    p99: 0.0,
    max: 0.0,
};

/// Offload-histogram bin of one device's offload fraction.
///
/// NaN is handled explicitly instead of relying on the silent `as usize`
/// saturation: a NaN fraction (impossible for reports produced by the
/// executor, whose fractions are ratios of window counts) trips a debug
/// assertion, and in release builds is deterministically clamped into bin 0 —
/// the same "make NaN a loud, deterministic policy" treatment the decision
/// engine applies with `total_cmp`.
fn offload_bin(fraction: f32) -> usize {
    debug_assert!(
        !fraction.is_nan(),
        "device offload_fraction is NaN; upstream fraction accounting is broken"
    );
    if fraction.is_nan() {
        return 0;
    }
    ((f64::from(fraction) * OFFLOAD_HISTOGRAM_BINS as f64) as usize).min(OFFLOAD_HISTOGRAM_BINS - 1)
}

/// Streaming fleet aggregation: folds [`DeviceReport`]s one at a time — in
/// device-id order — and finalizes into a [`FleetReport`] **byte-identical**
/// to [`FleetReport::from_devices`] over the same sequence (which is itself
/// implemented as a fold through this type, so the two can never drift).
///
/// The accumulator keeps only what the final report needs: three `f64`
/// order-statistic samples per device (MAE, watch energy, battery life) plus
/// fixed-size running reductions — not the `DeviceReport`s themselves. That
/// is what lets [`crate::merge`] consume shard artifacts incrementally: each
/// artifact is folded and dropped, and peak memory is one artifact plus the
/// per-device scalars instead of every artifact at once.
///
/// All floating-point reductions happen in push order, so feeding devices in
/// id order reproduces the fixed reduction order the byte-identity guarantee
/// of sharded execution rests on.
#[derive(Debug, Clone)]
pub struct FleetAccumulator {
    maes: Vec<f64>,
    watch_energies: Vec<f64>,
    battery_lives: Vec<f64>,
    total_windows: usize,
    offloaded_windows: f64,
    disconnected_windows: f64,
    phone_energy_sum: f64,
    offloading_devices: usize,
    offload_histogram: Vec<usize>,
    constraint_violations: usize,
    constraint_mix: BTreeMap<String, usize>,
    accounting_mix: BTreeMap<String, usize>,
}

impl FleetAccumulator {
    /// Creates an empty accumulator; finalizing it immediately yields the
    /// same all-zero report as `FleetReport::from_devices(&[])`.
    pub fn new() -> Self {
        Self {
            maes: Vec::new(),
            watch_energies: Vec::new(),
            battery_lives: Vec::new(),
            total_windows: 0,
            offloaded_windows: 0.0,
            disconnected_windows: 0.0,
            phone_energy_sum: 0.0,
            offloading_devices: 0,
            offload_histogram: vec![0; OFFLOAD_HISTOGRAM_BINS],
            constraint_violations: 0,
            constraint_mix: BTreeMap::new(),
            accounting_mix: BTreeMap::new(),
        }
    }

    /// Number of devices folded so far.
    pub fn devices(&self) -> usize {
        self.maes.len()
    }

    /// Total windows across the devices folded so far.
    pub fn total_windows(&self) -> usize {
        self.total_windows
    }

    /// Folds one device into the aggregate. Callers must push devices in
    /// id order to preserve the byte-identity of the finalized report.
    pub fn push(&mut self, device: &DeviceReport) {
        self.maes.push(f64::from(device.mae_bpm));
        self.watch_energies
            .push(device.avg_watch_energy.as_microjoules());
        self.battery_lives.push(device.battery_life_hours);
        self.total_windows += device.windows;
        self.offloaded_windows += f64::from(device.offload_fraction) * device.windows as f64;
        self.disconnected_windows +=
            f64::from(device.disconnected_fraction) * device.windows as f64;
        if device.offload_fraction > 0.0 {
            self.offloading_devices += 1;
            self.phone_energy_sum += device.avg_phone_energy.as_microjoules();
        }
        self.offload_histogram[offload_bin(device.offload_fraction)] += 1;
        if device.constraint_violated {
            self.constraint_violations += 1;
        }
        let constraint_key = match device.constraint {
            UserConstraint::MaxMae(_) => "max_mae",
            UserConstraint::MaxEnergy(_) => "max_energy",
        };
        *self
            .constraint_mix
            .entry(constraint_key.to_string())
            .or_insert(0) += 1;
        *self
            .accounting_mix
            .entry(format!("{:?}", device.accounting))
            .or_insert(0) += 1;
    }

    /// Finalizes the aggregate into the population report.
    pub fn finalize(self) -> FleetReport {
        let devices = self.maes.len();
        let mut report = FleetReport {
            devices,
            total_windows: self.total_windows,
            mae_bpm: DistributionSummary::from_values(&self.maes).unwrap_or(EMPTY_SUMMARY),
            watch_energy_uj: DistributionSummary::from_values(&self.watch_energies)
                .unwrap_or(EMPTY_SUMMARY),
            battery_life_hours: DistributionSummary::from_values(&self.battery_lives)
                .unwrap_or(EMPTY_SUMMARY),
            offload_histogram: self.offload_histogram,
            offloaded_window_share: 0.0,
            disconnected_window_share: 0.0,
            avg_phone_energy_uj: 0.0,
            constraint_violations: self.constraint_violations,
            constraint_mix: self.constraint_mix,
            accounting_mix: self.accounting_mix,
        };
        if report.total_windows > 0 {
            report.offloaded_window_share = self.offloaded_windows / report.total_windows as f64;
            report.disconnected_window_share =
                self.disconnected_windows / report.total_windows as f64;
        }
        if self.offloading_devices > 0 {
            report.avg_phone_energy_uj = self.phone_energy_sum / self.offloading_devices as f64;
        }
        report
    }
}

impl Default for FleetAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

/// Population-level statistics of one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Number of simulated devices.
    pub devices: usize,
    /// Total windows processed across the fleet.
    pub total_windows: usize,
    /// Distribution of per-device MAE, in BPM.
    pub mae_bpm: DistributionSummary,
    /// Distribution of per-device average smartwatch energy, in µJ per
    /// prediction.
    pub watch_energy_uj: DistributionSummary,
    /// Distribution of per-device projected battery life, in hours.
    pub battery_life_hours: DistributionSummary,
    /// Histogram of per-device offload fractions over
    /// [`OFFLOAD_HISTOGRAM_BINS`] equal-width bins spanning `[0, 1]`.
    pub offload_histogram: Vec<usize>,
    /// Window-weighted share of all fleet windows that were offloaded.
    pub offloaded_window_share: f64,
    /// Window-weighted share of all fleet windows with the link down.
    pub disconnected_window_share: f64,
    /// Average phone energy among devices that offloaded at least one
    /// window, in µJ per prediction (zero when no device offloads).
    pub avg_phone_energy_uj: f64,
    /// Devices whose realized behaviour exceeded their soft constraint.
    pub constraint_violations: usize,
    /// Device counts by constraint kind (`"max_mae"` / `"max_energy"`).
    pub constraint_mix: BTreeMap<String, usize>,
    /// Device counts by energy-accounting mode.
    pub accounting_mix: BTreeMap<String, usize>,
}

impl FleetReport {
    /// Aggregates device reports (assumed sorted by device id, as produced by
    /// the executor). Returns an all-zero report for an empty slice.
    ///
    /// Implemented as a fold through [`FleetAccumulator`]: the batch and the
    /// streaming aggregation paths are one code path, so their reports are
    /// byte-identical by construction (and locked in by the
    /// `tests/accumulator.rs` property suite).
    pub fn from_devices(devices: &[DeviceReport]) -> Self {
        let mut accumulator = FleetAccumulator::new();
        for device in devices {
            accumulator.push(device);
        }
        accumulator.finalize()
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet of {} devices, {} windows",
            self.devices, self.total_windows
        )?;
        let row = |name: &str, d: &DistributionSummary, unit: &str| {
            format!(
                "  {name:<22} p50 {:>9.2} {unit}  p90 {:>9.2} {unit}  p99 {:>9.2} {unit}  \
                 (min {:.2}, mean {:.2}, max {:.2})",
                d.p50, d.p90, d.p99, d.min, d.mean, d.max
            )
        };
        writeln!(f, "{}", row("MAE", &self.mae_bpm, "BPM"))?;
        writeln!(f, "{}", row("watch energy", &self.watch_energy_uj, "uJ"))?;
        writeln!(f, "{}", row("battery life", &self.battery_life_hours, "h"))?;
        writeln!(
            f,
            "  offloaded / link-down  {:.1} % / {:.1} % of windows; phone avg {:.1} uJ/pred",
            self.offloaded_window_share * 100.0,
            self.disconnected_window_share * 100.0,
            self.avg_phone_energy_uj
        )?;
        write!(f, "  offload histogram      ")?;
        for count in &self.offload_histogram {
            write!(f, "{count:>6}")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "  constraints            {:?} ({} violated)",
            self.constraint_mix, self.constraint_violations
        )?;
        write!(f, "  accounting             {:?}", self.accounting_mix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(id: u64, mae: f32, energy_uj: f64, offload: f32, violated: bool) -> DeviceReport {
        DeviceReport {
            device_id: id,
            windows: 50,
            mae_bpm: mae,
            avg_watch_energy: Energy::from_microjoules(energy_uj),
            avg_phone_energy: Energy::from_microjoules(energy_uj * 10.0),
            offload_fraction: offload,
            simple_fraction: 0.5,
            disconnected_fraction: 0.1,
            battery_life_hours: 400.0 / (1.0 + f64::from(mae)),
            constraint: UserConstraint::MaxMae(6.0),
            accounting: EnergyAccounting::BleOnly,
            constraint_violated: violated,
        }
    }

    #[test]
    fn distribution_summary_orders_percentiles() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let d = DistributionSummary::from_values(&values).unwrap();
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 100.0);
        assert_eq!(d.p50, 50.0);
        assert_eq!(d.p90, 90.0);
        assert_eq!(d.p99, 99.0);
        assert!((d.mean - 50.5).abs() < 1e-12);
        assert!(DistributionSummary::from_values(&[]).is_none());
    }

    #[test]
    fn p90_of_10_and_20_devices_is_the_nearest_rank_not_the_max() {
        // Exact-rank regression: ceil(90 * 10 / 100) = 9 -> the 9th sorted
        // value, never the max. A float formulation that rounds the product
        // up by one epsilon would return 10.0 (n=10) / 20.0 (n=20) here.
        let values: Vec<f64> = (1..=10).map(f64::from).collect();
        let d = DistributionSummary::from_values(&values).unwrap();
        assert_eq!(d.p90, 9.0);
        assert_eq!(d.p50, 5.0);
        assert_eq!(d.p99, 10.0);
        let values: Vec<f64> = (1..=20).map(f64::from).collect();
        let d = DistributionSummary::from_values(&values).unwrap();
        assert_eq!(d.p90, 18.0);
        assert_eq!(d.p50, 10.0);
        assert_eq!(d.p99, 20.0);
    }

    #[test]
    fn nearest_rank_never_overshoots_where_the_float_formula_does() {
        // The old `(p / 100.0 * n as f64).ceil()` rank overshoots whenever
        // `p / 100.0` rounds up and `p * n / 100` is an exact integer:
        // 0.07 * 100 evaluates to 7.000000000000001, so ceil() lands on
        // rank 8 instead of 7. The integer rank must not.
        for (p, n, expected_index) in [(7u32, 100usize, 6usize), (7, 200, 13), (14, 50, 6)] {
            let float_index = ((f64::from(p) / 100.0 * n as f64).ceil() as usize).max(1) - 1;
            assert_eq!(
                float_index,
                expected_index + 1,
                "case ({p}, {n}) no longer exhibits the float overshoot"
            );
            assert_eq!(
                DistributionSummary::nearest_rank_index(p, n),
                expected_index
            );
        }
        // Sanity across the summary's own percentiles.
        assert_eq!(DistributionSummary::nearest_rank_index(50, 10), 4);
        assert_eq!(DistributionSummary::nearest_rank_index(90, 10), 8);
        assert_eq!(DistributionSummary::nearest_rank_index(99, 10), 9);
        assert_eq!(DistributionSummary::nearest_rank_index(100, 10), 9);
        assert_eq!(DistributionSummary::nearest_rank_index(1, 1), 0);
    }

    #[test]
    fn percentile_sorted_matches_from_values() {
        let values: Vec<f64> = (1..=64).map(f64::from).collect();
        let d = DistributionSummary::from_values(&values).unwrap();
        assert_eq!(
            DistributionSummary::percentile_sorted(&values, 50),
            Some(d.p50)
        );
        assert_eq!(
            DistributionSummary::percentile_sorted(&values, 90),
            Some(d.p90)
        );
        assert_eq!(
            DistributionSummary::percentile_sorted(&values, 99),
            Some(d.p99)
        );
        assert_eq!(DistributionSummary::percentile_sorted(&[], 50), None);
    }

    #[test]
    fn nan_offload_fraction_is_handled_explicitly() {
        // Real fractions bin as before.
        assert_eq!(offload_bin(0.0), 0);
        assert_eq!(offload_bin(0.05), 0);
        assert_eq!(offload_bin(0.95), 9);
        assert_eq!(offload_bin(1.0), OFFLOAD_HISTOGRAM_BINS - 1);
        // NaN is a loud debug assertion; the release-mode policy clamps it
        // deterministically into bin 0 instead of the silent `as usize` cast.
        let nan_bin = std::panic::catch_unwind(|| offload_bin(f32::NAN));
        if cfg!(debug_assertions) {
            assert!(nan_bin.is_err(), "NaN must trip the debug assertion");
        } else {
            assert_eq!(nan_bin.unwrap(), 0);
        }
    }

    #[test]
    fn accumulator_matches_from_devices_byte_for_byte() {
        let devices: Vec<DeviceReport> = (0..23)
            .map(|i| {
                device(
                    i,
                    3.0 + i as f32,
                    250.0 + i as f64,
                    i as f32 / 23.0,
                    i % 5 == 0,
                )
            })
            .collect();
        let batch = FleetReport::from_devices(&devices);
        let mut accumulator = FleetAccumulator::new();
        for d in &devices {
            accumulator.push(d);
        }
        assert_eq!(accumulator.devices(), devices.len());
        assert_eq!(accumulator.total_windows(), batch.total_windows);
        let streamed = accumulator.finalize();
        assert_eq!(streamed, batch);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&batch).unwrap()
        );
    }

    #[test]
    fn empty_accumulator_finalizes_to_the_all_zero_report() {
        let report = FleetAccumulator::default().finalize();
        assert_eq!(report, FleetReport::from_devices(&[]));
        assert_eq!(report.devices, 0);
        assert_eq!(report.offload_histogram, vec![0; OFFLOAD_HISTOGRAM_BINS]);
    }

    #[test]
    fn fleet_report_aggregates_devices() {
        let devices: Vec<DeviceReport> = (0..10)
            .map(|i| device(i, 4.0 + i as f32, 300.0 + i as f64, i as f32 / 10.0, i == 9))
            .collect();
        let report = FleetReport::from_devices(&devices);
        assert_eq!(report.devices, 10);
        assert_eq!(report.total_windows, 500);
        assert_eq!(report.constraint_violations, 1);
        assert_eq!(report.offload_histogram.iter().sum::<usize>(), 10);
        assert_eq!(report.constraint_mix.get("max_mae"), Some(&10));
        assert!(report.mae_bpm.p50 >= report.mae_bpm.min);
        assert!(report.mae_bpm.p99 <= report.mae_bpm.max);
        assert!((report.disconnected_window_share - 0.1).abs() < 1e-6);
    }

    #[test]
    fn empty_fleet_reports_zeros() {
        let report = FleetReport::from_devices(&[]);
        assert_eq!(report.devices, 0);
        assert_eq!(report.total_windows, 0);
        assert_eq!(report.offload_histogram.len(), OFFLOAD_HISTOGRAM_BINS);
    }

    #[test]
    fn display_mentions_key_quantities() {
        let devices = vec![device(0, 5.0, 400.0, 0.5, false)];
        let text = FleetReport::from_devices(&devices).to_string();
        assert!(text.contains("MAE"));
        assert!(text.contains("battery life"));
        assert!(text.contains("offload histogram"));
    }

    #[test]
    fn serde_round_trip() {
        let devices = vec![
            device(0, 5.0, 400.0, 0.5, true),
            device(1, 6.0, 500.0, 0.9, false),
        ];
        let report = FleetReport::from_devices(&devices);
        let json = serde_json::to_string(&report).unwrap();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        let device_json = serde_json::to_string(&devices).unwrap();
        let back: Vec<DeviceReport> = serde_json::from_str(&device_json).unwrap();
        assert_eq!(devices, back);
    }
}
