//! Aggregate fleet reporting.
//!
//! [`DeviceReport`] is the distilled outcome of one device's run;
//! [`FleetReport`] folds a fleet of them into the population statistics an
//! operator watches: MAE percentiles, energy and projected battery-life
//! distributions, the offload-fraction histogram (how much work the phones
//! absorb) and constraint-violation counts. Aggregation is *incremental*:
//! [`FleetAccumulator`] folds device reports one at a time (in id order, with
//! fixed-order floating-point reductions) and
//! [`FleetReport::from_devices`] is just that fold over a slice — so a
//! fleet's report is byte-identical no matter how many threads produced the
//! device reports, and, because [`crate::merge`] feeds id-ordered shard
//! artifacts through the same accumulator, no matter how many *processes or
//! hosts* produced them either.
//!
//! Aggregation runs in one of two [`ReportMode`]s:
//!
//! * [`ReportMode::Exact`] (the default): percentiles are exact nearest-rank
//!   order statistics with the rank computed in integer arithmetic
//!   ([`DistributionSummary::nearest_rank_index`]), at the cost of three
//!   `f64` samples retained per device — O(devices) memory,
//! * [`ReportMode::Sketch`]: each quantity streams into a deterministic
//!   [`crate::sketch::QuantileSketch`], so the accumulator retains
//!   O(capacity · log devices) samples and the report's percentiles carry a
//!   surfaced worst-case rank-error bound ([`SketchInfo`]). Sketch-mode
//!   reports keep the same byte-identity guarantee: any tiling of the fleet
//!   into shards, merged in any order, serializes identically.

use std::collections::BTreeMap;

use chris_core::config::EnergyAccounting;
use chris_core::decision::UserConstraint;
use hw_sim::units::Energy;
use serde::{Deserialize, Serialize};
use telemetry::Stability;

use crate::sketch::{
    QuantileSketch, SKETCH_COMPACTIONS_HELP, SKETCH_COMPACTIONS_SERIES, SKETCH_RETAINED_HELP,
    SKETCH_RETAINED_SERIES,
};

/// Number of bins of the offload-fraction histogram (equal width over
/// `[0, 1]`).
pub const OFFLOAD_HISTOGRAM_BINS: usize = 10;

/// How fleet-level distributions are aggregated (see the [module
/// docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReportMode {
    /// Exact nearest-rank order statistics; three `f64` samples retained per
    /// device. The default.
    #[default]
    Exact,
    /// Deterministic mergeable quantile sketches; O(log devices) retained
    /// samples, percentiles within a surfaced worst-case rank-error bound.
    Sketch,
}

impl ReportMode {
    /// Looks a mode up by CLI name (`exact`, `sketch`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "exact" => Some(Self::Exact),
            "sketch" => Some(Self::Sketch),
            _ => None,
        }
    }

    /// The CLI name of the mode.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Exact => "exact",
            Self::Sketch => "sketch",
        }
    }

    /// The names accepted by [`ReportMode::from_name`].
    pub const NAMES: [&'static str; 2] = ["exact", "sketch"];
}

/// Accuracy and footprint annotation of a sketch-mode aggregation: one
/// record covers all three sketched quantities (MAE, watch energy, battery
/// life), whose compaction schedules are identical because they see the same
/// device-id sequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SketchInfo {
    /// Worst-case absolute rank error of any reported percentile, in device
    /// ranks: the value reported as the `p`th percentile has true rank
    /// within `max_rank_error` of the exact nearest rank.
    pub max_rank_error: u64,
    /// [`SketchInfo::max_rank_error`] as a fraction of the fleet (zero for
    /// an empty fleet).
    pub rank_error_fraction: f64,
    /// Samples retained across the three sketches — the aggregation's
    /// memory footprint, O(log devices) instead of the exact mode's
    /// O(devices).
    pub retained_samples: usize,
    /// Sketch compactions performed while aggregating.
    pub compactions: u64,
}

/// Sketch-mode report envelope: what `fleet --report-mode sketch --json` and
/// a sketch-mode `fleet-merge --json` print — the aggregate report together
/// with the sketch's error-bound annotation, so a consumer can never mistake
/// sketched percentiles for exact ones. (Exact-mode output stays a bare
/// [`FleetReport`], byte-identical to every previous release.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SketchedReport {
    /// Accuracy and footprint of the sketch aggregation.
    pub sketch: SketchInfo,
    /// The aggregate report; its three [`DistributionSummary`] percentiles
    /// are sketch estimates within [`SketchInfo::max_rank_error`] ranks.
    pub report: FleetReport,
}

/// Distilled outcome of one device's simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Device id within the fleet.
    pub device_id: u64,
    /// Number of windows the device processed.
    pub windows: usize,
    /// Realized MAE over the device's windows, in BPM.
    pub mae_bpm: f32,
    /// Average smartwatch energy per prediction.
    pub avg_watch_energy: Energy,
    /// Average phone energy per prediction.
    pub avg_phone_energy: Energy,
    /// Fraction of windows offloaded to the phone.
    pub offload_fraction: f32,
    /// Fraction of windows handled by the simple model.
    pub simple_fraction: f32,
    /// Fraction of windows processed while the link was down.
    pub disconnected_fraction: f32,
    /// Projected battery life at the device's average power, in hours.
    pub battery_life_hours: f64,
    /// The constraint the device ran under.
    pub constraint: UserConstraint,
    /// The energy accounting the device ran under.
    pub accounting: EnergyAccounting,
    /// Whether the realized MAE/energy exceeded the (soft) constraint.
    pub constraint_violated: bool,
}

/// Order statistics of one per-device quantity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributionSummary {
    /// Smallest value.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Largest value.
    pub max: f64,
}

impl DistributionSummary {
    /// Zero-based index of the nearest-rank `p`th percentile in a sorted
    /// sample of `n` values, computed exactly: `ceil(p * n / 100) - 1`.
    ///
    /// The arithmetic is pure integer math (`div_ceil`), never floating
    /// point. The previous `(p / 100.0 * n as f64).ceil()` formulation is an
    /// off-by-one trap: whenever the inexact double `p / 100.0` rounds *up*
    /// (e.g. `7.0 / 100.0`), the product for an exact-rank sample size lands
    /// epsilon above the true integer (`0.07 * 100 == 7.000000000000001`)
    /// and `ceil` overshoots the rank by one whole sample.
    ///
    /// # Panics
    ///
    /// Debug-asserts `1 <= p <= 100` and `n > 0`; in release builds the
    /// result is clamped into `0..n`.
    pub fn nearest_rank_index(p: u32, n: usize) -> usize {
        debug_assert!((1..=100).contains(&p), "percentile {p} outside 1..=100");
        debug_assert!(n > 0, "nearest rank of an empty sample");
        let rank = (u128::from(p) * n as u128).div_ceil(100).max(1);
        usize::try_from(rank - 1)
            .unwrap_or(usize::MAX)
            .min(n.saturating_sub(1))
    }

    /// Nearest-rank `p`th percentile of a sample **sorted** with
    /// [`f64::total_cmp`]; `None` for an empty sample.
    pub fn percentile_sorted(sorted: &[f64], p: u32) -> Option<f64> {
        if sorted.is_empty() {
            return None;
        }
        Some(sorted[Self::nearest_rank_index(p, sorted.len())])
    }

    /// Summarizes a non-empty sample; `None` for an empty one.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |p: u32| sorted[Self::nearest_rank_index(p, sorted.len())];
        Some(Self {
            min: sorted[0],
            mean: values.iter().sum::<f64>() / values.len() as f64,
            p50: rank(50),
            p90: rank(90),
            p99: rank(99),
            max: sorted[sorted.len() - 1],
        })
    }
}

/// The all-zero summary reported for quantities of an empty fleet.
const EMPTY_SUMMARY: DistributionSummary = DistributionSummary {
    min: 0.0,
    mean: 0.0,
    p50: 0.0,
    p90: 0.0,
    p99: 0.0,
    max: 0.0,
};

/// Offload-histogram bin of one device's offload fraction.
///
/// Every non-fraction is handled explicitly instead of relying on the silent
/// `as usize` saturation: a fraction outside `[0, 1]` — NaN, negative, or
/// infinite (impossible for reports produced by the executor, whose
/// fractions are ratios of window counts) — trips a debug assertion, and in
/// release builds is deterministically clamped: NaN and negatives into bin
/// 0, values at or above 1 into the last bin — the same "make bad floats a
/// loud, deterministic policy" treatment the decision engine applies with
/// `total_cmp`.
fn offload_bin(fraction: f32) -> usize {
    debug_assert!(
        fraction.is_finite() && (0.0..=1.0).contains(&fraction),
        "device offload_fraction {fraction} outside [0, 1]; \
         upstream fraction accounting is broken"
    );
    if fraction.is_nan() || fraction < 0.0 {
        return 0;
    }
    if fraction >= 1.0 {
        return OFFLOAD_HISTOGRAM_BINS - 1;
    }
    ((f64::from(fraction) * OFFLOAD_HISTOGRAM_BINS as f64) as usize).min(OFFLOAD_HISTOGRAM_BINS - 1)
}

/// Streaming fleet aggregation: folds [`DeviceReport`]s one at a time — in
/// device-id order — and finalizes into a [`FleetReport`] **byte-identical**
/// to [`FleetReport::from_devices`] over the same sequence (which is itself
/// implemented as a fold through this type, so the two can never drift).
///
/// The accumulator keeps only what the final report needs — in
/// [`ReportMode::Exact`] three `f64` order-statistic samples per device
/// (MAE, watch energy, battery life), in [`ReportMode::Sketch`] three
/// O(log devices) [`QuantileSketch`]es — plus fixed-size running reductions,
/// never the `DeviceReport`s themselves. That is what lets [`crate::merge`]
/// consume shard artifacts incrementally: each artifact is folded and
/// dropped, and peak memory is one artifact plus the retained samples
/// instead of every artifact at once.
///
/// All floating-point reductions happen in push order, so feeding devices in
/// id order reproduces the fixed reduction order the byte-identity guarantee
/// of sharded execution rests on. Sketch mode is *additionally* invariant to
/// how the id range was tiled: sketches are keyed to absolute device ids, so
/// merged shard sketches canonicalize to the single-process state byte for
/// byte (see [`crate::sketch`]).
#[derive(Debug, Clone)]
pub struct FleetAccumulator {
    samples: SampleStore,
    total_windows: usize,
    offloaded_windows: f64,
    disconnected_windows: f64,
    phone_energy_sum: f64,
    offloading_devices: usize,
    offload_histogram: Vec<usize>,
    constraint_violations: usize,
    constraint_mix: BTreeMap<String, usize>,
    accounting_mix: BTreeMap<String, usize>,
}

/// Per-quantity sample storage of one [`FleetAccumulator`], switched by
/// [`ReportMode`].
#[derive(Debug, Clone)]
enum SampleStore {
    /// Full order-statistic samples: O(devices) memory, exact percentiles.
    Exact {
        maes: Vec<f64>,
        watch_energies: Vec<f64>,
        battery_lives: Vec<f64>,
    },
    /// Quantile sketches: O(log devices) memory, bounded rank error.
    Sketch {
        maes: QuantileSketch,
        watch_energies: QuantileSketch,
        battery_lives: QuantileSketch,
    },
}

impl SampleStore {
    fn new(mode: ReportMode, sketch_capacity: usize) -> Self {
        match mode {
            ReportMode::Exact => Self::Exact {
                maes: Vec::new(),
                watch_energies: Vec::new(),
                battery_lives: Vec::new(),
            },
            ReportMode::Sketch => Self::Sketch {
                maes: QuantileSketch::with_capacity(sketch_capacity),
                watch_energies: QuantileSketch::with_capacity(sketch_capacity),
                battery_lives: QuantileSketch::with_capacity(sketch_capacity),
            },
        }
    }
}

impl FleetAccumulator {
    /// Creates an empty exact-mode accumulator; finalizing it immediately
    /// yields the same all-zero report as `FleetReport::from_devices(&[])`.
    pub fn new() -> Self {
        Self::with_mode(ReportMode::Exact)
    }

    /// Creates an empty accumulator in the given [`ReportMode`] (sketch mode
    /// at [`crate::sketch::DEFAULT_SKETCH_CAPACITY`]).
    pub fn with_mode(mode: ReportMode) -> Self {
        Self::build(mode, crate::sketch::DEFAULT_SKETCH_CAPACITY)
    }

    /// Creates an empty sketch-mode accumulator with an explicit sketch
    /// capacity — for tests and accuracy/memory tuning. All accumulators
    /// whose outputs will ever be compared byte-for-byte must share one
    /// capacity (the production paths always use the default).
    pub fn sketch_with_capacity(capacity: usize) -> Self {
        Self::build(ReportMode::Sketch, capacity)
    }

    fn build(mode: ReportMode, sketch_capacity: usize) -> Self {
        Self {
            samples: SampleStore::new(mode, sketch_capacity),
            total_windows: 0,
            offloaded_windows: 0.0,
            disconnected_windows: 0.0,
            phone_energy_sum: 0.0,
            offloading_devices: 0,
            offload_histogram: vec![0; OFFLOAD_HISTOGRAM_BINS],
            constraint_violations: 0,
            constraint_mix: BTreeMap::new(),
            accounting_mix: BTreeMap::new(),
        }
    }

    /// The aggregation mode the accumulator was created in.
    pub fn mode(&self) -> ReportMode {
        match &self.samples {
            SampleStore::Exact { .. } => ReportMode::Exact,
            SampleStore::Sketch { .. } => ReportMode::Sketch,
        }
    }

    /// The sketch annotation of the devices folded so far; `None` in exact
    /// mode. Read it before [`FleetAccumulator::finalize`], which consumes
    /// the accumulator.
    pub fn sketch_info(&self) -> Option<SketchInfo> {
        match &self.samples {
            SampleStore::Exact { .. } => None,
            SampleStore::Sketch {
                maes,
                watch_energies,
                battery_lives,
            } => {
                let max_rank_error = maes
                    .rank_error_bound()
                    .max(watch_energies.rank_error_bound())
                    .max(battery_lives.rank_error_bound());
                let count = maes.count();
                Some(SketchInfo {
                    max_rank_error,
                    rank_error_fraction: if count == 0 {
                        0.0
                    } else {
                        max_rank_error as f64 / count as f64
                    },
                    retained_samples: maes.retained()
                        + watch_energies.retained()
                        + battery_lives.retained(),
                    compactions: maes.compactions()
                        + watch_energies.compactions()
                        + battery_lives.compactions(),
                })
            }
        }
    }

    /// Number of devices folded so far.
    pub fn devices(&self) -> usize {
        match &self.samples {
            SampleStore::Exact { maes, .. } => maes.len(),
            SampleStore::Sketch { maes, .. } => usize::try_from(maes.count()).unwrap_or(usize::MAX),
        }
    }

    /// Total windows across the devices folded so far.
    pub fn total_windows(&self) -> usize {
        self.total_windows
    }

    /// Folds one device into the aggregate. Callers must push devices in
    /// id order to preserve the byte-identity of the finalized report (in
    /// sketch mode each device id must additionally be pushed at most once —
    /// ids are the sketches' dyadic coordinates).
    pub fn push(&mut self, device: &DeviceReport) {
        match &mut self.samples {
            SampleStore::Exact {
                maes,
                watch_energies,
                battery_lives,
            } => {
                maes.push(f64::from(device.mae_bpm));
                watch_energies.push(device.avg_watch_energy.as_microjoules());
                battery_lives.push(device.battery_life_hours);
            }
            SampleStore::Sketch {
                maes,
                watch_energies,
                battery_lives,
            } => {
                maes.insert(device.device_id, f64::from(device.mae_bpm));
                watch_energies.insert(device.device_id, device.avg_watch_energy.as_microjoules());
                battery_lives.insert(device.device_id, device.battery_life_hours);
            }
        }
        self.total_windows += device.windows;
        self.offloaded_windows += f64::from(device.offload_fraction) * device.windows as f64;
        self.disconnected_windows +=
            f64::from(device.disconnected_fraction) * device.windows as f64;
        if device.offload_fraction > 0.0 {
            self.offloading_devices += 1;
            self.phone_energy_sum += device.avg_phone_energy.as_microjoules();
        }
        self.offload_histogram[offload_bin(device.offload_fraction)] += 1;
        if device.constraint_violated {
            self.constraint_violations += 1;
        }
        let constraint_key = match device.constraint {
            UserConstraint::MaxMae(_) => "max_mae",
            UserConstraint::MaxEnergy(_) => "max_energy",
        };
        *self
            .constraint_mix
            .entry(constraint_key.to_string())
            .or_insert(0) += 1;
        *self
            .accounting_mix
            .entry(format!("{:?}", device.accounting))
            .or_insert(0) += 1;
    }

    /// Finalizes the aggregate into the population report.
    ///
    /// In sketch mode the three [`DistributionSummary`] percentiles are
    /// sketch estimates (exact `min`/`max`, canonical `mean`) within the
    /// rank-error bound surfaced by [`FleetAccumulator::sketch_info`], and
    /// the sketches' compaction/footprint telemetry is emitted to the active
    /// registry. Both modes time the aggregation into the shared
    /// [`telemetry::STAGE_DURATION_SERIES`] family (`stage="aggregate"`,
    /// observational — never embedded in byte-stable artifacts).
    pub fn finalize(self) -> FleetReport {
        let registry = telemetry::active();
        let _timer = registry
            .histogram(
                telemetry::STAGE_DURATION_SERIES,
                &[("stage", "aggregate")],
                telemetry::STAGE_DURATION_HELP,
                Stability::Observational,
                &telemetry::DURATION_NS_BOUNDS,
            )
            .expect("aggregate stage histogram registration cannot fail")
            .start_timer();
        if let Some(info) = self.sketch_info() {
            registry
                .counter(
                    SKETCH_COMPACTIONS_SERIES,
                    &[],
                    SKETCH_COMPACTIONS_HELP,
                    Stability::Observational,
                )
                .expect("sketch counter registration cannot fail")
                .add(info.compactions);
            registry
                .gauge(
                    SKETCH_RETAINED_SERIES,
                    &[],
                    SKETCH_RETAINED_HELP,
                    Stability::Observational,
                )
                .expect("sketch gauge registration cannot fail")
                .set_max(i64::try_from(info.retained_samples).unwrap_or(i64::MAX));
        }
        let devices = self.devices();
        let (mae_bpm, watch_energy_uj, battery_life_hours) = match &self.samples {
            SampleStore::Exact {
                maes,
                watch_energies,
                battery_lives,
            } => (
                DistributionSummary::from_values(maes),
                DistributionSummary::from_values(watch_energies),
                DistributionSummary::from_values(battery_lives),
            ),
            SampleStore::Sketch {
                maes,
                watch_energies,
                battery_lives,
            } => (
                maes.summary(),
                watch_energies.summary(),
                battery_lives.summary(),
            ),
        };
        let mut report = FleetReport {
            devices,
            total_windows: self.total_windows,
            mae_bpm: mae_bpm.unwrap_or(EMPTY_SUMMARY),
            watch_energy_uj: watch_energy_uj.unwrap_or(EMPTY_SUMMARY),
            battery_life_hours: battery_life_hours.unwrap_or(EMPTY_SUMMARY),
            offload_histogram: self.offload_histogram,
            offloaded_window_share: 0.0,
            disconnected_window_share: 0.0,
            avg_phone_energy_uj: 0.0,
            constraint_violations: self.constraint_violations,
            constraint_mix: self.constraint_mix,
            accounting_mix: self.accounting_mix,
        };
        if report.total_windows > 0 {
            report.offloaded_window_share = self.offloaded_windows / report.total_windows as f64;
            report.disconnected_window_share =
                self.disconnected_windows / report.total_windows as f64;
        }
        if self.offloading_devices > 0 {
            report.avg_phone_energy_uj = self.phone_energy_sum / self.offloading_devices as f64;
        }
        report
    }
}

impl Default for FleetAccumulator {
    fn default() -> Self {
        Self::new()
    }
}

/// Population-level statistics of one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Number of simulated devices.
    pub devices: usize,
    /// Total windows processed across the fleet.
    pub total_windows: usize,
    /// Distribution of per-device MAE, in BPM.
    pub mae_bpm: DistributionSummary,
    /// Distribution of per-device average smartwatch energy, in µJ per
    /// prediction.
    pub watch_energy_uj: DistributionSummary,
    /// Distribution of per-device projected battery life, in hours.
    pub battery_life_hours: DistributionSummary,
    /// Histogram of per-device offload fractions over
    /// [`OFFLOAD_HISTOGRAM_BINS`] equal-width bins spanning `[0, 1]`.
    pub offload_histogram: Vec<usize>,
    /// Window-weighted share of all fleet windows that were offloaded.
    pub offloaded_window_share: f64,
    /// Window-weighted share of all fleet windows with the link down.
    pub disconnected_window_share: f64,
    /// Average phone energy among devices that offloaded at least one
    /// window, in µJ per prediction (zero when no device offloads).
    pub avg_phone_energy_uj: f64,
    /// Devices whose realized behaviour exceeded their soft constraint.
    pub constraint_violations: usize,
    /// Device counts by constraint kind (`"max_mae"` / `"max_energy"`).
    pub constraint_mix: BTreeMap<String, usize>,
    /// Device counts by energy-accounting mode.
    pub accounting_mix: BTreeMap<String, usize>,
}

impl FleetReport {
    /// Aggregates device reports (assumed sorted by device id, as produced by
    /// the executor). Returns an all-zero report for an empty slice.
    ///
    /// Implemented as a fold through [`FleetAccumulator`]: the batch and the
    /// streaming aggregation paths are one code path, so their reports are
    /// byte-identical by construction (and locked in by the
    /// `tests/accumulator.rs` property suite).
    pub fn from_devices(devices: &[DeviceReport]) -> Self {
        Self::from_devices_with_mode(devices, ReportMode::Exact)
    }

    /// [`FleetReport::from_devices`] in an explicit [`ReportMode`]; sketch
    /// mode aggregates through [`QuantileSketch`]es at the default capacity,
    /// so its summaries match any sharded sketch-mode aggregation of the
    /// same devices byte for byte.
    pub fn from_devices_with_mode(devices: &[DeviceReport], mode: ReportMode) -> Self {
        let mut accumulator = FleetAccumulator::with_mode(mode);
        for device in devices {
            accumulator.push(device);
        }
        accumulator.finalize()
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet of {} devices, {} windows",
            self.devices, self.total_windows
        )?;
        let row = |name: &str, d: &DistributionSummary, unit: &str| {
            format!(
                "  {name:<22} p50 {:>9.2} {unit}  p90 {:>9.2} {unit}  p99 {:>9.2} {unit}  \
                 (min {:.2}, mean {:.2}, max {:.2})",
                d.p50, d.p90, d.p99, d.min, d.mean, d.max
            )
        };
        writeln!(f, "{}", row("MAE", &self.mae_bpm, "BPM"))?;
        writeln!(f, "{}", row("watch energy", &self.watch_energy_uj, "uJ"))?;
        writeln!(f, "{}", row("battery life", &self.battery_life_hours, "h"))?;
        writeln!(
            f,
            "  offloaded / link-down  {:.1} % / {:.1} % of windows; phone avg {:.1} uJ/pred",
            self.offloaded_window_share * 100.0,
            self.disconnected_window_share * 100.0,
            self.avg_phone_energy_uj
        )?;
        write!(f, "  offload histogram      ")?;
        for count in &self.offload_histogram {
            write!(f, "{count:>6}")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "  constraints            {:?} ({} violated)",
            self.constraint_mix, self.constraint_violations
        )?;
        write!(f, "  accounting             {:?}", self.accounting_mix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(id: u64, mae: f32, energy_uj: f64, offload: f32, violated: bool) -> DeviceReport {
        DeviceReport {
            device_id: id,
            windows: 50,
            mae_bpm: mae,
            avg_watch_energy: Energy::from_microjoules(energy_uj),
            avg_phone_energy: Energy::from_microjoules(energy_uj * 10.0),
            offload_fraction: offload,
            simple_fraction: 0.5,
            disconnected_fraction: 0.1,
            battery_life_hours: 400.0 / (1.0 + f64::from(mae)),
            constraint: UserConstraint::MaxMae(6.0),
            accounting: EnergyAccounting::BleOnly,
            constraint_violated: violated,
        }
    }

    #[test]
    fn distribution_summary_orders_percentiles() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let d = DistributionSummary::from_values(&values).unwrap();
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 100.0);
        assert_eq!(d.p50, 50.0);
        assert_eq!(d.p90, 90.0);
        assert_eq!(d.p99, 99.0);
        assert!((d.mean - 50.5).abs() < 1e-12);
        assert!(DistributionSummary::from_values(&[]).is_none());
    }

    #[test]
    fn p90_of_10_and_20_devices_is_the_nearest_rank_not_the_max() {
        // Exact-rank regression: ceil(90 * 10 / 100) = 9 -> the 9th sorted
        // value, never the max. A float formulation that rounds the product
        // up by one epsilon would return 10.0 (n=10) / 20.0 (n=20) here.
        let values: Vec<f64> = (1..=10).map(f64::from).collect();
        let d = DistributionSummary::from_values(&values).unwrap();
        assert_eq!(d.p90, 9.0);
        assert_eq!(d.p50, 5.0);
        assert_eq!(d.p99, 10.0);
        let values: Vec<f64> = (1..=20).map(f64::from).collect();
        let d = DistributionSummary::from_values(&values).unwrap();
        assert_eq!(d.p90, 18.0);
        assert_eq!(d.p50, 10.0);
        assert_eq!(d.p99, 20.0);
    }

    #[test]
    fn nearest_rank_never_overshoots_where_the_float_formula_does() {
        // The old `(p / 100.0 * n as f64).ceil()` rank overshoots whenever
        // `p / 100.0` rounds up and `p * n / 100` is an exact integer:
        // 0.07 * 100 evaluates to 7.000000000000001, so ceil() lands on
        // rank 8 instead of 7. The integer rank must not.
        for (p, n, expected_index) in [(7u32, 100usize, 6usize), (7, 200, 13), (14, 50, 6)] {
            let float_index = ((f64::from(p) / 100.0 * n as f64).ceil() as usize).max(1) - 1;
            assert_eq!(
                float_index,
                expected_index + 1,
                "case ({p}, {n}) no longer exhibits the float overshoot"
            );
            assert_eq!(
                DistributionSummary::nearest_rank_index(p, n),
                expected_index
            );
        }
        // Sanity across the summary's own percentiles.
        assert_eq!(DistributionSummary::nearest_rank_index(50, 10), 4);
        assert_eq!(DistributionSummary::nearest_rank_index(90, 10), 8);
        assert_eq!(DistributionSummary::nearest_rank_index(99, 10), 9);
        assert_eq!(DistributionSummary::nearest_rank_index(100, 10), 9);
        assert_eq!(DistributionSummary::nearest_rank_index(1, 1), 0);
    }

    #[test]
    fn percentile_sorted_matches_from_values() {
        let values: Vec<f64> = (1..=64).map(f64::from).collect();
        let d = DistributionSummary::from_values(&values).unwrap();
        assert_eq!(
            DistributionSummary::percentile_sorted(&values, 50),
            Some(d.p50)
        );
        assert_eq!(
            DistributionSummary::percentile_sorted(&values, 90),
            Some(d.p90)
        );
        assert_eq!(
            DistributionSummary::percentile_sorted(&values, 99),
            Some(d.p99)
        );
        assert_eq!(DistributionSummary::percentile_sorted(&[], 50), None);
    }

    #[test]
    fn nan_offload_fraction_is_handled_explicitly() {
        // Real fractions bin as before.
        assert_eq!(offload_bin(0.0), 0);
        assert_eq!(offload_bin(0.05), 0);
        assert_eq!(offload_bin(0.95), 9);
        assert_eq!(offload_bin(1.0), OFFLOAD_HISTOGRAM_BINS - 1);
        // Any non-fraction is a loud debug assertion; the release-mode
        // policy clamps deterministically (NaN and negatives into bin 0,
        // overshoots into the last bin) instead of the silent `as usize`
        // cast.
        for (bad, release_bin) in [
            (f32::NAN, 0),
            (-0.5, 0),
            (f32::NEG_INFINITY, 0),
            (f32::INFINITY, OFFLOAD_HISTOGRAM_BINS - 1),
            (1.5, OFFLOAD_HISTOGRAM_BINS - 1),
        ] {
            let bin = std::panic::catch_unwind(|| offload_bin(bad));
            if cfg!(debug_assertions) {
                assert!(
                    bin.is_err(),
                    "offload fraction {bad} must trip the debug assertion"
                );
            } else {
                assert_eq!(bin.unwrap(), release_bin, "offload fraction {bad}");
            }
        }
    }

    #[test]
    fn report_mode_names_round_trip() {
        for name in ReportMode::NAMES {
            assert_eq!(ReportMode::from_name(name).unwrap().name(), name);
        }
        assert_eq!(ReportMode::from_name("nope"), None);
        assert_eq!(ReportMode::default(), ReportMode::Exact);
        // The CLI-facing serde form is the plain variant name.
        let json = serde_json::to_string(&ReportMode::Sketch).unwrap();
        assert_eq!(json, "\"Sketch\"");
        let back: ReportMode = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ReportMode::Sketch);
    }

    #[test]
    fn sketch_mode_accumulator_matches_its_batch_fold_byte_for_byte() {
        let devices: Vec<DeviceReport> = (0..600)
            .map(|i| {
                device(
                    i,
                    3.0 + (i % 37) as f32,
                    250.0 + i as f64,
                    (i % 10) as f32 / 10.0,
                    i % 5 == 0,
                )
            })
            .collect();
        let batch = FleetReport::from_devices_with_mode(&devices, ReportMode::Sketch);
        let mut accumulator = FleetAccumulator::with_mode(ReportMode::Sketch);
        assert_eq!(accumulator.mode(), ReportMode::Sketch);
        for d in &devices {
            accumulator.push(d);
        }
        assert_eq!(accumulator.devices(), devices.len());
        let info = accumulator.sketch_info().unwrap();
        // 600 devices over capacity-256 blocks: two full blocks compacted
        // once, the rest raw.
        assert_eq!(info.compactions, 3);
        assert!(info.retained_samples < 3 * devices.len());
        let streamed = accumulator.finalize();
        assert_eq!(streamed, batch);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&batch).unwrap()
        );
        // Everything outside the sketched percentiles is exact and
        // identical to exact mode.
        let exact = FleetReport::from_devices(&devices);
        assert_eq!(streamed.total_windows, exact.total_windows);
        assert_eq!(streamed.offload_histogram, exact.offload_histogram);
        assert_eq!(streamed.constraint_mix, exact.constraint_mix);
        assert_eq!(streamed.mae_bpm.min, exact.mae_bpm.min);
        assert_eq!(streamed.mae_bpm.max, exact.mae_bpm.max);
    }

    #[test]
    fn exact_mode_reports_no_sketch_info() {
        let accumulator = FleetAccumulator::new();
        assert_eq!(accumulator.mode(), ReportMode::Exact);
        assert_eq!(accumulator.sketch_info(), None);
    }

    #[test]
    fn empty_sketch_accumulator_finalizes_to_the_all_zero_report() {
        let accumulator = FleetAccumulator::with_mode(ReportMode::Sketch);
        let info = accumulator.sketch_info().unwrap();
        assert_eq!(info.max_rank_error, 0);
        assert_eq!(info.rank_error_fraction, 0.0);
        assert_eq!(info.retained_samples, 0);
        let report = accumulator.finalize();
        assert_eq!(report, FleetReport::from_devices(&[]));
    }

    #[test]
    fn sketched_report_envelope_round_trips() {
        let devices = vec![device(0, 5.0, 400.0, 0.5, false)];
        let mut accumulator = FleetAccumulator::with_mode(ReportMode::Sketch);
        for d in &devices {
            accumulator.push(d);
        }
        let envelope = SketchedReport {
            sketch: accumulator.sketch_info().unwrap(),
            report: accumulator.finalize(),
        };
        let json = serde_json::to_string(&envelope).unwrap();
        let back: SketchedReport = serde_json::from_str(&json).unwrap();
        assert_eq!(envelope, back);
    }

    #[test]
    fn accumulator_matches_from_devices_byte_for_byte() {
        let devices: Vec<DeviceReport> = (0..23)
            .map(|i| {
                device(
                    i,
                    3.0 + i as f32,
                    250.0 + i as f64,
                    i as f32 / 23.0,
                    i % 5 == 0,
                )
            })
            .collect();
        let batch = FleetReport::from_devices(&devices);
        let mut accumulator = FleetAccumulator::new();
        for d in &devices {
            accumulator.push(d);
        }
        assert_eq!(accumulator.devices(), devices.len());
        assert_eq!(accumulator.total_windows(), batch.total_windows);
        let streamed = accumulator.finalize();
        assert_eq!(streamed, batch);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&batch).unwrap()
        );
    }

    #[test]
    fn empty_accumulator_finalizes_to_the_all_zero_report() {
        let report = FleetAccumulator::default().finalize();
        assert_eq!(report, FleetReport::from_devices(&[]));
        assert_eq!(report.devices, 0);
        assert_eq!(report.offload_histogram, vec![0; OFFLOAD_HISTOGRAM_BINS]);
    }

    #[test]
    fn fleet_report_aggregates_devices() {
        let devices: Vec<DeviceReport> = (0..10)
            .map(|i| device(i, 4.0 + i as f32, 300.0 + i as f64, i as f32 / 10.0, i == 9))
            .collect();
        let report = FleetReport::from_devices(&devices);
        assert_eq!(report.devices, 10);
        assert_eq!(report.total_windows, 500);
        assert_eq!(report.constraint_violations, 1);
        assert_eq!(report.offload_histogram.iter().sum::<usize>(), 10);
        assert_eq!(report.constraint_mix.get("max_mae"), Some(&10));
        assert!(report.mae_bpm.p50 >= report.mae_bpm.min);
        assert!(report.mae_bpm.p99 <= report.mae_bpm.max);
        assert!((report.disconnected_window_share - 0.1).abs() < 1e-6);
    }

    #[test]
    fn empty_fleet_reports_zeros() {
        let report = FleetReport::from_devices(&[]);
        assert_eq!(report.devices, 0);
        assert_eq!(report.total_windows, 0);
        assert_eq!(report.offload_histogram.len(), OFFLOAD_HISTOGRAM_BINS);
    }

    #[test]
    fn display_mentions_key_quantities() {
        let devices = vec![device(0, 5.0, 400.0, 0.5, false)];
        let text = FleetReport::from_devices(&devices).to_string();
        assert!(text.contains("MAE"));
        assert!(text.contains("battery life"));
        assert!(text.contains("offload histogram"));
    }

    #[test]
    fn serde_round_trip() {
        let devices = vec![
            device(0, 5.0, 400.0, 0.5, true),
            device(1, 6.0, 500.0, 0.9, false),
        ];
        let report = FleetReport::from_devices(&devices);
        let json = serde_json::to_string(&report).unwrap();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        let device_json = serde_json::to_string(&devices).unwrap();
        let back: Vec<DeviceReport> = serde_json::from_str(&device_json).unwrap();
        assert_eq!(devices, back);
    }
}
