//! Aggregate fleet reporting.
//!
//! [`DeviceReport`] is the distilled outcome of one device's run;
//! [`FleetReport`] folds a fleet of them into the population statistics an
//! operator watches: MAE percentiles, energy and projected battery-life
//! distributions, the offload-fraction histogram (how much work the phones
//! absorb) and constraint-violation counts. Aggregation iterates devices in
//! id order with fixed-order floating-point reductions, so a fleet's report
//! is byte-identical no matter how many threads produced the device reports —
//! and, because [`crate::merge::merge`] feeds the same id-ordered device
//! slice through this same function, no matter how many *processes or hosts*
//! produced them either.

use std::collections::BTreeMap;

use chris_core::config::EnergyAccounting;
use chris_core::decision::UserConstraint;
use hw_sim::units::Energy;
use serde::{Deserialize, Serialize};

/// Number of bins of the offload-fraction histogram (equal width over
/// `[0, 1]`).
pub const OFFLOAD_HISTOGRAM_BINS: usize = 10;

/// Distilled outcome of one device's simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Device id within the fleet.
    pub device_id: u64,
    /// Number of windows the device processed.
    pub windows: usize,
    /// Realized MAE over the device's windows, in BPM.
    pub mae_bpm: f32,
    /// Average smartwatch energy per prediction.
    pub avg_watch_energy: Energy,
    /// Average phone energy per prediction.
    pub avg_phone_energy: Energy,
    /// Fraction of windows offloaded to the phone.
    pub offload_fraction: f32,
    /// Fraction of windows handled by the simple model.
    pub simple_fraction: f32,
    /// Fraction of windows processed while the link was down.
    pub disconnected_fraction: f32,
    /// Projected battery life at the device's average power, in hours.
    pub battery_life_hours: f64,
    /// The constraint the device ran under.
    pub constraint: UserConstraint,
    /// The energy accounting the device ran under.
    pub accounting: EnergyAccounting,
    /// Whether the realized MAE/energy exceeded the (soft) constraint.
    pub constraint_violated: bool,
}

/// Order statistics of one per-device quantity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributionSummary {
    /// Smallest value.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 90th percentile (nearest-rank).
    pub p90: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
    /// Largest value.
    pub max: f64,
}

impl DistributionSummary {
    /// Summarizes a non-empty sample; `None` for an empty one.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = |p: f64| -> f64 {
            // Nearest-rank percentile on the sorted sample.
            let index = ((p / 100.0 * sorted.len() as f64).ceil() as usize).max(1) - 1;
            sorted[index.min(sorted.len() - 1)]
        };
        Some(Self {
            min: sorted[0],
            mean: values.iter().sum::<f64>() / values.len() as f64,
            p50: rank(50.0),
            p90: rank(90.0),
            p99: rank(99.0),
            max: sorted[sorted.len() - 1],
        })
    }
}

/// Population-level statistics of one fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Number of simulated devices.
    pub devices: usize,
    /// Total windows processed across the fleet.
    pub total_windows: usize,
    /// Distribution of per-device MAE, in BPM.
    pub mae_bpm: DistributionSummary,
    /// Distribution of per-device average smartwatch energy, in µJ per
    /// prediction.
    pub watch_energy_uj: DistributionSummary,
    /// Distribution of per-device projected battery life, in hours.
    pub battery_life_hours: DistributionSummary,
    /// Histogram of per-device offload fractions over
    /// [`OFFLOAD_HISTOGRAM_BINS`] equal-width bins spanning `[0, 1]`.
    pub offload_histogram: Vec<usize>,
    /// Window-weighted share of all fleet windows that were offloaded.
    pub offloaded_window_share: f64,
    /// Window-weighted share of all fleet windows with the link down.
    pub disconnected_window_share: f64,
    /// Average phone energy among devices that offloaded at least one
    /// window, in µJ per prediction (zero when no device offloads).
    pub avg_phone_energy_uj: f64,
    /// Devices whose realized behaviour exceeded their soft constraint.
    pub constraint_violations: usize,
    /// Device counts by constraint kind (`"max_mae"` / `"max_energy"`).
    pub constraint_mix: BTreeMap<String, usize>,
    /// Device counts by energy-accounting mode.
    pub accounting_mix: BTreeMap<String, usize>,
}

impl FleetReport {
    /// Aggregates device reports (assumed sorted by device id, as produced by
    /// the executor). Returns an all-zero report for an empty slice.
    pub fn from_devices(devices: &[DeviceReport]) -> Self {
        let empty = DistributionSummary {
            min: 0.0,
            mean: 0.0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            max: 0.0,
        };
        let mut report = Self {
            devices: devices.len(),
            total_windows: 0,
            mae_bpm: empty,
            watch_energy_uj: empty,
            battery_life_hours: empty,
            offload_histogram: vec![0; OFFLOAD_HISTOGRAM_BINS],
            offloaded_window_share: 0.0,
            disconnected_window_share: 0.0,
            avg_phone_energy_uj: 0.0,
            constraint_violations: 0,
            constraint_mix: BTreeMap::new(),
            accounting_mix: BTreeMap::new(),
        };
        if devices.is_empty() {
            return report;
        }

        let maes: Vec<f64> = devices.iter().map(|d| f64::from(d.mae_bpm)).collect();
        let energies: Vec<f64> = devices
            .iter()
            .map(|d| d.avg_watch_energy.as_microjoules())
            .collect();
        let lives: Vec<f64> = devices.iter().map(|d| d.battery_life_hours).collect();
        report.mae_bpm = DistributionSummary::from_values(&maes).unwrap_or(empty);
        report.watch_energy_uj = DistributionSummary::from_values(&energies).unwrap_or(empty);
        report.battery_life_hours = DistributionSummary::from_values(&lives).unwrap_or(empty);

        let mut offloaded_windows = 0.0f64;
        let mut disconnected_windows = 0.0f64;
        let mut phone_energy_sum = 0.0f64;
        let mut offloading_devices = 0usize;
        for device in devices {
            report.total_windows += device.windows;
            offloaded_windows += f64::from(device.offload_fraction) * device.windows as f64;
            disconnected_windows += f64::from(device.disconnected_fraction) * device.windows as f64;
            if device.offload_fraction > 0.0 {
                offloading_devices += 1;
                phone_energy_sum += device.avg_phone_energy.as_microjoules();
            }
            let bin = ((f64::from(device.offload_fraction) * OFFLOAD_HISTOGRAM_BINS as f64)
                as usize)
                .min(OFFLOAD_HISTOGRAM_BINS - 1);
            report.offload_histogram[bin] += 1;
            if device.constraint_violated {
                report.constraint_violations += 1;
            }
            let constraint_key = match device.constraint {
                UserConstraint::MaxMae(_) => "max_mae",
                UserConstraint::MaxEnergy(_) => "max_energy",
            };
            *report
                .constraint_mix
                .entry(constraint_key.to_string())
                .or_insert(0) += 1;
            *report
                .accounting_mix
                .entry(format!("{:?}", device.accounting))
                .or_insert(0) += 1;
        }
        if report.total_windows > 0 {
            report.offloaded_window_share = offloaded_windows / report.total_windows as f64;
            report.disconnected_window_share = disconnected_windows / report.total_windows as f64;
        }
        if offloading_devices > 0 {
            report.avg_phone_energy_uj = phone_energy_sum / offloading_devices as f64;
        }
        report
    }
}

impl std::fmt::Display for FleetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "fleet of {} devices, {} windows",
            self.devices, self.total_windows
        )?;
        let row = |name: &str, d: &DistributionSummary, unit: &str| {
            format!(
                "  {name:<22} p50 {:>9.2} {unit}  p90 {:>9.2} {unit}  p99 {:>9.2} {unit}  \
                 (min {:.2}, mean {:.2}, max {:.2})",
                d.p50, d.p90, d.p99, d.min, d.mean, d.max
            )
        };
        writeln!(f, "{}", row("MAE", &self.mae_bpm, "BPM"))?;
        writeln!(f, "{}", row("watch energy", &self.watch_energy_uj, "uJ"))?;
        writeln!(f, "{}", row("battery life", &self.battery_life_hours, "h"))?;
        writeln!(
            f,
            "  offloaded / link-down  {:.1} % / {:.1} % of windows; phone avg {:.1} uJ/pred",
            self.offloaded_window_share * 100.0,
            self.disconnected_window_share * 100.0,
            self.avg_phone_energy_uj
        )?;
        write!(f, "  offload histogram      ")?;
        for count in &self.offload_histogram {
            write!(f, "{count:>6}")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "  constraints            {:?} ({} violated)",
            self.constraint_mix, self.constraint_violations
        )?;
        write!(f, "  accounting             {:?}", self.accounting_mix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(id: u64, mae: f32, energy_uj: f64, offload: f32, violated: bool) -> DeviceReport {
        DeviceReport {
            device_id: id,
            windows: 50,
            mae_bpm: mae,
            avg_watch_energy: Energy::from_microjoules(energy_uj),
            avg_phone_energy: Energy::from_microjoules(energy_uj * 10.0),
            offload_fraction: offload,
            simple_fraction: 0.5,
            disconnected_fraction: 0.1,
            battery_life_hours: 400.0 / (1.0 + f64::from(mae)),
            constraint: UserConstraint::MaxMae(6.0),
            accounting: EnergyAccounting::BleOnly,
            constraint_violated: violated,
        }
    }

    #[test]
    fn distribution_summary_orders_percentiles() {
        let values: Vec<f64> = (1..=100).map(f64::from).collect();
        let d = DistributionSummary::from_values(&values).unwrap();
        assert_eq!(d.min, 1.0);
        assert_eq!(d.max, 100.0);
        assert_eq!(d.p50, 50.0);
        assert_eq!(d.p90, 90.0);
        assert_eq!(d.p99, 99.0);
        assert!((d.mean - 50.5).abs() < 1e-12);
        assert!(DistributionSummary::from_values(&[]).is_none());
    }

    #[test]
    fn fleet_report_aggregates_devices() {
        let devices: Vec<DeviceReport> = (0..10)
            .map(|i| device(i, 4.0 + i as f32, 300.0 + i as f64, i as f32 / 10.0, i == 9))
            .collect();
        let report = FleetReport::from_devices(&devices);
        assert_eq!(report.devices, 10);
        assert_eq!(report.total_windows, 500);
        assert_eq!(report.constraint_violations, 1);
        assert_eq!(report.offload_histogram.iter().sum::<usize>(), 10);
        assert_eq!(report.constraint_mix.get("max_mae"), Some(&10));
        assert!(report.mae_bpm.p50 >= report.mae_bpm.min);
        assert!(report.mae_bpm.p99 <= report.mae_bpm.max);
        assert!((report.disconnected_window_share - 0.1).abs() < 1e-6);
    }

    #[test]
    fn empty_fleet_reports_zeros() {
        let report = FleetReport::from_devices(&[]);
        assert_eq!(report.devices, 0);
        assert_eq!(report.total_windows, 0);
        assert_eq!(report.offload_histogram.len(), OFFLOAD_HISTOGRAM_BINS);
    }

    #[test]
    fn display_mentions_key_quantities() {
        let devices = vec![device(0, 5.0, 400.0, 0.5, false)];
        let text = FleetReport::from_devices(&devices).to_string();
        assert!(text.contains("MAE"));
        assert!(text.contains("battery life"));
        assert!(text.contains("offload histogram"));
    }

    #[test]
    fn serde_round_trip() {
        let devices = vec![
            device(0, 5.0, 400.0, 0.5, true),
            device(1, 6.0, 500.0, 0.9, false),
        ];
        let report = FleetReport::from_devices(&devices);
        let json = serde_json::to_string(&report).unwrap();
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        let device_json = serde_json::to_string(&devices).unwrap();
        let back: Vec<DeviceReport> = serde_json::from_str(&device_json).unwrap();
        assert_eq!(devices, back);
    }
}
