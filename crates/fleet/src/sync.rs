//! Synchronization facade: the single import point for atomics in this
//! crate.
//!
//! Normal builds re-export the real `std::sync::atomic`; under the
//! `interleave` feature the same paths resolve to the model checker's
//! shims, so every atomic in the crate becomes exhaustively
//! model-checkable (see `tests/interleave_harness.rs`). detlint rule A2
//! enforces that crate code imports atomics from here and nowhere else —
//! new atomics are model-checkable by construction.

#[cfg(not(feature = "interleave"))]
pub use std::sync::atomic;

#[cfg(feature = "interleave")]
pub use interleave::sync::atomic;
