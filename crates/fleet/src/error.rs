//! Error type for fleet simulation.

use std::fmt;

/// Errors produced while generating scenarios or running a fleet.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// The fleet has no devices.
    EmptyFleet,
    /// A device simulation failed; carries the offending device id.
    Device {
        /// Id of the device whose simulation failed.
        device_id: u64,
        /// The underlying error.
        source: Box<FleetError>,
    },
    /// Scenario data generation failed.
    Data(ppg_data::DataError),
    /// Profiling or runtime machinery failed outside any specific device.
    Chris(chris_core::ChrisError),
    /// Hardware modelling failed (battery construction, BLE).
    Hardware(hw_sim::HwError),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::EmptyFleet => write!(f, "the fleet has no devices"),
            FleetError::Device { device_id, source } => {
                write!(f, "device {device_id} failed: {source}")
            }
            FleetError::Data(e) => write!(f, "scenario data error: {e}"),
            FleetError::Chris(e) => write!(f, "runtime error: {e}"),
            FleetError::Hardware(e) => write!(f, "hardware error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Device { source, .. } => Some(source),
            FleetError::Data(e) => Some(e),
            FleetError::Chris(e) => Some(e),
            FleetError::Hardware(e) => Some(e),
            FleetError::EmptyFleet => None,
        }
    }
}

impl FleetError {
    /// Attaches a device id to an error raised while simulating that device.
    pub fn for_device(device_id: u64, source: FleetError) -> Self {
        FleetError::Device {
            device_id,
            source: Box::new(source),
        }
    }
}

impl From<ppg_data::DataError> for FleetError {
    fn from(e: ppg_data::DataError) -> Self {
        FleetError::Data(e)
    }
}

impl From<chris_core::ChrisError> for FleetError {
    fn from(e: chris_core::ChrisError) -> Self {
        FleetError::Chris(e)
    }
}

impl From<hw_sim::HwError> for FleetError {
    fn from(e: hw_sim::HwError) -> Self {
        FleetError::Hardware(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        assert!(FleetError::EmptyFleet.to_string().contains("no devices"));
        let e = FleetError::for_device(7, chris_core::ChrisError::EmptyWorkload.into());
        assert!(e.to_string().contains("device 7"));
        assert!(e.source().is_some());
        let e = FleetError::for_device(3, hw_sim::HwError::LinkDown.into());
        assert!(e.to_string().contains("device 3"));
        let e: FleetError = hw_sim::HwError::LinkDown.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FleetError>();
    }
}
