//! Error type for fleet simulation.

use std::fmt;

use crate::report::ReportMode;

/// Errors produced while generating scenarios or running a fleet.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// The fleet has no devices.
    EmptyFleet,
    /// A shard specification asked for zero shards.
    ZeroShards,
    /// A shard index was outside the shard specification.
    ShardIndexOutOfRange {
        /// The offending shard index.
        index: u32,
        /// Number of shards in the specification.
        shards: u32,
    },
    /// A device simulation failed; carries the offending device id.
    Device {
        /// Id of the device whose simulation failed.
        device_id: u64,
        /// The underlying error.
        source: Box<FleetError>,
    },
    /// Scenario data generation failed.
    Data(ppg_data::DataError),
    /// Profiling or runtime machinery failed outside any specific device.
    Chris(chris_core::ChrisError),
    /// Hardware modelling failed (battery construction, BLE).
    Hardware(hw_sim::HwError),
    /// Merging shard reports failed.
    Merge(MergeError),
    /// The run was cancelled cooperatively via
    /// [`crate::progress::ProgressSink::should_cancel`] before every device
    /// finished. No partial report is produced: callers either retry the
    /// whole range or resume from previously persisted shard artifacts.
    Cancelled,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::EmptyFleet => write!(f, "the fleet has no devices"),
            FleetError::ZeroShards => write!(f, "a fleet cannot be split into zero shards"),
            FleetError::ShardIndexOutOfRange { index, shards } => {
                write!(f, "shard index {index} out of range for {shards} shards")
            }
            FleetError::Device { device_id, source } => {
                write!(f, "device {device_id} failed: {source}")
            }
            FleetError::Data(e) => write!(f, "scenario data error: {e}"),
            FleetError::Chris(e) => write!(f, "runtime error: {e}"),
            FleetError::Hardware(e) => write!(f, "hardware error: {e}"),
            FleetError::Merge(e) => write!(f, "shard merge error: {e}"),
            FleetError::Cancelled => write!(f, "the run was cancelled before completion"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Device { source, .. } => Some(source),
            FleetError::Data(e) => Some(e),
            FleetError::Chris(e) => Some(e),
            FleetError::Hardware(e) => Some(e),
            FleetError::Merge(e) => Some(e),
            FleetError::EmptyFleet
            | FleetError::ZeroShards
            | FleetError::Cancelled
            | FleetError::ShardIndexOutOfRange { .. } => None,
        }
    }
}

/// Errors produced while validating and merging shard artifacts.
///
/// Every variant names the exact incompatibility, so `fleet-merge` can reject
/// a bad artifact set without ever emitting a corrupted [`crate::FleetReport`].
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// No shard reports were supplied.
    NoShards,
    /// A shard was produced by a different engine version than the merger.
    VersionMismatch {
        /// The merger's engine version.
        expected: String,
        /// The shard's engine version.
        found: String,
    },
    /// Shards disagree on the fleet's master seed.
    SeedMismatch {
        /// Master seed of the first shard.
        expected: u64,
        /// Conflicting master seed.
        found: u64,
    },
    /// Shards disagree on the scenario mix.
    MixMismatch,
    /// Shards disagree on the report mode (exact vs. sketch aggregation).
    ReportModeMismatch {
        /// Report mode of the first shard (or the mode forced on the merger).
        expected: ReportMode,
        /// Conflicting report mode.
        found: ReportMode,
    },
    /// Shards disagree on the total fleet size.
    FleetSizeMismatch {
        /// Fleet size of the first shard.
        expected: u64,
        /// Conflicting fleet size.
        found: u64,
    },
    /// Shards disagree on how many shards the fleet was split into.
    ShardCountMismatch {
        /// Shard count of the first shard.
        expected: u32,
        /// Conflicting shard count.
        found: u32,
    },
    /// Two shards claim overlapping device-id ranges.
    OverlappingShards {
        /// Device range `[start, end)` of the earlier shard.
        left: (u64, u64),
        /// Device range `[start, end)` of the overlapping shard.
        right: (u64, u64),
    },
    /// A device-id range is covered by no shard (a shard artifact is missing).
    MissingDevices {
        /// First uncovered device id.
        start: u64,
        /// One past the last uncovered device id.
        end: u64,
    },
    /// Two shards' embedded telemetry snapshots cannot be folded (the same
    /// series is registered with conflicting metadata or kinds).
    TelemetryConflict {
        /// The underlying [`telemetry::TelemetryError`], rendered.
        detail: String,
    },
    /// A shard artifact is internally inconsistent (device list does not
    /// match its declared range).
    CorruptShard {
        /// Declared start of the shard's device range.
        start: u64,
        /// Declared end (exclusive) of the shard's device range.
        end: u64,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::NoShards => write!(f, "no shard reports to merge"),
            MergeError::VersionMismatch { expected, found } => {
                write!(
                    f,
                    "engine version mismatch: expected {expected}, found {found}"
                )
            }
            MergeError::SeedMismatch { expected, found } => {
                write!(
                    f,
                    "master seed mismatch: expected {expected}, found {found}"
                )
            }
            MergeError::MixMismatch => {
                write!(f, "shards were generated from different scenario mixes")
            }
            MergeError::ReportModeMismatch { expected, found } => {
                write!(
                    f,
                    "report mode mismatch: expected {}, found {}",
                    expected.name(),
                    found.name()
                )
            }
            MergeError::FleetSizeMismatch { expected, found } => {
                write!(
                    f,
                    "fleet size mismatch: expected {expected} devices, found {found}"
                )
            }
            MergeError::ShardCountMismatch { expected, found } => {
                write!(
                    f,
                    "shard count mismatch: expected {expected}, found {found}"
                )
            }
            MergeError::OverlappingShards { left, right } => write!(
                f,
                "shards [{}, {}) and [{}, {}) overlap",
                left.0, left.1, right.0, right.1
            ),
            MergeError::MissingDevices { start, end } => {
                write!(f, "devices [{start}, {end}) are covered by no shard")
            }
            MergeError::TelemetryConflict { detail } => {
                write!(f, "shard telemetry snapshots conflict: {detail}")
            }
            MergeError::CorruptShard { start, end, detail } => {
                write!(f, "shard [{start}, {end}) is corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

impl From<MergeError> for FleetError {
    fn from(e: MergeError) -> Self {
        FleetError::Merge(e)
    }
}

impl FleetError {
    /// Attaches a device id to an error raised while simulating that device.
    pub fn for_device(device_id: u64, source: FleetError) -> Self {
        FleetError::Device {
            device_id,
            source: Box::new(source),
        }
    }
}

impl From<ppg_data::DataError> for FleetError {
    fn from(e: ppg_data::DataError) -> Self {
        FleetError::Data(e)
    }
}

impl From<chris_core::ChrisError> for FleetError {
    fn from(e: chris_core::ChrisError) -> Self {
        FleetError::Chris(e)
    }
}

impl From<hw_sim::HwError> for FleetError {
    fn from(e: hw_sim::HwError) -> Self {
        FleetError::Hardware(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        assert!(FleetError::EmptyFleet.to_string().contains("no devices"));
        assert!(FleetError::Cancelled.to_string().contains("cancelled"));
        assert!(FleetError::Cancelled.source().is_none());
        let e = FleetError::for_device(7, chris_core::ChrisError::EmptyWorkload.into());
        assert!(e.to_string().contains("device 7"));
        assert!(e.source().is_some());
        let e = FleetError::for_device(3, hw_sim::HwError::LinkDown.into());
        assert!(e.to_string().contains("device 3"));
        let e: FleetError = hw_sim::HwError::LinkDown.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FleetError>();
        assert_send_sync::<MergeError>();
    }

    #[test]
    fn merge_errors_name_the_incompatibility() {
        let e = MergeError::SeedMismatch {
            expected: 1,
            found: 2,
        };
        assert!(e.to_string().contains("master seed"));
        let e = MergeError::OverlappingShards {
            left: (0, 8),
            right: (4, 12),
        };
        assert!(e.to_string().contains("[0, 8)"));
        assert!(e.to_string().contains("[4, 12)"));
        let e = MergeError::MissingDevices { start: 8, end: 16 };
        assert!(e.to_string().contains("[8, 16)"));
        let e = MergeError::ReportModeMismatch {
            expected: ReportMode::Exact,
            found: ReportMode::Sketch,
        };
        assert!(e.to_string().contains("expected exact, found sketch"));
        let wrapped: FleetError = MergeError::NoShards.into();
        assert!(wrapped.to_string().contains("merge"));
        use std::error::Error;
        assert!(wrapped.source().is_some());
    }
}
