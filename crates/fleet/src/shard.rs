//! Sharded fleet execution: partitioning and shard artifacts.
//!
//! Device scenarios are pure functions of `(master seed, device id)`, so a
//! fleet can be cut into contiguous device-id ranges and each range simulated
//! anywhere — another process, another host — with no coordination beyond
//! agreeing on the [`ShardSpec`]. A worker's output is a [`ShardReport`]: the
//! per-device [`DeviceReport`]s of its range plus the [`ShardMeta`] needed to
//! prove, at merge time, that a set of artifacts really describes one fleet
//! (same master seed, same mix, same engine version, ranges that tile the
//! fleet exactly). [`crate::merge::merge`] folds validated shard artifacts
//! into a [`crate::FleetReport`] byte-identical to a single-process run.

use std::ops::Range;

use serde::{Deserialize, Serialize};
use telemetry::MetricsSnapshot;

use crate::error::FleetError;
use crate::report::{DeviceReport, ReportMode};
use crate::scenario::ScenarioMix;

/// Version stamp embedded in every shard artifact.
///
/// [`crate::merge::merge`] refuses artifacts produced by a different engine
/// version: scenario generation, reduction order and serialization are all
/// allowed to change between versions, and merging across them would silently
/// break the byte-identity guarantee. (0.3.0 added
/// `ScenarioMix::subject_pool` to the artifact format, 0.4.0 added the
/// embedded `telemetry` snapshot, and 0.5.0 added `report_mode` to
/// [`ShardMeta`]; artifacts from earlier versions fail deserialization with
/// a "missing field" error naming the file — regenerate them with the
/// current binaries.)
pub const ENGINE_VERSION: &str = env!("CARGO_PKG_VERSION");

/// Partition of a fleet's device-id range `0..devices` into contiguous
/// shards.
///
/// Shard `i` covers a contiguous range; the first `devices % shards` shards
/// hold one extra device, so ranges tile `0..devices` exactly — no device is
/// duplicated or dropped, for any `(devices, shards)` pair including
/// `shards > devices` (excess shards are empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardSpec {
    devices: u64,
    shards: u32,
}

impl ShardSpec {
    /// Creates a partition of `devices` devices into `shards` contiguous
    /// shards.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::ZeroShards`] when `shards == 0`.
    pub fn new(devices: u64, shards: u32) -> Result<Self, FleetError> {
        if shards == 0 {
            return Err(FleetError::ZeroShards);
        }
        Ok(Self { devices, shards })
    }

    /// The trivial partition: the whole fleet in one shard.
    pub fn single(devices: u64) -> Self {
        Self { devices, shards: 1 }
    }

    /// Total number of devices in the fleet.
    pub fn devices(&self) -> u64 {
        self.devices
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Device-id range `[start, end)` of shard `index`, or `None` when
    /// `index >= shards`.
    pub fn range(&self, index: u32) -> Option<Range<u64>> {
        if index >= self.shards {
            return None;
        }
        let base = self.devices / u64::from(self.shards);
        let remainder = self.devices % u64::from(self.shards);
        let i = u64::from(index);
        let start = i * base + i.min(remainder);
        let len = base + u64::from(i < remainder);
        Some(start..start + len)
    }

    /// The ranges of all shards, in shard order; they tile `0..devices`.
    pub fn ranges(&self) -> Vec<Range<u64>> {
        (0..self.shards)
            .map(|i| self.range(i).expect("index < shard count"))
            .collect()
    }
}

/// Provenance of one shard artifact: everything [`crate::merge::merge`] needs
/// to verify that a set of shards describes the same fleet and tiles it
/// exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardMeta {
    /// [`ENGINE_VERSION`] of the engine that produced the shard.
    pub engine_version: String,
    /// Master seed every device scenario derives from.
    pub master_seed: u64,
    /// Scenario mix the fleet was generated with.
    pub mix: ScenarioMix,
    /// Aggregation mode the shard's producer ran under. Merging mixed-mode
    /// artifact sets is refused: sketch and exact runs summarize
    /// distributions differently, so a mixed merge could not reproduce
    /// either single-process result.
    pub report_mode: ReportMode,
    /// Total number of devices in the fleet this shard belongs to.
    pub fleet_devices: u64,
    /// Number of shards the fleet was split into.
    pub shard_count: u32,
    /// This shard's index in `0..shard_count`.
    pub shard_index: u32,
    /// First device id of the shard's range.
    pub start: u64,
    /// One past the last device id of the shard's range.
    pub end: u64,
}

impl ShardMeta {
    /// The shard's device-id range.
    pub fn range(&self) -> Range<u64> {
        self.start..self.end
    }
}

/// Serializable result of simulating one shard: per-device reports in
/// device-id order plus the provenance metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard provenance, validated at merge time.
    pub meta: ShardMeta,
    /// Per-device reports, ordered by device id, exactly covering
    /// `meta.start..meta.end`.
    pub devices: Vec<DeviceReport>,
    /// [`Stable`](telemetry::Stability::Stable) telemetry series of the
    /// shard's run (windows processed, offload decisions, model
    /// invocations). Only workload-deterministic series are embedded, so the
    /// artifact stays byte-identical for any thread count;
    /// [`crate::merge::merge`] folds the snapshots of all shards into the
    /// fleet-level total.
    pub telemetry: MetricsSnapshot,
}

/// Meta-only view of a serialized shard artifact.
///
/// Deserializing a [`ShardReport`]'s JSON into this type reads just the
/// provenance and skips materializing the device payload — what the
/// streaming `fleet-merge` pipeline's first pass uses to order and size an
/// artifact set without paying for its device reports twice.
#[derive(Debug, Clone, PartialEq, Deserialize)]
pub struct ShardProvenance {
    /// The artifact's provenance.
    pub meta: ShardMeta,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shards_is_rejected() {
        assert!(matches!(ShardSpec::new(10, 0), Err(FleetError::ZeroShards)));
    }

    #[test]
    fn ranges_tile_the_fleet_exactly() {
        for (devices, shards) in [(0u64, 1u32), (1, 1), (1, 4), (7, 3), (64, 4), (100, 8)] {
            let spec = ShardSpec::new(devices, shards).unwrap();
            let ranges = spec.ranges();
            assert_eq!(ranges.len(), shards as usize);
            let mut cursor = 0;
            for range in &ranges {
                assert_eq!(range.start, cursor, "{devices} devices / {shards} shards");
                cursor = range.end;
            }
            assert_eq!(cursor, devices);
            assert!(spec.range(shards).is_none());
        }
    }

    #[test]
    fn remainder_devices_go_to_the_first_shards() {
        let spec = ShardSpec::new(10, 4).unwrap();
        let lens: Vec<u64> = spec.ranges().iter().map(|r| r.end - r.start).collect();
        assert_eq!(lens, vec![3, 3, 2, 2]);
    }

    #[test]
    fn huge_fleets_partition_without_overflow() {
        let spec = ShardSpec::new(u64::MAX, 7).unwrap();
        let ranges = spec.ranges();
        let mut cursor = 0;
        for range in &ranges {
            assert_eq!(range.start, cursor);
            assert!(range.end >= range.start);
            cursor = range.end;
        }
        assert_eq!(cursor, u64::MAX);
    }

    #[test]
    fn single_is_one_shard_over_everything() {
        let spec = ShardSpec::single(42);
        assert_eq!(spec.shards(), 1);
        assert_eq!(spec.devices(), 42);
        assert_eq!(spec.range(0), Some(0..42));
    }

    #[test]
    fn shard_spec_round_trips_through_json() {
        let spec = ShardSpec::new(100, 8).unwrap();
        let json = serde_json::to_string(&spec).unwrap();
        let back: ShardSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }

    #[test]
    fn provenance_reads_a_shard_artifact_without_its_devices() {
        let report = ShardReport {
            meta: ShardMeta {
                engine_version: ENGINE_VERSION.to_string(),
                master_seed: 42,
                mix: ScenarioMix::balanced(),
                report_mode: ReportMode::Exact,
                fleet_devices: 4,
                shard_count: 2,
                shard_index: 1,
                start: 2,
                end: 4,
            },
            devices: Vec::new(),
            telemetry: MetricsSnapshot::default(),
        };
        let json = serde_json::to_string(&report).unwrap();
        let provenance: ShardProvenance = serde_json::from_str(&json).unwrap();
        assert_eq!(provenance.meta, report.meta);
    }
}
