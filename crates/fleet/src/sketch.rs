//! Deterministic, mergeable quantile sketches for fleet-scale aggregation.
//!
//! [`QuantileSketch`] summarizes one per-device quantity (MAE, watch energy,
//! battery life) in O(capacity · log(devices / capacity)) memory instead of
//! the O(devices) sample vector exact aggregation keeps, with a *surfaced*
//! worst-case rank-error bound ([`QuantileSketch::rank_error_bound`]).
//!
//! ## Why not a textbook KLL compactor
//!
//! A classic KLL sketch compacts whenever a level buffer fills, so its
//! internal state depends on *arrival order*: merging shard A into shard B
//! and B into A yield different (equally valid) states, and the fleet's
//! byte-identity guarantee — the same report for any shard tiling — dies.
//!
//! This sketch instead pins the compactor hierarchy to the **absolute
//! device-id space** (a Munro–Paterson-style dyadic merge tree):
//!
//! * level-0 node = one complete id-aligned block of `capacity` values
//!   (block `b` covers ids `[b·k, (b+1)·k)` for capacity `k`),
//! * two sibling nodes at level `ℓ` (blocks `b` and `b + 2^ℓ` with
//!   `b % 2^(ℓ+1) == 0`) always combine into one level-`ℓ+1` node: the two
//!   sorted buffers are merged and every other element kept, starting at an
//!   offset derived from a **fixed seed** and the node's absolute position
//!   ([`splitmix64`]) — never from arrival order or a random source,
//! * values whose ids do not yet fill an aligned block are held raw (weight
//!   1, zero error) in partial-block runs.
//!
//! Combining is forced whenever both siblings exist and the combining order
//! never changes the result (each combine is a pure function of the two
//! child states and the node's absolute position, and distinct combinable
//! pairs are disjoint), so the canonical state is a pure function of the
//! *multiset* of `(id, value)` insertions. [`QuantileSketch::merge`] is
//! therefore associative, commutative and merge-order invariant **by
//! construction** — not just up to rank error, but byte for byte.
//!
//! ## Error accounting
//!
//! Combining two level-`ℓ` nodes discards every other element of their
//! merged weight-`2^ℓ` buffers, which perturbs any rank by at most `2^ℓ`.
//! Each node tracks the total perturbation of the combines that built it;
//! [`QuantileSketch::rank_error_bound`] is the sum over live nodes — a
//! worst-case bound `E` such that the value returned for target rank `r` has
//! true rank within `[r - E, r + E]`. For ids `0..n` the bound works out to
//! roughly `(n / 2) · log2(n / k) / k`-ish absolute ranks, i.e. an
//! `≈ log2(n/k) / (2k)` rank *fraction* — capacity 256 summarizes a million
//! devices in a few thousand retained samples at ~2 % worst-case rank error.

use std::collections::BTreeMap;

use crate::report::DistributionSummary;

/// Default per-quantity sketch capacity (`k`): the block size of the dyadic
/// hierarchy and the number of values every compacted node retains.
pub const DEFAULT_SKETCH_CAPACITY: usize = 256;

/// Series name of the sketch-compaction counter emitted when a sketch-mode
/// aggregation finalizes.
pub const SKETCH_COMPACTIONS_SERIES: &str = "chris_sketch_compactions_total";

/// Help text of [`SKETCH_COMPACTIONS_SERIES`].
pub const SKETCH_COMPACTIONS_HELP: &str =
    "Sketch compactions performed while aggregating fleet distributions";

/// Series name of the retained-sample gauge emitted when a sketch-mode
/// aggregation finalizes.
pub const SKETCH_RETAINED_SERIES: &str = "chris_sketch_retained_samples";

/// Help text of [`SKETCH_RETAINED_SERIES`].
pub const SKETCH_RETAINED_HELP: &str =
    "Samples retained across the fleet aggregation's quantile sketches";

/// Fixed seed of the deterministic keep-offset choice. Never configurable:
/// two sketches only canonicalize identically because they agree on it.
const COMPACTION_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a well-mixed pure function of its input, used to
/// derive each combine's keep-offset from the node's absolute position.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One compacted node of the dyadic hierarchy: a sorted, fixed-size summary
/// of the `2^level` consecutive blocks starting at its key.
#[derive(Debug, Clone, PartialEq)]
struct Node {
    /// Height in the merge tree; the node covers `2^level` blocks and each
    /// retained value represents `2^level` raw values.
    level: u32,
    /// Exactly `capacity` values, sorted by [`f64::total_cmp`].
    values: Vec<f64>,
    /// Canonical sum of every raw value the node covers (level-0 sums are
    /// taken in id order; a combine adds `left.sum + right.sum`).
    sum: f64,
    /// Worst-case rank perturbation accumulated by the combines that built
    /// this node, in raw ranks.
    error: u64,
}

impl Node {
    /// Raw values each retained value stands for.
    fn weight(&self) -> u64 {
        1u64 << self.level
    }

    /// Blocks the node covers.
    fn span(&self) -> u64 {
        1u64 << self.level
    }
}

/// A deterministic, mergeable quantile sketch over `(device id, value)`
/// insertions (see the [module docs](self) for the construction).
///
/// Two sketches built from the same multiset of insertions are equal —
/// regardless of insertion order, of how the id range was tiled into
/// sub-sketches, or of the order those sub-sketches were [merged]. Exact
/// `min`/`max` and a canonical `mean` are tracked alongside the compacted
/// rank structure.
///
/// [merged]: QuantileSketch::merge
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSketch {
    /// Block size `k` of the dyadic hierarchy, in device ids.
    block: u64,
    /// Total values inserted.
    count: u64,
    /// Exact smallest value (`total_cmp` order); meaningless when empty.
    min: f64,
    /// Exact largest value (`total_cmp` order); meaningless when empty.
    max: f64,
    /// Total combines performed over the sketch's history (merge-order
    /// invariant: the canonical forest fixes how many combines build it).
    compactions: u64,
    /// Partial-block raw values: start id → values in id order (weight 1).
    runs: BTreeMap<u64, Vec<f64>>,
    /// Compacted nodes: start *block index* → node.
    nodes: BTreeMap<u64, Node>,
}

impl QuantileSketch {
    /// Creates an empty sketch with [`DEFAULT_SKETCH_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SKETCH_CAPACITY)
    }

    /// Creates an empty sketch with block size / node capacity `capacity`.
    ///
    /// Larger capacities retain more samples and tighten the rank-error
    /// bound (`≈ log2(n/k) / (2k)` of the population). All sketches that
    /// will ever be merged must share one capacity.
    ///
    /// # Panics
    ///
    /// Panics when `capacity < 2`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 2, "sketch capacity must be at least 2");
        Self {
            block: capacity as u64,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            compactions: 0,
            runs: BTreeMap::new(),
            nodes: BTreeMap::new(),
        }
    }

    /// The block size / node capacity the sketch was created with.
    pub fn capacity(&self) -> usize {
        self.block as usize
    }

    /// Total values inserted.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Values currently retained (raw runs plus compacted node buffers) —
    /// the sketch's memory footprint in samples. For ids `0..n` this is
    /// O(capacity · log(n / capacity)), not O(n).
    pub fn retained(&self) -> usize {
        self.runs.values().map(Vec::len).sum::<usize>()
            + self.nodes.values().map(|n| n.values.len()).sum::<usize>()
    }

    /// Total combines performed over the sketch's history (including the
    /// history of sketches merged into it).
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Worst-case absolute rank error `E`, in raw ranks: the value returned
    /// by [`QuantileSketch::percentile`] for target rank `r` is guaranteed
    /// to have true (`total_cmp`) rank within `[r - E, r + E]`.
    pub fn rank_error_bound(&self) -> u64 {
        self.nodes.values().map(|n| n.error).sum()
    }

    /// [`QuantileSketch::rank_error_bound`] as a fraction of the inserted
    /// population (zero when empty).
    pub fn rank_error_fraction(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.rank_error_bound() as f64 / self.count as f64
        }
    }

    /// Exact smallest inserted value; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest inserted value; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Canonical mean: per-node sums folded in ascending id order, divided
    /// by the count. Deterministic for a given multiset of insertions (the
    /// fold order is the canonical decomposition, not the arrival order).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let mut parts: Vec<(u64, f64)> = Vec::with_capacity(self.runs.len() + self.nodes.len());
        for (&start, values) in &self.runs {
            parts.push((start, values.iter().sum::<f64>()));
        }
        for (&base, node) in &self.nodes {
            parts.push((base * self.block, node.sum));
        }
        parts.sort_unstable_by_key(|&(start, _)| start);
        let total = parts.iter().fold(0.0, |acc, &(_, sum)| acc + sum);
        Some(total / self.count as f64)
    }

    /// Estimated nearest-rank `p`th percentile: the first retained value (in
    /// `total_cmp` order) whose cumulative weight reaches the exact target
    /// rank `ceil(p · count / 100)`. `None` when empty.
    ///
    /// The estimate's true rank is within [`QuantileSketch::rank_error_bound`]
    /// of the target.
    pub fn percentile(&self, p: u32) -> Option<f64> {
        debug_assert!((1..=100).contains(&p), "percentile {p} outside 1..=100");
        if self.count == 0 {
            return None;
        }
        let target = (u128::from(p) * u128::from(self.count))
            .div_ceil(100)
            .max(1);
        let mut items: Vec<(f64, u64)> = Vec::with_capacity(self.retained());
        for values in self.runs.values() {
            items.extend(values.iter().map(|&v| (v, 1)));
        }
        for node in self.nodes.values() {
            let weight = node.weight();
            items.extend(node.values.iter().map(|&v| (v, weight)));
        }
        items.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut cumulative = 0u128;
        for &(value, weight) in &items {
            cumulative += u128::from(weight);
            if cumulative >= target {
                return Some(value);
            }
        }
        items.last().map(|&(value, _)| value)
    }

    /// The [`DistributionSummary`] of the sketched population: exact
    /// `min`/`max`, canonical `mean`, and sketched p50/p90/p99. `None` when
    /// empty.
    pub fn summary(&self) -> Option<DistributionSummary> {
        Some(DistributionSummary {
            min: self.min()?,
            mean: self.mean()?,
            p50: self.percentile(50)?,
            p90: self.percentile(90)?,
            p99: self.percentile(99)?,
            max: self.max()?,
        })
    }

    /// Inserts one `(device id, value)` observation.
    ///
    /// Each id must be inserted at most once across the sketch (and across
    /// every sketch later merged with it) — ids are the coordinates of the
    /// dyadic hierarchy. Insertion order is free; ascending order (the order
    /// every aggregation path already uses) is the cheapest.
    pub fn insert(&mut self, id: u64, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            if value.total_cmp(&self.min).is_lt() {
                self.min = value;
            }
            if value.total_cmp(&self.max).is_gt() {
                self.max = value;
            }
        }
        self.count += 1;
        match self.runs.range_mut(..=id).next_back() {
            Some((&start, run)) if start + run.len() as u64 == id => run.push(value),
            _ => {
                self.runs.insert(id, vec![value]);
            }
        }
        self.normalize();
    }

    /// Folds `other` into `self`.
    ///
    /// Associative, commutative and merge-order invariant: any merge order
    /// over any tiling of the id space yields a byte-identical sketch,
    /// because both sides re-canonicalize onto the same id-pinned hierarchy.
    ///
    /// # Panics
    ///
    /// Panics when the capacities differ or the two sketches cover
    /// overlapping device ids (each id may be inserted once, period).
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(
            self.block, other.block,
            "cannot merge sketches of different capacities"
        );
        assert!(
            !self.overlaps(other),
            "cannot merge sketches covering overlapping device ids"
        );
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        if other.min.total_cmp(&self.min).is_lt() {
            self.min = other.min;
        }
        if other.max.total_cmp(&self.max).is_gt() {
            self.max = other.max;
        }
        self.count += other.count;
        self.compactions += other.compactions;
        for (&start, values) in &other.runs {
            self.runs.insert(start, values.clone());
        }
        for (&base, node) in &other.nodes {
            self.nodes.insert(base, node.clone());
        }
        self.normalize();
    }

    /// The id intervals `[start, end)` the sketch covers, sorted.
    fn covered(&self) -> Vec<(u64, u64)> {
        let mut spans: Vec<(u64, u64)> = self
            .runs
            .iter()
            .map(|(&start, values)| (start, start + values.len() as u64))
            .chain(
                self.nodes
                    .iter()
                    .map(|(&base, node)| (base * self.block, (base + node.span()) * self.block)),
            )
            .collect();
        spans.sort_unstable();
        spans
    }

    /// Whether any id is covered by both sketches.
    fn overlaps(&self, other: &Self) -> bool {
        let mut spans = self.covered();
        spans.extend(other.covered());
        spans.sort_unstable();
        spans.windows(2).any(|pair| pair[1].0 < pair[0].1)
    }

    /// Restores the canonical form: join adjacent runs, materialize every
    /// complete id-aligned block as a level-0 node, combine siblings to a
    /// fixpoint. Idempotent, and confluent because each combine is a pure
    /// function of the two child states and the node's absolute position.
    fn normalize(&mut self) {
        self.coalesce_runs();
        self.extract_blocks();
        self.combine_siblings();
    }

    /// Joins raw runs that have become id-adjacent (after a merge brought in
    /// a neighbouring shard's partial block).
    fn coalesce_runs(&mut self) {
        let mut rebuilt: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
        for (start, values) in std::mem::take(&mut self.runs) {
            if let Some((&last_start, last)) = rebuilt.range_mut(..=start).next_back() {
                let last_end = last_start + last.len() as u64;
                debug_assert!(last_end <= start, "raw runs overlap");
                if last_end == start {
                    last.extend(values);
                    continue;
                }
            }
            rebuilt.insert(start, values);
        }
        self.runs = rebuilt;
    }

    /// Cuts every complete id-aligned block out of the raw runs into a
    /// level-0 node; partial prefixes/suffixes stay raw.
    fn extract_blocks(&mut self) {
        let block = self.block;
        let mut rebuilt: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
        for (start, values) in std::mem::take(&mut self.runs) {
            let end = start + values.len() as u64;
            let first_block = start.div_ceil(block);
            let block_end = end / block;
            if first_block >= block_end {
                rebuilt.insert(start, values);
                continue;
            }
            let prefix_len = (first_block * block - start) as usize;
            if prefix_len > 0 {
                rebuilt.insert(start, values[..prefix_len].to_vec());
            }
            for b in first_block..block_end {
                let offset = (b * block - start) as usize;
                let raw = &values[offset..offset + block as usize];
                // The canonical sum is taken in id order *before* sorting.
                let sum = raw.iter().sum::<f64>();
                let mut sorted = raw.to_vec();
                sorted.sort_by(f64::total_cmp);
                let previous = self.nodes.insert(
                    b,
                    Node {
                        level: 0,
                        values: sorted,
                        sum,
                        error: 0,
                    },
                );
                debug_assert!(previous.is_none(), "block {b} materialized twice");
            }
            let suffix_offset = (block_end * block - start) as usize;
            if suffix_offset < values.len() {
                rebuilt.insert(block_end * block, values[suffix_offset..].to_vec());
            }
        }
        for (start, values) in rebuilt {
            self.runs.insert(start, values);
        }
    }

    /// Combines aligned same-level siblings until none remain.
    fn combine_siblings(&mut self) {
        while let Some((base, level)) = self.nodes.iter().find_map(|(&base, node)| {
            let span = node.span();
            if base % (span * 2) != 0 {
                return None;
            }
            let sibling = self.nodes.get(&(base + span))?;
            (sibling.level == node.level).then_some((base, node.level))
        }) {
            let span = 1u64 << level;
            let left = self.nodes.remove(&base).expect("sibling pair located");
            let right = self
                .nodes
                .remove(&(base + span))
                .expect("sibling pair located");
            let combined = self.combine(base, left, right);
            self.nodes.insert(base, combined);
        }
    }

    /// Combines two level-`ℓ` siblings into their level-`ℓ+1` parent: merge
    /// the sorted buffers, keep every other element starting at the
    /// fixed-seed offset derived from the parent's absolute position.
    fn combine(&mut self, base: u64, left: Node, right: Node) -> Node {
        debug_assert_eq!(left.level, right.level, "siblings must share a level");
        let child_level = left.level;
        let level = child_level + 1;
        let merged = merge_sorted(&left.values, &right.values);
        let offset = (splitmix64(COMPACTION_SEED ^ (u64::from(level) << 56) ^ base) & 1) as usize;
        let values: Vec<f64> = merged.iter().skip(offset).step_by(2).copied().collect();
        debug_assert_eq!(values.len(), self.block as usize);
        self.compactions += 1;
        Node {
            level,
            values,
            sum: left.sum + right.sum,
            // Discarding every other weight-2^ℓ element perturbs any rank by
            // at most one such element.
            error: left.error + right.error + (1u64 << child_level),
        }
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new()
    }
}

/// Merges two `total_cmp`-sorted slices into one sorted vector.
fn merge_sorted(left: &[f64], right: &[f64]) -> Vec<f64> {
    let mut merged = Vec::with_capacity(left.len() + right.len());
    let (mut i, mut j) = (0, 0);
    while i < left.len() && j < right.len() {
        if left[i].total_cmp(&right[j]).is_le() {
            merged.push(left[i]);
            i += 1;
        } else {
            merged.push(right[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&left[i..]);
    merged.extend_from_slice(&right[j..]);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-values for tests.
    fn value_for(id: u64) -> f64 {
        (splitmix64(id) % 100_000) as f64 / 100.0
    }

    fn sequential(capacity: usize, n: u64) -> QuantileSketch {
        let mut sketch = QuantileSketch::with_capacity(capacity);
        for id in 0..n {
            sketch.insert(id, value_for(id));
        }
        sketch
    }

    #[test]
    fn empty_sketch_reports_nothing() {
        let sketch = QuantileSketch::new();
        assert!(sketch.is_empty());
        assert_eq!(sketch.percentile(50), None);
        assert_eq!(sketch.mean(), None);
        assert_eq!(sketch.min(), None);
        assert_eq!(sketch.summary(), None);
        assert_eq!(sketch.rank_error_bound(), 0);
        assert_eq!(sketch.retained(), 0);
    }

    #[test]
    fn under_one_block_the_sketch_is_exact() {
        let mut sketch = QuantileSketch::with_capacity(256);
        let values = [5.0, 1.0, 9.0, 3.0, 7.0];
        for (id, &v) in values.iter().enumerate() {
            sketch.insert(id as u64, v);
        }
        assert_eq!(sketch.rank_error_bound(), 0);
        assert_eq!(sketch.compactions(), 0);
        assert_eq!(sketch.percentile(50), Some(5.0));
        assert_eq!(sketch.percentile(99), Some(9.0));
        assert_eq!(sketch.min(), Some(1.0));
        assert_eq!(sketch.max(), Some(9.0));
        assert!((sketch.mean().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn compaction_keeps_the_node_count_logarithmic() {
        let sketch = sequential(4, 1024);
        // 256 blocks collapse into one level-8 node.
        assert_eq!(sketch.nodes.len(), 1);
        assert_eq!(sketch.nodes[&0].level, 8);
        assert_eq!(sketch.retained(), 4);
        assert_eq!(sketch.compactions(), 255);
        // A full binary tree over 256 blocks accumulates 128 combines per
        // level times 2^l raw ranks each over 8 levels: 8 * 128 total. (The
        // bound is vacuous at capacity 4 — tiny capacities are for testing
        // structure, not accuracy.)
        assert_eq!(sketch.rank_error_bound(), 8 * 128);
    }

    #[test]
    fn split_streams_merge_to_the_sequential_sketch_byte_for_byte() {
        for cut in [1u64, 3, 8, 17, 100, 255] {
            let whole = sequential(8, 256);
            let mut left = QuantileSketch::with_capacity(8);
            for id in 0..cut {
                left.insert(id, value_for(id));
            }
            let mut right = QuantileSketch::with_capacity(8);
            for id in cut..256 {
                right.insert(id, value_for(id));
            }
            // Either merge direction reproduces the sequential state.
            let mut forward = left.clone();
            forward.merge(&right);
            assert_eq!(forward, whole, "forward merge at cut {cut}");
            let mut backward = right;
            backward.merge(&left);
            assert_eq!(backward, whole, "backward merge at cut {cut}");
        }
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let ascending = sequential(4, 64);
        let mut descending = QuantileSketch::with_capacity(4);
        for id in (0..64).rev() {
            descending.insert(id, value_for(id));
        }
        assert_eq!(ascending, descending);
    }

    #[test]
    #[should_panic(expected = "overlapping device ids")]
    fn overlapping_merges_are_rejected() {
        let a = sequential(4, 16);
        let mut b = QuantileSketch::with_capacity(4);
        b.insert(15, 1.0);
        b.merge(&a);
    }

    #[test]
    #[should_panic(expected = "different capacities")]
    fn capacity_mismatch_is_rejected() {
        let a = sequential(4, 4);
        let mut b = QuantileSketch::with_capacity(8);
        b.merge(&a);
    }

    #[test]
    fn keep_offset_is_a_pure_function_of_position() {
        // Two independently built sketches over the same data are equal —
        // in particular their compactions chose identical offsets.
        assert_eq!(sequential(8, 1000), sequential(8, 1000));
    }
}
