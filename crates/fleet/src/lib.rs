//! # fleet — fleet-scale CHRIS simulation engine
//!
//! The paper evaluates CHRIS one device at a time. A production deployment
//! serves *millions* of wearables whose subjects, activity mixes, BLE link
//! quality, batteries and user constraints all differ. This crate simulates
//! such a fleet: thousands of independent [`chris_core::ChrisRuntime`] device
//! simulations run in parallel and are folded into population-level
//! statistics — the quantities a fleet operator actually watches (error
//! percentiles, battery-life distribution, offload load on phones,
//! constraint-violation counts).
//!
//! The engine has four layers:
//!
//! * [`scenario`] — a deterministic scenario generator: from one master seed
//!   it derives, per device id, the subject physiology (via `ppg-data`
//!   synthesis), the activity schedule, the BLE connection pattern, the
//!   battery capacity, the user constraint and the energy-accounting mode.
//!   A device's scenario depends **only** on `(master seed, device id)`, so
//!   fleets are reproducible and independent of execution order,
//! * [`executor`] — a parallel executor: std scoped threads pull fixed-size
//!   chunks of devices from a shared work queue (work stealing by atomic
//!   cursor). Every device simulation is independent, and results are merged
//!   in device-id order, so reports are **byte-identical for any thread
//!   count**. Workers are *scenario-free* ([`executor::run_fleet_range`]):
//!   each scenario is derived on demand from `(generator, device id)` inside
//!   the claiming worker, so a shard's scenario memory is O(threads), not
//!   O(devices). Device windows are likewise *streamed*, not materialized:
//!   the runtime pulls them one at a time from
//!   [`DeviceScenario::window_stream`], so peak per-device memory is one
//!   activity segment instead of the whole session, and [`progress`] sinks
//!   can observe partial progress (`--progress` on the `fleet` /
//!   `fleet-shard` CLIs). With [`ExecutorOptions::profile_cache`]
//!   (`--profile-cache`), each worker additionally memoizes synthesized
//!   streams in a lock-free per-thread [`ppg_data::WindowCache`], so devices
//!   sharing a subject/activity profile replay one session instead of
//!   re-synthesizing it — byte-identical output, merged hit/miss counters
//!   via [`ProgressSink::profile_cache`],
//! * [`report`] — the aggregation layer: MAE percentiles (p50/p90/p99,
//!   exact nearest-rank with integer-math ranks), per-device energy and
//!   projected battery-life distributions, an offload-fraction histogram and
//!   constraint-violation counts, all serializable via serde. Aggregation is
//!   incremental — [`FleetAccumulator`] folds device reports one at a time,
//!   and [`FleetReport::from_devices`] is that fold over a slice,
//! * [`shard`] / [`merge`] — scale-out: a [`ShardSpec`] cuts the device-id
//!   range into contiguous shards that can run on any process or host, each
//!   producing a serializable [`ShardReport`] artifact; [`merge::merge`]
//!   validates the artifacts and folds them into a [`FleetReport`]
//!   **byte-identical** to a single-process run, and
//!   [`merge::MergeAccumulator`] / [`merge::merge_stream`] do the same
//!   incrementally — one artifact in memory at a time, which is how the
//!   `fleet-merge` binary scales to arbitrarily many shards. The
//!   single-process path itself is "run one shard, then merge", so the
//!   paths can never drift.
//!
//! ## Example
//!
//! ```
//! use fleet::{FleetSimulation, ScenarioMix};
//!
//! let simulation = FleetSimulation::new(42, ScenarioMix::balanced()).unwrap();
//! let outcome = simulation.run(16, 4).unwrap();
//! assert_eq!(outcome.report.devices, 16);
//! // Identical regardless of thread count:
//! assert_eq!(outcome.report, simulation.run(16, 1).unwrap().report);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod executor;
pub mod merge;
pub mod progress;
pub mod report;
pub mod scenario;
pub mod shard;
pub mod sketch;
pub mod sync;

pub use error::{FleetError, MergeError};
pub use executor::{
    run_fleet, run_fleet_range, run_fleet_range_with_progress, run_fleet_with_progress,
    simulate_device, simulate_device_cached, simulate_device_with_progress, ExecutorOptions,
    DEFAULT_PROFILE_CACHE_CAPACITY, PROFILE_CACHE_EVENTS_SERIES,
};
pub use merge::{merge, merge_stream, MergeAccumulator};
pub use progress::{CachePublication, ProgressSink, ProgressSource};
pub use report::{
    DeviceReport, DistributionSummary, FleetAccumulator, FleetReport, ReportMode, SketchInfo,
    SketchedReport, OFFLOAD_HISTOGRAM_BINS,
};
pub use scenario::{DeviceScenario, ScenarioGenerator, ScenarioMix};
pub use shard::{ShardMeta, ShardProvenance, ShardReport, ShardSpec, ENGINE_VERSION};
pub use sketch::{QuantileSketch, DEFAULT_SKETCH_CAPACITY};

use chris_core::{DecisionEngine, Profiler, ProfilingOptions};
use ppg_data::DatasetBuilder;
use ppg_models::zoo::ModelZoo;
use telemetry::MetricsSnapshot;

/// Result of a fleet run: the aggregate report plus the per-device reports
/// (sorted by device id).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// Aggregate fleet statistics.
    pub report: FleetReport,
    /// Per-device results, ordered by device id.
    pub devices: Vec<DeviceReport>,
    /// Workload-deterministic ([`telemetry::Stability::Stable`]) telemetry
    /// folded across all merged shards: windows processed, offload decisions
    /// by backend, model invocations. Identical for any thread count and any
    /// shard partition of the same fleet.
    pub telemetry: MetricsSnapshot,
    /// Sketch accuracy/footprint diagnostics, `Some` iff the run aggregated
    /// in [`ReportMode::Sketch`]: the worst-case rank error of the reported
    /// percentiles, the retained-sample footprint and the compaction count.
    pub sketch: Option<SketchInfo>,
}

/// High-level entry point tying the three layers together.
///
/// Profiles the 60 CHRIS configurations once on a profiling dataset derived
/// from the master seed (the table every smartwatch ships with, as in the
/// paper), then simulates any number of devices against that shared table.
#[derive(Debug, Clone)]
pub struct FleetSimulation {
    generator: ScenarioGenerator,
    zoo: ModelZoo,
    engine: DecisionEngine,
}

impl FleetSimulation {
    /// Number of subjects in the shared profiling dataset.
    pub const PROFILING_SUBJECTS: usize = 2;
    /// Seconds of recording per activity in the shared profiling dataset.
    pub const PROFILING_SECONDS_PER_ACTIVITY: f32 = 24.0;

    /// Creates a simulation for a master seed and a scenario mix.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError`] when profiling the configuration table fails.
    pub fn new(master_seed: u64, mix: ScenarioMix) -> Result<Self, FleetError> {
        let zoo = ModelZoo::paper_setup();
        // The profiling dataset is streamed straight into the profiler:
        // windows are buffered once for the multi-pass table build, but the
        // raw recordings never materialize.
        let profiling_stream = DatasetBuilder::new()
            .subjects(Self::PROFILING_SUBJECTS)
            .seconds_per_activity(Self::PROFILING_SECONDS_PER_ACTIVITY)
            .seed(master_seed)
            .window_stream()?;
        let profiler = Profiler::new(&zoo);
        let table = profiler.profile_all(profiling_stream, ProfilingOptions::default())?;
        Ok(Self {
            generator: ScenarioGenerator::new(master_seed, mix),
            zoo,
            engine: DecisionEngine::new(table),
        })
    }

    /// The scenario generator backing this simulation.
    pub fn generator(&self) -> &ScenarioGenerator {
        &self.generator
    }

    /// The shared, profiled decision engine every simulated device runs.
    pub fn engine(&self) -> &DecisionEngine {
        &self.engine
    }

    /// The model zoo the shared table was profiled against (and that every
    /// simulated device runs on).
    pub fn zoo(&self) -> &ModelZoo {
        &self.zoo
    }

    /// Simulates `devices` devices on `threads` worker threads (0 = one per
    /// available core) and aggregates the results.
    ///
    /// This *is* the sharded path specialized to one shard: the fleet runs as
    /// a single in-process shard whose [`ShardReport`] is fed through
    /// [`merge::merge`], so single-process and sharded execution share one
    /// code path and cannot drift apart.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError`] when the fleet is empty or any device
    /// simulation fails.
    pub fn run(&self, devices: u64, threads: usize) -> Result<FleetOutcome, FleetError> {
        self.run_with_progress(devices, threads, None)
    }

    /// [`FleetSimulation::run`] with an optional [`ProgressSink`] observing
    /// windows processed and devices completed while the fleet executes.
    ///
    /// Progress is purely observational: the returned outcome is
    /// byte-identical with or without a sink.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FleetSimulation::run`].
    pub fn run_with_progress(
        &self,
        devices: u64,
        threads: usize,
        sink: Option<&dyn ProgressSink>,
    ) -> Result<FleetOutcome, FleetError> {
        let options = ExecutorOptions {
            threads,
            ..ExecutorOptions::default()
        };
        self.run_with_options(devices, &options, sink)
    }

    /// [`FleetSimulation::run`] with full [`ExecutorOptions`] — how callers
    /// enable the per-worker profiling-window cache
    /// ([`ExecutorOptions::profile_cache`], the CLI's `--profile-cache`
    /// flag). The outcome is byte-identical for every option combination.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FleetSimulation::run`].
    pub fn run_with_options(
        &self,
        devices: u64,
        options: &ExecutorOptions,
        sink: Option<&dyn ProgressSink>,
    ) -> Result<FleetOutcome, FleetError> {
        if devices == 0 {
            return Err(FleetError::EmptyFleet);
        }
        let spec = ShardSpec::single(devices);
        let shard = self.run_shard_with_options(&spec, 0, options, sink)?;
        merge::merge(vec![shard]).map_err(FleetError::from)
    }

    /// Simulates one shard of a partitioned fleet and returns its
    /// serializable [`ShardReport`] artifact.
    ///
    /// Any shard can run on any process or host: the scenario of each device
    /// is derived purely from `(master seed, device id)`, and the artifact
    /// carries the provenance ([`ShardMeta`]) that [`merge::merge`] later
    /// validates. A shard with an empty device range (possible when
    /// `spec.shards() > spec.devices()`) yields a well-formed artifact with
    /// no device reports.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError::ShardIndexOutOfRange`] when
    /// `index >= spec.shards()`, or the underlying error when a device
    /// simulation fails.
    pub fn run_shard(
        &self,
        spec: &ShardSpec,
        index: u32,
        threads: usize,
    ) -> Result<ShardReport, FleetError> {
        self.run_shard_with_progress(spec, index, threads, None)
    }

    /// [`FleetSimulation::run_shard`] with an optional [`ProgressSink`]:
    /// the shard worker streams every device's windows and reports partial
    /// progress (windows processed, devices completed) as it goes — what the
    /// `fleet-shard --progress` CLI surfaces for very large device ranges.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FleetSimulation::run_shard`].
    pub fn run_shard_with_progress(
        &self,
        spec: &ShardSpec,
        index: u32,
        threads: usize,
        sink: Option<&dyn ProgressSink>,
    ) -> Result<ShardReport, FleetError> {
        let options = ExecutorOptions {
            threads,
            ..ExecutorOptions::default()
        };
        self.run_shard_with_options(spec, index, &options, sink)
    }

    /// [`FleetSimulation::run_shard`] with full [`ExecutorOptions`] (see
    /// [`FleetSimulation::run_with_options`]); shard artifacts are
    /// byte-identical for every option combination.
    ///
    /// # Errors
    ///
    /// Same conditions as [`FleetSimulation::run_shard`].
    pub fn run_shard_with_options(
        &self,
        spec: &ShardSpec,
        index: u32,
        options: &ExecutorOptions,
        sink: Option<&dyn ProgressSink>,
    ) -> Result<ShardReport, FleetError> {
        let range = spec
            .range(index)
            .ok_or_else(|| FleetError::ShardIndexOutOfRange {
                index,
                shards: spec.shards(),
            })?;
        // The shard's run records into a private registry, so its embedded
        // snapshot covers exactly this run — not whatever else the process
        // did — and concurrent shard runs in one process cannot bleed into
        // each other. The full snapshot (durations, cache counters) is
        // re-absorbed into the caller's active registry afterwards; only the
        // Stable subset is embedded in the byte-stable artifact.
        let run_registry = telemetry::Registry::new();
        // Scenario-free execution: the workers derive each device's scenario
        // on demand from (generator, id), so no `Vec<DeviceScenario>` is
        // materialized no matter how large the shard's range is.
        let devices = if range.is_empty() {
            Vec::new()
        } else {
            let _scope = telemetry::scoped(&run_registry);
            run_fleet_range_with_progress(
                &self.generator,
                range.clone(),
                &self.zoo,
                &self.engine,
                options,
                sink,
            )?
        };
        telemetry::active()
            .absorb(&run_registry.snapshot())
            .expect("run series are self-consistent across registries");
        Ok(ShardReport {
            meta: ShardMeta {
                engine_version: ENGINE_VERSION.to_string(),
                master_seed: self.generator.master_seed(),
                mix: *self.generator.mix(),
                report_mode: options.report_mode,
                fleet_devices: spec.devices(),
                shard_count: spec.shards(),
                shard_index: index,
                start: range.start,
                end: range.end,
            },
            devices,
            telemetry: run_registry.snapshot_stable(),
        })
    }
}
