//! # fleet — fleet-scale CHRIS simulation engine
//!
//! The paper evaluates CHRIS one device at a time. A production deployment
//! serves *millions* of wearables whose subjects, activity mixes, BLE link
//! quality, batteries and user constraints all differ. This crate simulates
//! such a fleet: thousands of independent [`chris_core::ChrisRuntime`] device
//! simulations run in parallel and are folded into population-level
//! statistics — the quantities a fleet operator actually watches (error
//! percentiles, battery-life distribution, offload load on phones,
//! constraint-violation counts).
//!
//! The engine has three layers:
//!
//! * [`scenario`] — a deterministic scenario generator: from one master seed
//!   it derives, per device id, the subject physiology (via `ppg-data`
//!   synthesis), the activity schedule, the BLE connection pattern, the
//!   battery capacity, the user constraint and the energy-accounting mode.
//!   A device's scenario depends **only** on `(master seed, device id)`, so
//!   fleets are reproducible and independent of execution order,
//! * [`executor`] — a parallel executor: std scoped threads pull fixed-size
//!   chunks of devices from a shared work queue (work stealing by atomic
//!   cursor). Every device simulation is independent, and results are merged
//!   in device-id order, so reports are **byte-identical for any thread
//!   count**,
//! * [`report`] — the aggregation layer: MAE percentiles (p50/p90/p99),
//!   per-device energy and projected battery-life distributions, an
//!   offload-fraction histogram and constraint-violation counts, all
//!   serializable via serde.
//!
//! ## Example
//!
//! ```
//! use fleet::{FleetSimulation, ScenarioMix};
//!
//! let simulation = FleetSimulation::new(42, ScenarioMix::balanced()).unwrap();
//! let outcome = simulation.run(16, 4).unwrap();
//! assert_eq!(outcome.report.devices, 16);
//! // Identical regardless of thread count:
//! assert_eq!(outcome.report, simulation.run(16, 1).unwrap().report);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod executor;
pub mod report;
pub mod scenario;

pub use error::FleetError;
pub use executor::{run_fleet, simulate_device, ExecutorOptions};
pub use report::{DeviceReport, DistributionSummary, FleetReport, OFFLOAD_HISTOGRAM_BINS};
pub use scenario::{DeviceScenario, ScenarioGenerator, ScenarioMix};

use chris_core::{DecisionEngine, Profiler, ProfilingOptions};
use ppg_data::DatasetBuilder;
use ppg_models::zoo::ModelZoo;

/// Result of a fleet run: the aggregate report plus the per-device reports
/// (sorted by device id).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// Aggregate fleet statistics.
    pub report: FleetReport,
    /// Per-device results, ordered by device id.
    pub devices: Vec<DeviceReport>,
}

/// High-level entry point tying the three layers together.
///
/// Profiles the 60 CHRIS configurations once on a profiling dataset derived
/// from the master seed (the table every smartwatch ships with, as in the
/// paper), then simulates any number of devices against that shared table.
#[derive(Debug, Clone)]
pub struct FleetSimulation {
    generator: ScenarioGenerator,
    zoo: ModelZoo,
    engine: DecisionEngine,
}

impl FleetSimulation {
    /// Number of subjects in the shared profiling dataset.
    pub const PROFILING_SUBJECTS: usize = 2;
    /// Seconds of recording per activity in the shared profiling dataset.
    pub const PROFILING_SECONDS_PER_ACTIVITY: f32 = 24.0;

    /// Creates a simulation for a master seed and a scenario mix.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError`] when profiling the configuration table fails.
    pub fn new(master_seed: u64, mix: ScenarioMix) -> Result<Self, FleetError> {
        let zoo = ModelZoo::paper_setup();
        let profiling_windows = DatasetBuilder::new()
            .subjects(Self::PROFILING_SUBJECTS)
            .seconds_per_activity(Self::PROFILING_SECONDS_PER_ACTIVITY)
            .seed(master_seed)
            .build()?
            .windows();
        let profiler = Profiler::new(&zoo);
        let table = profiler.profile_all(&profiling_windows, ProfilingOptions::default())?;
        Ok(Self {
            generator: ScenarioGenerator::new(master_seed, mix),
            zoo,
            engine: DecisionEngine::new(table),
        })
    }

    /// The scenario generator backing this simulation.
    pub fn generator(&self) -> &ScenarioGenerator {
        &self.generator
    }

    /// The shared, profiled decision engine every simulated device runs.
    pub fn engine(&self) -> &DecisionEngine {
        &self.engine
    }

    /// The model zoo the shared table was profiled against (and that every
    /// simulated device runs on).
    pub fn zoo(&self) -> &ModelZoo {
        &self.zoo
    }

    /// Simulates `devices` devices on `threads` worker threads (0 = one per
    /// available core) and aggregates the results.
    ///
    /// # Errors
    ///
    /// Returns [`FleetError`] when the fleet is empty or any device
    /// simulation fails.
    pub fn run(&self, devices: u64, threads: usize) -> Result<FleetOutcome, FleetError> {
        let scenarios = self.generator.scenarios(devices);
        let options = ExecutorOptions {
            threads,
            ..ExecutorOptions::default()
        };
        let reports = run_fleet(&scenarios, &self.zoo, &self.engine, &options)?;
        let report = FleetReport::from_devices(&reports);
        Ok(FleetOutcome {
            report,
            devices: reports,
        })
    }
}
