//! Exact merging of shard artifacts into a fleet report.
//!
//! [`merge`] folds K [`ShardReport`]s into the [`FleetOutcome`] a
//! single-process run over the same fleet would have produced — not an
//! approximation: the per-device reports are concatenated in device-id order
//! and fed through the same fixed-order reductions
//! ([`FleetReport::from_devices`]), so the merged report serializes
//! **byte-identically** to the single-process one. The population-level
//! MAE/energy claims the paper's evaluation rests on therefore survive
//! scale-out unchanged.
//!
//! Before touching any numbers, [`merge`] proves the artifact set is
//! coherent: same engine version, master seed, scenario mix, fleet size and
//! shard count everywhere; each shard's device list matches its declared
//! range; and the ranges tile `0..fleet_devices` with no overlap and no gap.
//! Any violation is a typed [`MergeError`] — a corrupted report is never
//! emitted.

use crate::error::MergeError;
use crate::report::FleetReport;
use crate::shard::{ShardReport, ENGINE_VERSION};
use crate::FleetOutcome;

/// Merges shard reports into the exact single-process [`FleetOutcome`].
///
/// Shards may be supplied in any order; they are sorted by range start before
/// folding. Empty shards (from a [`crate::ShardSpec`] with more shards than
/// devices) are valid and contribute nothing.
///
/// # Errors
///
/// Returns the [`MergeError`] naming the first incompatibility found:
/// [`MergeError::NoShards`], a provenance mismatch
/// ([`MergeError::VersionMismatch`], [`MergeError::SeedMismatch`],
/// [`MergeError::MixMismatch`], [`MergeError::FleetSizeMismatch`],
/// [`MergeError::ShardCountMismatch`]), an internally inconsistent artifact
/// ([`MergeError::CorruptShard`]) or bad coverage
/// ([`MergeError::OverlappingShards`], [`MergeError::MissingDevices`]).
pub fn merge(mut shards: Vec<ShardReport>) -> Result<FleetOutcome, MergeError> {
    let Some(first) = shards.first() else {
        return Err(MergeError::NoShards);
    };
    let reference = first.meta.clone();

    for shard in &shards {
        let meta = &shard.meta;
        if meta.engine_version != ENGINE_VERSION {
            return Err(MergeError::VersionMismatch {
                expected: ENGINE_VERSION.to_string(),
                found: meta.engine_version.clone(),
            });
        }
        if meta.master_seed != reference.master_seed {
            return Err(MergeError::SeedMismatch {
                expected: reference.master_seed,
                found: meta.master_seed,
            });
        }
        if meta.mix != reference.mix {
            return Err(MergeError::MixMismatch);
        }
        if meta.fleet_devices != reference.fleet_devices {
            return Err(MergeError::FleetSizeMismatch {
                expected: reference.fleet_devices,
                found: meta.fleet_devices,
            });
        }
        if meta.shard_count != reference.shard_count {
            return Err(MergeError::ShardCountMismatch {
                expected: reference.shard_count,
                found: meta.shard_count,
            });
        }
        validate_shard_devices(shard)?;
    }

    shards.sort_by_key(|s| (s.meta.start, s.meta.end));

    // The sorted ranges must tile 0..fleet_devices exactly.
    let mut cursor = 0u64;
    let mut previous = None;
    for shard in &shards {
        let meta = &shard.meta;
        if meta.start < cursor {
            return Err(MergeError::OverlappingShards {
                left: previous.expect("a shard has been seen before any overlap"),
                right: (meta.start, meta.end),
            });
        }
        if meta.start > cursor {
            return Err(MergeError::MissingDevices {
                start: cursor,
                end: meta.start,
            });
        }
        cursor = meta.end;
        if meta.end > meta.start {
            previous = Some((meta.start, meta.end));
        }
    }
    if cursor < reference.fleet_devices {
        return Err(MergeError::MissingDevices {
            start: cursor,
            end: reference.fleet_devices,
        });
    }

    // Concatenating range-sorted shards yields the devices in id order — the
    // exact input a single-process run hands to `FleetReport::from_devices`.
    let devices: Vec<_> = shards.into_iter().flat_map(|s| s.devices).collect();
    let report = FleetReport::from_devices(&devices);
    Ok(FleetOutcome { report, devices })
}

/// Checks that a shard's device list is exactly its declared range, in order.
fn validate_shard_devices(shard: &ShardReport) -> Result<(), MergeError> {
    let meta = &shard.meta;
    let corrupt = |detail: String| MergeError::CorruptShard {
        start: meta.start,
        end: meta.end,
        detail,
    };
    if meta.end < meta.start {
        return Err(corrupt("range end precedes range start".to_string()));
    }
    if meta.end > meta.fleet_devices {
        return Err(corrupt(format!(
            "range exceeds the {}-device fleet",
            meta.fleet_devices
        )));
    }
    let expected = meta.end - meta.start;
    if shard.devices.len() as u64 != expected {
        return Err(corrupt(format!(
            "expected {expected} device reports, found {}",
            shard.devices.len()
        )));
    }
    for (offset, device) in shard.devices.iter().enumerate() {
        let expected_id = meta.start + offset as u64;
        if device.device_id != expected_id {
            return Err(corrupt(format!(
                "expected device {expected_id} at offset {offset}, found {}",
                device.device_id
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::DeviceReport;
    use crate::scenario::ScenarioMix;
    use crate::shard::ShardMeta;
    use chris_core::config::EnergyAccounting;
    use chris_core::decision::UserConstraint;
    use hw_sim::units::Energy;

    fn device(id: u64) -> DeviceReport {
        DeviceReport {
            device_id: id,
            windows: 10,
            mae_bpm: 5.0 + id as f32,
            avg_watch_energy: Energy::from_microjoules(300.0 + id as f64),
            avg_phone_energy: Energy::from_microjoules(30.0),
            offload_fraction: 0.5,
            simple_fraction: 0.3,
            disconnected_fraction: 0.0,
            battery_life_hours: 500.0,
            constraint: UserConstraint::MaxMae(6.0),
            accounting: EnergyAccounting::BleOnly,
            constraint_violated: false,
        }
    }

    fn shard(
        fleet_devices: u64,
        shard_count: u32,
        index: u32,
        start: u64,
        end: u64,
    ) -> ShardReport {
        ShardReport {
            meta: ShardMeta {
                engine_version: ENGINE_VERSION.to_string(),
                master_seed: 42,
                mix: ScenarioMix::balanced(),
                fleet_devices,
                shard_count,
                shard_index: index,
                start,
                end,
            },
            devices: (start..end).map(device).collect(),
        }
    }

    #[test]
    fn merge_of_ordered_shards_matches_direct_aggregation() {
        let merged = merge(vec![shard(8, 2, 0, 0, 4), shard(8, 2, 1, 4, 8)]).unwrap();
        let direct: Vec<_> = (0..8).map(device).collect();
        assert_eq!(merged.devices, direct);
        assert_eq!(merged.report, FleetReport::from_devices(&direct));
    }

    #[test]
    fn shard_order_does_not_matter() {
        let a = merge(vec![shard(8, 2, 0, 0, 4), shard(8, 2, 1, 4, 8)]).unwrap();
        let b = merge(vec![shard(8, 2, 1, 4, 8), shard(8, 2, 0, 0, 4)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_shards_are_valid() {
        let merged = merge(vec![
            shard(2, 4, 0, 0, 1),
            shard(2, 4, 1, 1, 2),
            shard(2, 4, 2, 2, 2),
            shard(2, 4, 3, 2, 2),
        ])
        .unwrap();
        assert_eq!(merged.report.devices, 2);
    }

    #[test]
    fn no_shards_is_rejected() {
        assert_eq!(merge(Vec::new()).unwrap_err(), MergeError::NoShards);
    }

    #[test]
    fn corrupt_device_list_is_rejected() {
        let mut bad = shard(4, 1, 0, 0, 4);
        bad.devices[2].device_id = 99;
        assert!(matches!(
            merge(vec![bad]).unwrap_err(),
            MergeError::CorruptShard {
                start: 0,
                end: 4,
                ..
            }
        ));
        let mut truncated = shard(4, 1, 0, 0, 4);
        truncated.devices.pop();
        assert!(matches!(
            merge(vec![truncated]).unwrap_err(),
            MergeError::CorruptShard { .. }
        ));
    }

    #[test]
    fn range_beyond_the_fleet_is_corrupt() {
        let bad = shard(4, 2, 1, 2, 6);
        assert!(matches!(
            merge(vec![shard(4, 2, 0, 0, 2), bad]).unwrap_err(),
            MergeError::CorruptShard { .. }
        ));
    }
}
