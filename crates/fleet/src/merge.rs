//! Exact merging of shard artifacts into a fleet report.
//!
//! [`merge`] folds K [`ShardReport`]s into the [`FleetOutcome`] a
//! single-process run over the same fleet would have produced — not an
//! approximation: the per-device reports are folded in device-id order
//! through the same fixed-order reductions
//! ([`crate::report::FleetAccumulator`], the engine behind
//! [`FleetReport::from_devices`]), so the merged report serializes
//! **byte-identically** to the single-process one. The population-level
//! MAE/energy claims the paper's evaluation rests on therefore survive
//! scale-out unchanged.
//!
//! Merging is *streaming*: [`MergeAccumulator`] consumes one artifact at a
//! time — validate, fold its devices, drop it — so a consumer reading shard
//! artifacts off disk ([`merge_stream`], the `fleet-merge` binary) holds one
//! artifact plus the per-device scalar samples, never the whole artifact
//! set. [`merge`] is the batch wrapper: it validates every artifact's
//! provenance up front, sorts by range, and feeds the same accumulator.
//!
//! Before any numbers are trusted, the artifact set must prove it is
//! coherent: same engine version, master seed, scenario mix, fleet size and
//! shard count everywhere; each shard's device list matches its declared
//! range; and the ranges tile `0..fleet_devices` with no overlap and no gap.
//! Any violation is a typed [`MergeError`] — a corrupted report is never
//! emitted.

use telemetry::MetricsSnapshot;

use crate::error::MergeError;
use crate::report::{FleetAccumulator, FleetReport, ReportMode, SketchInfo};
use crate::shard::{ShardMeta, ShardReport, ENGINE_VERSION};
use crate::FleetOutcome;

/// Incremental, validating merge of shard artifacts.
///
/// Push shards in **ascending device-range order** (the order `fleet-merge`
/// establishes by sorting artifact metadata first); each push validates the
/// shard against the accumulated provenance and tiling cursor, folds its
/// devices into a [`FleetAccumulator`], and lets the caller drop the
/// artifact. [`MergeAccumulator::finalize`] proves the pushed ranges covered
/// the whole fleet and returns the aggregate report — byte-identical to a
/// single-process run over the same fleet.
#[derive(Debug, Clone, Default)]
pub struct MergeAccumulator {
    reference: Option<ShardMeta>,
    cursor: u64,
    /// Last non-empty range folded, for overlap diagnostics.
    previous: Option<(u64, u64)>,
    /// Aggregation mode pinned by the caller; `None` adopts the mode
    /// declared by the first pushed shard.
    forced_mode: Option<ReportMode>,
    fleet: FleetAccumulator,
    telemetry: MetricsSnapshot,
}

impl MergeAccumulator {
    /// Creates an empty accumulator that adopts the report mode declared by
    /// the first pushed shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty accumulator pinned to `mode`, regardless of what the
    /// pushed shards declare. Shards still have to agree with *each other*
    /// ([`MergeError::ReportModeMismatch`] otherwise) — a forced mode only
    /// selects how the merger re-aggregates their device reports, which is
    /// how an exact artifact set can be rolled up as a sketch.
    pub fn with_mode(mode: ReportMode) -> Self {
        Self {
            forced_mode: Some(mode),
            fleet: FleetAccumulator::with_mode(mode),
            ..Self::default()
        }
    }

    /// The aggregation mode the accumulator folds under. Before the first
    /// push this is the forced mode, or [`ReportMode::Exact`] by default.
    pub fn mode(&self) -> ReportMode {
        self.fleet.mode()
    }

    /// Sketch accuracy/footprint diagnostics, `Some` iff the accumulator is
    /// folding in [`ReportMode::Sketch`]. Read before
    /// [`MergeAccumulator::finalize`], which consumes the accumulator.
    pub fn sketch_info(&self) -> Option<SketchInfo> {
        self.fleet.sketch_info()
    }

    /// Device-id coverage so far: every id below the cursor has been folded.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Number of devices folded so far.
    pub fn devices(&self) -> usize {
        self.fleet.devices()
    }

    /// Telemetry snapshots of the pushed shards, folded series-wise
    /// (counters and histogram buckets add, gauges take the maximum).
    /// Read (or clone) this before [`MergeAccumulator::finalize`], which
    /// consumes the accumulator.
    pub fn telemetry(&self) -> &MetricsSnapshot {
        &self.telemetry
    }

    /// Validates one shard against the artifact set seen so far and folds
    /// its devices into the aggregate.
    ///
    /// # Errors
    ///
    /// Returns the [`MergeError`] naming the first incompatibility: a
    /// provenance mismatch against the first pushed shard, an internally
    /// inconsistent artifact ([`MergeError::CorruptShard`]), or a range that
    /// does not extend the tiling cursor —
    /// [`MergeError::OverlappingShards`] when it starts below it (which is
    /// also what an out-of-order push looks like),
    /// [`MergeError::MissingDevices`] when it leaves a gap. A failed push
    /// leaves the accumulator unchanged.
    pub fn push(&mut self, shard: &ShardReport) -> Result<(), MergeError> {
        let meta = &shard.meta;
        if meta.engine_version != ENGINE_VERSION {
            return Err(MergeError::VersionMismatch {
                expected: ENGINE_VERSION.to_string(),
                found: meta.engine_version.clone(),
            });
        }
        if let Some(reference) = &self.reference {
            if meta.master_seed != reference.master_seed {
                return Err(MergeError::SeedMismatch {
                    expected: reference.master_seed,
                    found: meta.master_seed,
                });
            }
            if meta.mix != reference.mix {
                return Err(MergeError::MixMismatch);
            }
            if meta.fleet_devices != reference.fleet_devices {
                return Err(MergeError::FleetSizeMismatch {
                    expected: reference.fleet_devices,
                    found: meta.fleet_devices,
                });
            }
            if meta.shard_count != reference.shard_count {
                return Err(MergeError::ShardCountMismatch {
                    expected: reference.shard_count,
                    found: meta.shard_count,
                });
            }
            if meta.report_mode != reference.report_mode {
                return Err(MergeError::ReportModeMismatch {
                    expected: reference.report_mode,
                    found: meta.report_mode,
                });
            }
        }
        validate_shard_devices(shard)?;
        if meta.start < self.cursor {
            return Err(MergeError::OverlappingShards {
                left: self
                    .previous
                    .expect("the cursor only advances past pushed ranges"),
                right: (meta.start, meta.end),
            });
        }
        if meta.start > self.cursor {
            return Err(MergeError::MissingDevices {
                start: self.cursor,
                end: meta.start,
            });
        }
        // Fold telemetry through a pure merge *before* mutating anything, so
        // a conflicting snapshot leaves the accumulator unchanged like every
        // other rejection.
        let telemetry =
            self.telemetry
                .merged(&shard.telemetry)
                .map_err(|e| MergeError::TelemetryConflict {
                    detail: e.to_string(),
                })?;

        // The first accepted shard decides the fold mode (unless the caller
        // pinned one); all validation is behind us, so swapping the empty
        // accumulator here cannot lose samples.
        if self.reference.is_none() && self.forced_mode.is_none() {
            let mode = meta.report_mode;
            if mode != self.fleet.mode() {
                self.fleet = FleetAccumulator::with_mode(mode);
            }
        }
        for device in &shard.devices {
            self.fleet.push(device);
        }
        self.cursor = meta.end;
        self.telemetry = telemetry;
        if meta.end > meta.start {
            self.previous = Some((meta.start, meta.end));
        }
        if self.reference.is_none() {
            self.reference = Some(meta.clone());
        }
        Ok(())
    }

    /// Proves the pushed shards covered the whole fleet and returns the
    /// aggregate report.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::NoShards`] when nothing was pushed, or
    /// [`MergeError::MissingDevices`] when the tail of the device-id range
    /// is uncovered.
    pub fn finalize(self) -> Result<FleetReport, MergeError> {
        let Some(reference) = &self.reference else {
            return Err(MergeError::NoShards);
        };
        if self.cursor < reference.fleet_devices {
            return Err(MergeError::MissingDevices {
                start: self.cursor,
                end: reference.fleet_devices,
            });
        }
        Ok(self.fleet.finalize())
    }
}

/// Merges an ordered stream of shard artifacts into the aggregate report,
/// holding only one artifact at a time.
///
/// The streaming counterpart of [`merge`]: artifacts must arrive in
/// ascending device-range order (sort by [`ShardMeta`] first, as
/// `fleet-merge` does), and only the aggregate [`FleetReport`] is produced —
/// per-device reports are folded and dropped, not retained.
///
/// # Errors
///
/// Same conditions as [`MergeAccumulator::push`] and
/// [`MergeAccumulator::finalize`].
pub fn merge_stream<I>(shards: I) -> Result<FleetReport, MergeError>
where
    I: IntoIterator<Item = ShardReport>,
{
    let mut accumulator = MergeAccumulator::new();
    for shard in shards {
        accumulator.push(&shard)?;
    }
    accumulator.finalize()
}

/// Merges shard reports into the exact single-process [`FleetOutcome`].
///
/// Shards may be supplied in any order; they are sorted by range start before
/// folding. Empty shards (from a [`crate::ShardSpec`] with more shards than
/// devices) are valid and contribute nothing.
///
/// # Errors
///
/// Returns the [`MergeError`] naming the first incompatibility found:
/// [`MergeError::NoShards`], a provenance mismatch
/// ([`MergeError::VersionMismatch`], [`MergeError::SeedMismatch`],
/// [`MergeError::MixMismatch`], [`MergeError::FleetSizeMismatch`],
/// [`MergeError::ShardCountMismatch`],
/// [`MergeError::ReportModeMismatch`]), an internally inconsistent artifact
/// ([`MergeError::CorruptShard`]) or bad coverage
/// ([`MergeError::OverlappingShards`], [`MergeError::MissingDevices`]).
pub fn merge(mut shards: Vec<ShardReport>) -> Result<FleetOutcome, MergeError> {
    let Some(first) = shards.first() else {
        return Err(MergeError::NoShards);
    };
    let reference = first.meta.clone();

    // Validate every artifact's provenance before any reordering or folding,
    // so a mismatch anywhere in the set is reported ahead of coverage
    // problems elsewhere (the accumulator re-checks incrementally, but only
    // sees shards up to the first tiling error).
    for shard in &shards {
        let meta = &shard.meta;
        if meta.engine_version != ENGINE_VERSION {
            return Err(MergeError::VersionMismatch {
                expected: ENGINE_VERSION.to_string(),
                found: meta.engine_version.clone(),
            });
        }
        if meta.master_seed != reference.master_seed {
            return Err(MergeError::SeedMismatch {
                expected: reference.master_seed,
                found: meta.master_seed,
            });
        }
        if meta.mix != reference.mix {
            return Err(MergeError::MixMismatch);
        }
        if meta.fleet_devices != reference.fleet_devices {
            return Err(MergeError::FleetSizeMismatch {
                expected: reference.fleet_devices,
                found: meta.fleet_devices,
            });
        }
        if meta.shard_count != reference.shard_count {
            return Err(MergeError::ShardCountMismatch {
                expected: reference.shard_count,
                found: meta.shard_count,
            });
        }
        if meta.report_mode != reference.report_mode {
            return Err(MergeError::ReportModeMismatch {
                expected: reference.report_mode,
                found: meta.report_mode,
            });
        }
        validate_shard_devices(shard)?;
    }

    shards.sort_by_key(|s| (s.meta.start, s.meta.end));

    // Range-sorted shards feed the accumulator in device-id order — the
    // exact fold a single-process run performs in
    // `FleetReport::from_devices`.
    let mut accumulator = MergeAccumulator::new();
    let mut devices = Vec::with_capacity(
        shards
            .iter()
            .map(|shard| shard.devices.len())
            .sum::<usize>(),
    );
    for shard in shards {
        accumulator.push(&shard)?;
        devices.extend(shard.devices);
    }
    let telemetry = accumulator.telemetry().clone();
    let sketch = accumulator.sketch_info();
    let report = accumulator.finalize()?;
    Ok(FleetOutcome {
        report,
        devices,
        telemetry,
        sketch,
    })
}

/// Checks that a shard's device list is exactly its declared range, in order.
fn validate_shard_devices(shard: &ShardReport) -> Result<(), MergeError> {
    let meta = &shard.meta;
    let corrupt = |detail: String| MergeError::CorruptShard {
        start: meta.start,
        end: meta.end,
        detail,
    };
    if meta.end < meta.start {
        return Err(corrupt("range end precedes range start".to_string()));
    }
    if meta.end > meta.fleet_devices {
        return Err(corrupt(format!(
            "range exceeds the {}-device fleet",
            meta.fleet_devices
        )));
    }
    let expected = meta.end - meta.start;
    if shard.devices.len() as u64 != expected {
        return Err(corrupt(format!(
            "expected {expected} device reports, found {}",
            shard.devices.len()
        )));
    }
    for (offset, device) in shard.devices.iter().enumerate() {
        let expected_id = meta.start + offset as u64;
        if device.device_id != expected_id {
            return Err(corrupt(format!(
                "expected device {expected_id} at offset {offset}, found {}",
                device.device_id
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::DeviceReport;
    use crate::scenario::ScenarioMix;
    use crate::shard::ShardMeta;
    use chris_core::config::EnergyAccounting;
    use chris_core::decision::UserConstraint;
    use hw_sim::units::Energy;

    fn device(id: u64) -> DeviceReport {
        DeviceReport {
            device_id: id,
            windows: 10,
            mae_bpm: 5.0 + id as f32,
            avg_watch_energy: Energy::from_microjoules(300.0 + id as f64),
            avg_phone_energy: Energy::from_microjoules(30.0),
            offload_fraction: 0.5,
            simple_fraction: 0.3,
            disconnected_fraction: 0.0,
            battery_life_hours: 500.0,
            constraint: UserConstraint::MaxMae(6.0),
            accounting: EnergyAccounting::BleOnly,
            constraint_violated: false,
        }
    }

    fn shard(
        fleet_devices: u64,
        shard_count: u32,
        index: u32,
        start: u64,
        end: u64,
    ) -> ShardReport {
        ShardReport {
            meta: ShardMeta {
                engine_version: ENGINE_VERSION.to_string(),
                master_seed: 42,
                mix: ScenarioMix::balanced(),
                report_mode: ReportMode::Exact,
                fleet_devices,
                shard_count,
                shard_index: index,
                start,
                end,
            },
            devices: (start..end).map(device).collect(),
            telemetry: MetricsSnapshot::default(),
        }
    }

    #[test]
    fn merge_of_ordered_shards_matches_direct_aggregation() {
        let merged = merge(vec![shard(8, 2, 0, 0, 4), shard(8, 2, 1, 4, 8)]).unwrap();
        let direct: Vec<_> = (0..8).map(device).collect();
        assert_eq!(merged.devices, direct);
        assert_eq!(merged.report, FleetReport::from_devices(&direct));
    }

    #[test]
    fn shard_order_does_not_matter() {
        let a = merge(vec![shard(8, 2, 0, 0, 4), shard(8, 2, 1, 4, 8)]).unwrap();
        let b = merge(vec![shard(8, 2, 1, 4, 8), shard(8, 2, 0, 0, 4)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_shards_are_valid() {
        let merged = merge(vec![
            shard(2, 4, 0, 0, 1),
            shard(2, 4, 1, 1, 2),
            shard(2, 4, 2, 2, 2),
            shard(2, 4, 3, 2, 2),
        ])
        .unwrap();
        assert_eq!(merged.report.devices, 2);
    }

    #[test]
    fn no_shards_is_rejected() {
        assert_eq!(merge(Vec::new()).unwrap_err(), MergeError::NoShards);
        assert_eq!(merge_stream(Vec::new()).unwrap_err(), MergeError::NoShards);
    }

    #[test]
    fn streaming_merge_matches_batch_merge() {
        let shards = vec![
            shard(8, 3, 0, 0, 3),
            shard(8, 3, 1, 3, 6),
            shard(8, 3, 2, 6, 8),
        ];
        let batch = merge(shards.clone()).unwrap();
        let streamed = merge_stream(shards).unwrap();
        assert_eq!(streamed, batch.report);
        assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&batch.report).unwrap()
        );
    }

    #[test]
    fn accumulator_folds_one_artifact_at_a_time() {
        let mut accumulator = MergeAccumulator::new();
        for piece in [shard(8, 2, 0, 0, 4), shard(8, 2, 1, 4, 8)] {
            accumulator.push(&piece).unwrap();
            // The artifact is dropped here; only the fold survives.
        }
        assert_eq!(accumulator.cursor(), 8);
        assert_eq!(accumulator.devices(), 8);
        let direct: Vec<_> = (0..8).map(device).collect();
        assert_eq!(
            accumulator.finalize().unwrap(),
            FleetReport::from_devices(&direct)
        );
    }

    #[test]
    fn streaming_push_rejects_gaps_and_out_of_order_ranges() {
        // A gap surfaces immediately, not at finalize.
        let mut accumulator = MergeAccumulator::new();
        accumulator.push(&shard(8, 2, 0, 0, 4)).unwrap();
        assert_eq!(
            accumulator.push(&shard(8, 2, 1, 6, 8)).unwrap_err(),
            MergeError::MissingDevices { start: 4, end: 6 }
        );

        // Out-of-order (or duplicate) ranges look like overlap against the
        // cursor; `merge_stream` requires ascending range order.
        let mut accumulator = MergeAccumulator::new();
        accumulator.push(&shard(8, 2, 1, 4, 8)).unwrap_err();
        // First-push gap: [4, 8) cannot open the fleet.
        assert_eq!(accumulator.cursor(), 0);
        let mut accumulator = MergeAccumulator::new();
        accumulator.push(&shard(8, 2, 0, 0, 4)).unwrap();
        assert_eq!(
            accumulator.push(&shard(8, 2, 0, 0, 4)).unwrap_err(),
            MergeError::OverlappingShards {
                left: (0, 4),
                right: (0, 4),
            }
        );

        // An uncovered tail is caught at finalize.
        let mut accumulator = MergeAccumulator::new();
        accumulator.push(&shard(8, 2, 0, 0, 4)).unwrap();
        assert_eq!(
            accumulator.finalize().unwrap_err(),
            MergeError::MissingDevices { start: 4, end: 8 }
        );
    }

    #[test]
    fn failed_push_leaves_the_accumulator_unchanged() {
        let mut accumulator = MergeAccumulator::new();
        accumulator.push(&shard(8, 2, 0, 0, 4)).unwrap();
        let mut corrupt = shard(8, 2, 1, 4, 8);
        corrupt.devices[1].device_id = 99;
        accumulator.push(&corrupt).unwrap_err();
        assert_eq!(accumulator.cursor(), 4);
        assert_eq!(accumulator.devices(), 4);
        accumulator.push(&shard(8, 2, 1, 4, 8)).unwrap();
        assert_eq!(accumulator.finalize().unwrap().devices, 8);
    }

    #[test]
    fn corrupt_device_list_is_rejected() {
        let mut bad = shard(4, 1, 0, 0, 4);
        bad.devices[2].device_id = 99;
        assert!(matches!(
            merge(vec![bad]).unwrap_err(),
            MergeError::CorruptShard {
                start: 0,
                end: 4,
                ..
            }
        ));
        let mut truncated = shard(4, 1, 0, 0, 4);
        truncated.devices.pop();
        assert!(matches!(
            merge(vec![truncated]).unwrap_err(),
            MergeError::CorruptShard { .. }
        ));
    }

    #[test]
    fn telemetry_folds_across_shards_and_conflicts_reject_atomically() {
        use telemetry::{CounterSample, Stability};
        let counter = |value| CounterSample {
            name: "chris_windows_total".to_string(),
            labels: Vec::new(),
            help: "Windows processed".to_string(),
            stability: Stability::Stable,
            value,
        };
        let mut a = shard(8, 2, 0, 0, 4);
        a.telemetry.counters.push(counter(10));
        let mut b = shard(8, 2, 1, 4, 8);
        b.telemetry.counters.push(counter(32));

        let merged = merge(vec![a.clone(), b.clone()]).unwrap();
        assert_eq!(
            merged.telemetry.counter_value("chris_windows_total", &[]),
            Some(42)
        );

        // A snapshot whose metadata conflicts is rejected like any other bad
        // artifact — and the failed push leaves the accumulator unchanged.
        let mut accumulator = MergeAccumulator::new();
        accumulator.push(&a).unwrap();
        let mut bad = b;
        bad.telemetry.counters[0].help = "renamed help".to_string();
        assert!(matches!(
            accumulator.push(&bad).unwrap_err(),
            MergeError::TelemetryConflict { .. }
        ));
        assert_eq!(accumulator.cursor(), 4);
        assert_eq!(
            accumulator
                .telemetry()
                .counter_value("chris_windows_total", &[]),
            Some(10)
        );
    }

    #[test]
    fn sketch_mode_shards_merge_to_the_direct_sketch_fold() {
        let mut a = shard(8, 2, 0, 0, 4);
        let mut b = shard(8, 2, 1, 4, 8);
        a.meta.report_mode = ReportMode::Sketch;
        b.meta.report_mode = ReportMode::Sketch;
        let merged = merge(vec![a.clone(), b]).unwrap();
        let direct: Vec<_> = (0..8).map(device).collect();
        assert_eq!(
            merged.report,
            FleetReport::from_devices_with_mode(&direct, ReportMode::Sketch)
        );
        assert!(merged.sketch.is_some());

        // Mixed-mode artifact sets are refused, batch and streaming alike,
        // and the failed push leaves the accumulator unchanged.
        let exact = shard(8, 2, 1, 4, 8);
        let mismatch = MergeError::ReportModeMismatch {
            expected: ReportMode::Sketch,
            found: ReportMode::Exact,
        };
        assert_eq!(merge(vec![a.clone(), exact.clone()]).unwrap_err(), mismatch);
        let mut accumulator = MergeAccumulator::new();
        accumulator.push(&a).unwrap();
        assert_eq!(accumulator.mode(), ReportMode::Sketch);
        assert_eq!(accumulator.push(&exact).unwrap_err(), mismatch);
        assert_eq!(accumulator.cursor(), 4);

        // A forced mode re-aggregates an exact artifact set as a sketch.
        let mut forced = MergeAccumulator::with_mode(ReportMode::Sketch);
        assert_eq!(forced.mode(), ReportMode::Sketch);
        for piece in [shard(8, 2, 0, 0, 4), shard(8, 2, 1, 4, 8)] {
            forced.push(&piece).unwrap();
        }
        assert!(forced.sketch_info().is_some());
        assert_eq!(
            forced.finalize().unwrap(),
            FleetReport::from_devices_with_mode(&direct, ReportMode::Sketch)
        );
    }

    #[test]
    fn range_beyond_the_fleet_is_corrupt() {
        let bad = shard(4, 2, 1, 2, 6);
        assert!(matches!(
            merge(vec![shard(4, 2, 0, 0, 2), bad]).unwrap_err(),
            MergeError::CorruptShard { .. }
        ));
    }
}
