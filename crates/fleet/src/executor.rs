//! Parallel fleet execution over std scoped threads.
//!
//! Devices are distributed through a shared atomic cursor over fixed-size
//! chunks — a minimal work-stealing queue: fast workers simply claim more
//! chunks. Every device simulation is a pure function of its scenario and
//! the shared (read-only) zoo + decision engine, and results are merged in
//! device order afterwards, so the output is byte-identical for any thread
//! count and any scheduling interleaving.
//!
//! Workers are *scenario-free*: [`run_fleet_range`] hands each worker only a
//! [`ScenarioGenerator`] and a device-id range, and the worker derives each
//! [`DeviceScenario`] on demand as it claims ids — one scenario alive per
//! worker, never a materialized `Vec<DeviceScenario>` (asserted by
//! [`metrics::peak_live_scenarios`] in `tests/scenario_free.rs`). A
//! billion-device shard therefore costs O(threads) scenario memory. The
//! slice-based [`run_fleet`] is a thin wrapper over the same core for
//! callers that already hold scenarios.
//!
//! The executor is the per-process layer of the scale-out story: both the
//! single-process path ([`crate::FleetSimulation::run`]) and every
//! `fleet-shard` worker drive their device range through [`run_fleet_range`],
//! so a sharded fleet and a single-process fleet execute identical per-device
//! work — only the partitioning and the final [`crate::merge::merge`]
//! differ.

use std::borrow::Cow;
use std::ops::Range;
use std::sync::Mutex;

use crate::sync::atomic::{AtomicU64, Ordering};

use chris_core::runtime::{ChrisRuntime, RuntimeOptions};
use chris_core::{ChrisError, DecisionEngine, RunReport};
use hw_sim::battery::{Battery, HWATCH_BATTERY_VOLTAGE, HWATCH_CONVERTER_EFFICIENCY};
use ppg_data::{IntoWindowSource, WindowCache, WindowSource};
use ppg_models::zoo::ModelZoo;
use telemetry::Stability;

use crate::error::FleetError;
use crate::progress::{ProgressSink, ProgressSource};
use crate::report::{DeviceReport, ReportMode};
use crate::scenario::{DeviceScenario, ScenarioGenerator};

/// Instrumentation gauges for scenario materialization.
///
/// A facade over the process-global [`telemetry`] registry (the gauges keep
/// their original process-wide semantics, independent of any worker scope) —
/// the `scenario_free` integration test uses them to prove that the
/// generator-backed execution path keeps at most one generated
/// [`DeviceScenario`] alive per worker thread, instead of materializing the
/// whole range up front.
pub mod metrics {
    use std::sync::OnceLock;
    use telemetry::{Gauge, Stability};

    /// Series name of the currently-alive generated-scenario gauge.
    pub const LIVE_SCENARIOS_SERIES: &str = "chris_live_generated_scenarios";

    /// Series name of the generated-scenario high-water-mark gauge.
    pub const PEAK_SCENARIOS_SERIES: &str = "chris_peak_live_scenarios";

    fn live() -> &'static Gauge {
        static LIVE: OnceLock<Gauge> = OnceLock::new();
        LIVE.get_or_init(|| {
            telemetry::global()
                .gauge(
                    LIVE_SCENARIOS_SERIES,
                    &[],
                    "Generated scenarios currently alive inside executor workers",
                    Stability::Observational,
                )
                .expect("scenario gauge registration cannot fail")
        })
    }

    fn peak() -> &'static Gauge {
        static PEAK: OnceLock<Gauge> = OnceLock::new();
        PEAK.get_or_init(|| {
            telemetry::global()
                .gauge(
                    PEAK_SCENARIOS_SERIES,
                    &[],
                    "High-water mark of live generated scenarios since the last reset",
                    Stability::Observational,
                )
                .expect("scenario gauge registration cannot fail")
        })
    }

    /// Generated scenarios currently alive inside executor workers.
    pub fn live_generated_scenarios() -> usize {
        usize::try_from(live().value()).unwrap_or(0)
    }

    /// High-water mark of [`live_generated_scenarios`] since the last
    /// [`reset_peak`].
    pub fn peak_live_scenarios() -> usize {
        usize::try_from(peak().value()).unwrap_or(0)
    }

    /// Resets the peak gauge (the live gauge is self-balancing).
    pub fn reset_peak() {
        peak().set(live().value());
    }

    /// RAII guard accounting one generated scenario's lifetime.
    pub(crate) struct GeneratedScenario;

    impl GeneratedScenario {
        pub(crate) fn track() -> Self {
            let gauge = live();
            gauge.add(1);
            peak().set_max(gauge.value());
            Self
        }
    }

    impl Drop for GeneratedScenario {
        fn drop(&mut self) {
            live().sub(1);
        }
    }
}

/// Where a worker gets the scenario of work item `index`: a caller-provided
/// slice (the legacy eager path) or on-demand derivation from a generator
/// and a device-id range (the scenario-free path).
enum ScenarioSupply<'a> {
    Slice(&'a [DeviceScenario]),
    Generated {
        generator: &'a ScenarioGenerator,
        range: Range<u64>,
    },
}

impl ScenarioSupply<'_> {
    /// Number of work items (devices) supplied. An inverted range is empty
    /// (Rust `Range` convention), not an underflow.
    fn len(&self) -> u64 {
        match self {
            ScenarioSupply::Slice(scenarios) => scenarios.len() as u64,
            ScenarioSupply::Generated { range, .. } => range.end.saturating_sub(range.start),
        }
    }

    /// The scenario of work item `index` — borrowed from the slice, or
    /// derived on demand (and owned by the caller, so it is dropped before
    /// the worker claims its next item).
    fn scenario(&self, index: u64) -> Cow<'_, DeviceScenario> {
        match self {
            ScenarioSupply::Slice(scenarios) => Cow::Borrowed(&scenarios[index as usize]),
            ScenarioSupply::Generated { generator, range } => {
                Cow::Owned(generator.scenario(range.start + index))
            }
        }
    }
}

/// Upper bound on the projected battery life, in hours (≈11 years). Keeps
/// the distribution finite for pathological near-zero average power.
pub const BATTERY_LIFE_CAP_HOURS: f64 = 100_000.0;

/// Default per-worker capacity of the profiling-window cache when it is
/// enabled without an explicit size (the `--profile-cache` CLI flag).
pub const DEFAULT_PROFILE_CACHE_CAPACITY: usize = 256;

/// Knobs of the parallel executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorOptions {
    /// Worker thread count; `0` means one worker per available core.
    pub threads: usize,
    /// Devices claimed per queue pop. Larger chunks amortize contention,
    /// smaller chunks balance better when device workloads differ.
    pub chunk_size: usize,
    /// Per-worker profiling-window cache: `None` disables memoization
    /// entirely, `Some(capacity)` gives every worker thread its own
    /// lock-free [`WindowCache`] of that capacity (0 = always miss,
    /// `usize::MAX` = unbounded), so devices whose scenarios share a
    /// [`DeviceScenario::window_cache_key`] replay one synthesized stream.
    /// Reports are byte-identical for every setting; the merged hit/miss
    /// counters surface through [`ProgressSink::profile_cache`].
    pub profile_cache: Option<usize>,
    /// How the run's device reports are aggregated:
    /// [`ReportMode::Exact`] keeps every per-device sample (O(devices)
    /// memory), [`ReportMode::Sketch`] folds them into mergeable
    /// [`crate::QuantileSketch`]es with a surfaced worst-case rank-error
    /// bound (O(log devices) memory). The mode is stamped into
    /// [`crate::ShardMeta`], so artifact sets cannot silently mix modes.
    pub report_mode: ReportMode,
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            chunk_size: 8,
            profile_cache: None,
            report_mode: ReportMode::Exact,
        }
    }
}

impl ExecutorOptions {
    fn effective_threads(&self, devices: usize) -> usize {
        let requested = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.threads
        };
        requested.clamp(1, devices.max(1))
    }
}

/// Simulates one device: streams its windows straight out of the synthesizer
/// into CHRIS under the device's constraint and schedule, and projects
/// battery life.
///
/// Each call owns a fresh [`ChrisRuntime`] built from clones of the shared
/// zoo and engine, which is what lets workers run devices concurrently
/// without sharing mutable state. The session is never materialized: the
/// runtime pulls windows one at a time from
/// [`DeviceScenario::window_stream`], so peak per-device memory is one
/// activity segment plus one window instead of the whole session vector
/// (asserted by the `streaming` integration test via
/// [`ppg_data::stream::metrics`]).
///
/// # Errors
///
/// Returns [`FleetError::Device`], carrying the device id, when data
/// synthesis, the runtime or the battery model fails for this device.
pub fn simulate_device(
    scenario: &DeviceScenario,
    zoo: &ModelZoo,
    engine: &DecisionEngine,
) -> Result<DeviceReport, FleetError> {
    simulate_device_with_progress(scenario, zoo, engine, None)
}

/// [`simulate_device`] with an optional [`ProgressSink`] observing every
/// pulled window and the device's completion.
///
/// # Errors
///
/// Same conditions as [`simulate_device`].
pub fn simulate_device_with_progress(
    scenario: &DeviceScenario,
    zoo: &ModelZoo,
    engine: &DecisionEngine,
    sink: Option<&dyn ProgressSink>,
) -> Result<DeviceReport, FleetError> {
    simulate_device_inner(scenario, zoo, engine, sink, None)
}

/// [`simulate_device`] with a [`WindowCache`]: the device's windows come
/// through [`DeviceScenario::cached_window_stream`], so a cache hit replays
/// an earlier device's synthesized session instead of re-running the
/// synthesizers. The report is byte-identical to the uncached path.
///
/// The cache is `&mut` by design — the executor keeps one per worker thread
/// (lock-free) and merges the counters afterwards.
///
/// # Errors
///
/// Same conditions as [`simulate_device`].
pub fn simulate_device_cached(
    scenario: &DeviceScenario,
    zoo: &ModelZoo,
    engine: &DecisionEngine,
    cache: &mut WindowCache,
    sink: Option<&dyn ProgressSink>,
) -> Result<DeviceReport, FleetError> {
    simulate_device_inner(scenario, zoo, engine, sink, Some(cache))
}

/// Drives one device's runtime over any window source, wrapping it in a
/// [`ProgressSource`] when a sink observes the run. Shared by the fresh
/// ([`ppg_data::SynthWindows`]) and memoized ([`ppg_data::CachedWindows`])
/// streaming paths so they cannot drift.
fn run_windows<S>(
    runtime: &mut ChrisRuntime,
    stream: S,
    scenario: &DeviceScenario,
    sink: Option<&dyn ProgressSink>,
) -> Result<RunReport, ChrisError>
where
    S: WindowSource + IntoWindowSource,
{
    match sink {
        Some(sink) => runtime.run(
            ProgressSource::new(stream, sink, scenario.device_id),
            &scenario.constraint,
            &scenario.schedule,
        ),
        None => runtime.run(stream, &scenario.constraint, &scenario.schedule),
    }
}

/// The shared device-simulation core behind the public `simulate_device*`
/// entry points.
fn simulate_device_inner(
    scenario: &DeviceScenario,
    zoo: &ModelZoo,
    engine: &DecisionEngine,
    sink: Option<&dyn ProgressSink>,
    cache: Option<&mut WindowCache>,
) -> Result<DeviceReport, FleetError> {
    let for_device = |e: FleetError| FleetError::for_device(scenario.device_id, e);
    let options = RuntimeOptions {
        accounting: scenario.accounting,
        seed: scenario.dataset_seed,
        ..RuntimeOptions::default()
    };
    let mut runtime = ChrisRuntime::new(zoo.clone(), engine.clone(), options);
    let run = match cache {
        Some(cache) => {
            let stream = scenario
                .cached_window_stream(cache)
                .map_err(|e| for_device(e.into()))?;
            run_windows(&mut runtime, stream, scenario, sink)
        }
        None => {
            let stream = scenario.window_stream().map_err(|e| for_device(e.into()))?;
            run_windows(&mut runtime, stream, scenario, sink)
        }
    }
    .map_err(|e| for_device(e.into()))?;
    if let Some(sink) = sink {
        sink.device_completed(scenario.device_id, run.windows);
    }

    let battery = Battery::new(
        scenario.battery_capacity_mah,
        HWATCH_BATTERY_VOLTAGE,
        HWATCH_CONVERTER_EFFICIENCY,
    )
    .map_err(|e| for_device(e.into()))?;
    let battery_life_hours =
        (battery.lifetime(run.avg_watch_power()).as_seconds() / 3600.0).min(BATTERY_LIFE_CAP_HOURS);

    let constraint_violated = match scenario.constraint {
        chris_core::UserConstraint::MaxMae(target) => run.mae_bpm > target,
        chris_core::UserConstraint::MaxEnergy(budget) => run.avg_watch_energy > budget,
    };

    Ok(DeviceReport {
        device_id: scenario.device_id,
        windows: run.windows,
        mae_bpm: run.mae_bpm,
        avg_watch_energy: run.avg_watch_energy,
        avg_phone_energy: run.avg_phone_energy,
        offload_fraction: run.offload_fraction,
        simple_fraction: run.simple_fraction,
        disconnected_fraction: run.disconnected_fraction,
        battery_life_hours,
        constraint: scenario.constraint,
        accounting: scenario.accounting,
        constraint_violated,
    })
}

/// Runs every scenario and returns the device reports in device order.
///
/// Thin wrapper over the scenario-free core: the slice is treated as a
/// pre-materialized supply, so eager callers (tests, benches) share the
/// exact worker loop of [`run_fleet_range`].
///
/// # Errors
///
/// Returns [`FleetError::EmptyFleet`] for an empty scenario list; when
/// multiple devices fail, the error of the lowest-indexed device is returned
/// (deterministic for any thread count).
pub fn run_fleet(
    scenarios: &[DeviceScenario],
    zoo: &ModelZoo,
    engine: &DecisionEngine,
    options: &ExecutorOptions,
) -> Result<Vec<DeviceReport>, FleetError> {
    run_fleet_with_progress(scenarios, zoo, engine, options, None)
}

/// [`run_fleet`] with an optional [`ProgressSink`] receiving window- and
/// device-level progress from the worker threads while the fleet runs.
///
/// Attaching a sink never changes the results: reports stay byte-identical
/// for any thread count, with or without progress.
///
/// # Errors
///
/// Same conditions as [`run_fleet`].
pub fn run_fleet_with_progress(
    scenarios: &[DeviceScenario],
    zoo: &ModelZoo,
    engine: &DecisionEngine,
    options: &ExecutorOptions,
    sink: Option<&dyn ProgressSink>,
) -> Result<Vec<DeviceReport>, FleetError> {
    run_supply(
        &ScenarioSupply::Slice(scenarios),
        zoo,
        engine,
        options,
        sink,
    )
}

/// Runs the devices of a contiguous id range, deriving each scenario on
/// demand inside the claiming worker — the scenario-free path.
///
/// No `Vec<DeviceScenario>` is ever built: peak *scenario* memory is one
/// scenario per worker thread regardless of the range size. (The returned
/// `Vec<DeviceReport>` is still O(range) — partition huge fleets into
/// shards sized to what one process can report on.) Reports are returned in
/// device-id order and are byte-identical to running [`run_fleet`] over
/// `generator.scenarios_in(range).collect::<Vec<_>>()`.
///
/// # Errors
///
/// Returns [`FleetError::EmptyFleet`] for an empty range; otherwise the same
/// conditions as [`run_fleet`].
pub fn run_fleet_range(
    generator: &ScenarioGenerator,
    range: Range<u64>,
    zoo: &ModelZoo,
    engine: &DecisionEngine,
    options: &ExecutorOptions,
) -> Result<Vec<DeviceReport>, FleetError> {
    run_fleet_range_with_progress(generator, range, zoo, engine, options, None)
}

/// [`run_fleet_range`] with an optional [`ProgressSink`] observing windows
/// processed and devices completed while the range executes.
///
/// # Errors
///
/// Same conditions as [`run_fleet_range`].
pub fn run_fleet_range_with_progress(
    generator: &ScenarioGenerator,
    range: Range<u64>,
    zoo: &ModelZoo,
    engine: &DecisionEngine,
    options: &ExecutorOptions,
    sink: Option<&dyn ProgressSink>,
) -> Result<Vec<DeviceReport>, FleetError> {
    run_supply(
        &ScenarioSupply::Generated { generator, range },
        zoo,
        engine,
        options,
        sink,
    )
}

/// Simulates one work item of a supply, tracking generated-scenario
/// lifetimes so tests can assert the scenario-free memory bound.
fn simulate_index(
    supply: &ScenarioSupply<'_>,
    index: u64,
    zoo: &ModelZoo,
    engine: &DecisionEngine,
    sink: Option<&dyn ProgressSink>,
    cache: Option<&mut WindowCache>,
) -> Result<DeviceReport, FleetError> {
    let scenario = supply.scenario(index);
    let _live = match &scenario {
        Cow::Owned(_) => Some(metrics::GeneratedScenario::track()),
        Cow::Borrowed(_) => None,
    };
    simulate_device_inner(scenario.as_ref(), zoo, engine, sink, cache)
}

/// Series name of the profiling-window cache event counter (labelled by
/// `result`: `"hit"` or `"miss"`).
pub const PROFILE_CACHE_EVENTS_SERIES: &str = "chris_profile_cache_events_total";

/// Help text of [`PROFILE_CACHE_EVENTS_SERIES`].
pub const PROFILE_CACHE_EVENTS_HELP: &str =
    "Profiling-window cache lookups, by result (hit replays a memoized stream)";

/// Resolves (registering if needed) one cache-event counter on `registry`.
///
/// Cache hit/miss splits depend on work-stealing interleaving, so the series
/// is [`Observational`](Stability::Observational): visible in exposition,
/// never embedded in byte-stable shard artifacts.
fn cache_event_counter(registry: &telemetry::Registry, result: &str) -> telemetry::Counter {
    registry
        .counter(
            PROFILE_CACHE_EVENTS_SERIES,
            &[("result", result)],
            PROFILE_CACHE_EVENTS_HELP,
            Stability::Observational,
        )
        .expect("cache counter registration cannot fail")
}

/// Folds one worker's [`WindowCache`] totals into `registry` — called exactly
/// once per cache, when its owning worker finishes.
fn record_cache_events(registry: &telemetry::Registry, cache: &WindowCache) {
    cache_event_counter(registry, "hit").add(cache.hits());
    cache_event_counter(registry, "miss").add(cache.misses());
}

/// The shared executor core: claims work items from an atomic cursor over
/// the supply, simulates them, and merges the reports in item order.
///
/// Telemetry flows through three registry layers: each worker records into
/// its own private [`telemetry::Registry`] (lock-free, no cross-thread
/// contention), workers fold their snapshot into a shared batch registry at
/// exit (counter/histogram merging is commutative, so the batch totals are
/// identical for any thread count or interleaving), and the batch is finally
/// absorbed into whatever registry was active when the run started. The
/// merged cache hit/miss totals surface to [`ProgressSink::profile_cache`]
/// straight from the batch snapshot.
fn run_supply(
    supply: &ScenarioSupply<'_>,
    zoo: &ModelZoo,
    engine: &DecisionEngine,
    options: &ExecutorOptions,
    sink: Option<&dyn ProgressSink>,
) -> Result<Vec<DeviceReport>, FleetError> {
    let count = supply.len();
    if count == 0 {
        return Err(FleetError::EmptyFleet);
    }
    let threads = options.effective_threads(usize::try_from(count).unwrap_or(usize::MAX));
    let chunk = options.chunk_size.max(1) as u64;
    let outer = telemetry::active();
    let batch = telemetry::Registry::new();
    if options.profile_cache.is_some() {
        // Eager registration: a run whose caches never hit still exposes
        // zero-valued hit/miss series.
        cache_event_counter(&batch, "hit");
        cache_event_counter(&batch, "miss");
    }

    let reports = if threads == 1 {
        let _scope = telemetry::scoped(&batch);
        let mut cache = options.profile_cache.map(WindowCache::new);
        let reports = (0..count)
            .map(|index| {
                if cancel_requested(sink) {
                    return Err(FleetError::Cancelled);
                }
                simulate_index(supply, index, zoo, engine, sink, cache.as_mut())
            })
            .collect();
        if let Some(cache) = &cache {
            record_cache_events(&batch, cache);
        }
        reports
    } else {
        run_supply_parallel(
            supply,
            zoo,
            engine,
            sink,
            &batch,
            options.profile_cache,
            count,
            threads,
            chunk,
        )
    };

    if options.profile_cache.is_some() {
        if let Some(sink) = sink {
            let snapshot = batch.snapshot();
            let event = |result| {
                snapshot
                    .counter_value(PROFILE_CACHE_EVENTS_SERIES, &[("result", result)])
                    .unwrap_or(0)
            };
            sink.profile_cache(event("hit"), event("miss"));
        }
    }
    outer
        .absorb(&batch.snapshot())
        .expect("executor series are self-consistent across registries");
    reports
}

/// The multi-worker arm of [`run_supply`]: scoped threads over an atomic
/// chunk cursor, one private [`WindowCache`] and [`telemetry::Registry`] per
/// worker, both folded into the shared `batch` exactly once at worker exit.
#[allow(clippy::too_many_arguments)]
fn run_supply_parallel(
    supply: &ScenarioSupply<'_>,
    zoo: &ModelZoo,
    engine: &DecisionEngine,
    sink: Option<&dyn ProgressSink>,
    batch: &telemetry::Registry,
    profile_cache: Option<usize>,
    count: u64,
    threads: usize,
    chunk: u64,
) -> Result<Vec<DeviceReport>, FleetError> {
    let cursor = AtomicU64::new(0);
    let capacity = usize::try_from(count).unwrap_or(usize::MAX);
    let collected: Mutex<Vec<(u64, Result<DeviceReport, FleetError>)>> =
        Mutex::new(Vec::with_capacity(capacity));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // One cache and one registry per worker: no synchronization
                // on the hot path, and counters merge once at worker exit.
                let worker = telemetry::Registry::new();
                let _scope = telemetry::scoped(&worker);
                let mut cache = profile_cache.map(WindowCache::new);
                let mut local = Vec::new();
                // Compare-exchange claims instead of `fetch_add`: the cursor
                // never moves past `count`, so id ranges near `u64::MAX`
                // cannot overflow it.
                'claims: while let Some(claimed) = claim_chunk(&cursor, count, chunk) {
                    for index in claimed {
                        if cancel_requested(sink) {
                            break 'claims;
                        }
                        local.push((
                            index,
                            simulate_index(supply, index, zoo, engine, sink, cache.as_mut()),
                        ));
                    }
                }
                if let Some(cache) = &cache {
                    record_cache_events(&worker, cache);
                }
                batch
                    .absorb(&worker.snapshot())
                    .expect("worker series are self-consistent across registries");
                collected
                    .lock()
                    .expect("no worker panics while holding the results lock")
                    .extend(local);
            });
        }
    });

    let mut merged = collected
        .into_inner()
        .expect("all workers joined before the lock is consumed");
    merged.sort_by_key(|&(index, _)| index);
    if (merged.len() as u64) < count {
        // Workers stopped claiming before the cursor was exhausted — the
        // sink requested cancellation. A device failure observed before the
        // cancellation point still wins (lowest index, deterministic), so a
        // real error is never masked as a mere cancellation.
        for (_, result) in merged {
            result?;
        }
        return Err(FleetError::Cancelled);
    }
    debug_assert_eq!(merged.len() as u64, count);
    merged.into_iter().map(|(_, result)| result).collect()
}

/// Whether the sink (if any) has asked the run to stop. Polled between
/// devices, so cancellation lands on a device boundary.
fn cancel_requested(sink: Option<&dyn ProgressSink>) -> bool {
    sink.is_some_and(ProgressSink::should_cancel)
}

/// Claims the next chunk of work-item indices, or `None` when the supply is
/// exhausted.
///
/// Invariant (exhaustively model-checked in
/// `fleet/tests/interleave_harness.rs::executor_cursor_*`): across any set
/// of concurrently claiming workers, the returned ranges exactly tile
/// `0..count` — disjoint, gap-free, and never past `count` — even with all
/// orderings Relaxed and spurious `compare_exchange_weak` failures. Public
/// so the interleaving harness drives the exact production code path.
pub fn claim_chunk(cursor: &AtomicU64, count: u64, chunk: u64) -> Option<Range<u64>> {
    // relaxed: advisory first read; the CAS below is what claims.
    let mut start = cursor.load(Ordering::Relaxed);
    loop {
        if start >= count {
            return None;
        }
        let end = start.saturating_add(chunk).min(count);
        // relaxed: the CAS only partitions the index space — ranges are
        // disjoint by RMW atomicity alone. Work items are read-only shared
        // state published before the workers were spawned, and results flow
        // back through channel/join edges, so no payload rides this cursor.
        match cursor.compare_exchange_weak(start, end, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return Some(start..end),
            Err(observed) => start = observed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioGenerator, ScenarioMix};
    use chris_core::{Profiler, ProfilingOptions};
    use ppg_data::DatasetBuilder;

    fn shared_engine(zoo: &ModelZoo) -> DecisionEngine {
        let windows = DatasetBuilder::new()
            .subjects(1)
            .seconds_per_activity(16.0)
            .seed(1)
            .build()
            .unwrap()
            .windows();
        let profiler = Profiler::new(zoo);
        DecisionEngine::new(
            profiler
                .profile_all(&windows, ProfilingOptions::default())
                .unwrap(),
        )
    }

    #[test]
    fn empty_fleet_is_rejected() {
        let zoo = ModelZoo::paper_setup();
        let engine = shared_engine(&zoo);
        assert!(matches!(
            run_fleet(&[], &zoo, &engine, &ExecutorOptions::default()),
            Err(FleetError::EmptyFleet)
        ));
    }

    #[test]
    fn parallel_and_sequential_results_are_identical() {
        let zoo = ModelZoo::paper_setup();
        let engine = shared_engine(&zoo);
        let scenarios: Vec<_> = ScenarioGenerator::new(9, ScenarioMix::balanced())
            .scenarios(12)
            .collect();
        let sequential = run_fleet(
            &scenarios,
            &zoo,
            &engine,
            &ExecutorOptions {
                threads: 1,
                chunk_size: 8,
                ..ExecutorOptions::default()
            },
        )
        .unwrap();
        let parallel = run_fleet(
            &scenarios,
            &zoo,
            &engine,
            &ExecutorOptions {
                threads: 4,
                chunk_size: 2,
                ..ExecutorOptions::default()
            },
        )
        .unwrap();
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.len(), 12);
        for (i, report) in sequential.iter().enumerate() {
            assert_eq!(report.device_id, i as u64);
            assert!(report.windows > 0);
        }
    }

    #[test]
    fn range_execution_matches_slice_execution() {
        let zoo = ModelZoo::paper_setup();
        let engine = shared_engine(&zoo);
        let generator = ScenarioGenerator::new(9, ScenarioMix::balanced());
        let scenarios: Vec<_> = generator.scenarios_in(3..11).collect();
        let options = ExecutorOptions {
            threads: 3,
            chunk_size: 2,
            ..ExecutorOptions::default()
        };
        let eager = run_fleet(&scenarios, &zoo, &engine, &options).unwrap();
        let scenario_free = run_fleet_range(&generator, 3..11, &zoo, &engine, &options).unwrap();
        assert_eq!(eager, scenario_free);
        assert_eq!(scenario_free.len(), 8);
        for (offset, report) in scenario_free.iter().enumerate() {
            assert_eq!(report.device_id, 3 + offset as u64);
        }
    }

    #[test]
    fn empty_range_is_rejected() {
        let zoo = ModelZoo::paper_setup();
        let engine = shared_engine(&zoo);
        let generator = ScenarioGenerator::new(9, ScenarioMix::balanced());
        assert!(matches!(
            run_fleet_range(&generator, 5..5, &zoo, &engine, &ExecutorOptions::default()),
            Err(FleetError::EmptyFleet)
        ));
        // An inverted range is empty by Rust convention — EmptyFleet, not a
        // subtraction underflow.
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = 5..3;
        assert!(matches!(
            run_fleet_range(
                &generator,
                inverted,
                &zoo,
                &engine,
                &ExecutorOptions::default()
            ),
            Err(FleetError::EmptyFleet)
        ));
    }

    #[test]
    fn chunk_claims_tile_the_supply_without_overflow() {
        let cursor = AtomicU64::new(0);
        let mut seen = Vec::new();
        while let Some(range) = claim_chunk(&cursor, 10, 4) {
            seen.push(range);
        }
        assert_eq!(seen, vec![0..4, 4..8, 8..10]);
        assert!(claim_chunk(&cursor, 10, 4).is_none());

        // A cursor near u64::MAX saturates instead of wrapping.
        let cursor = AtomicU64::new(u64::MAX - 3);
        assert_eq!(
            claim_chunk(&cursor, u64::MAX, 8),
            Some(u64::MAX - 3..u64::MAX)
        );
        assert!(claim_chunk(&cursor, u64::MAX, 8).is_none());
    }

    #[test]
    fn cancellation_aborts_at_a_device_boundary() {
        use std::sync::atomic::AtomicUsize;

        /// Sink that requests cancellation once `after` devices completed.
        struct CancelAfter {
            after: usize,
            completed: AtomicUsize,
        }

        impl ProgressSink for CancelAfter {
            fn windows_processed(&self, _device_id: u64, _count: usize) {}

            fn device_completed(&self, _device_id: u64, _windows: usize) {
                // relaxed: cross-thread test counter; the assertion below
                // reads it after the executor joined its workers.
                self.completed.fetch_add(1, Ordering::Relaxed);
            }

            fn should_cancel(&self) -> bool {
                // relaxed: a stale count only delays cancellation by one
                // poll — exactly what the test's tolerance range allows.
                self.completed.load(Ordering::Relaxed) >= self.after
            }
        }

        let zoo = ModelZoo::paper_setup();
        let engine = shared_engine(&zoo);
        let scenarios: Vec<_> = ScenarioGenerator::new(9, ScenarioMix::balanced())
            .scenarios(8)
            .collect();
        // Both executor arms must honor the hook: with 4 workers over
        // 2-device chunks, every worker re-polls before its second device,
        // so at most `threads` devices complete after the request.
        for threads in [1usize, 4] {
            let sink = CancelAfter {
                after: 2,
                completed: AtomicUsize::new(0),
            };
            let result = run_fleet_with_progress(
                &scenarios,
                &zoo,
                &engine,
                &ExecutorOptions {
                    threads,
                    chunk_size: 2,
                    ..ExecutorOptions::default()
                },
                Some(&sink),
            );
            assert!(
                matches!(result, Err(FleetError::Cancelled)),
                "threads={threads}: expected Cancelled, got {result:?}"
            );
            // relaxed: read after the executor returned (workers joined).
            let completed = sink.completed.load(Ordering::Relaxed);
            assert!(
                (2..8).contains(&completed),
                "threads={threads}: cancellation should stop the run partway, \
                 completed={completed}"
            );
        }

        // A sink that cancels immediately aborts before any device runs.
        let sink = CancelAfter {
            after: 0,
            completed: AtomicUsize::new(0),
        };
        let result = run_fleet_with_progress(
            &scenarios,
            &zoo,
            &engine,
            &ExecutorOptions::default(),
            Some(&sink),
        );
        assert!(matches!(result, Err(FleetError::Cancelled)));
        // relaxed: read after the executor returned (workers joined).
        assert_eq!(sink.completed.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn battery_failure_reports_the_device_id() {
        let zoo = ModelZoo::paper_setup();
        let engine = shared_engine(&zoo);
        let mut scenario = ScenarioGenerator::new(2, ScenarioMix::balanced()).scenario(41);
        scenario.battery_capacity_mah = 0.0;
        let err = simulate_device(&scenario, &zoo, &engine).unwrap_err();
        assert!(
            matches!(err, FleetError::Device { device_id: 41, .. }),
            "expected a device-tagged error, got {err:?}"
        );
        assert!(err.to_string().contains("device 41"));
    }

    #[test]
    fn offline_devices_never_offload() {
        let zoo = ModelZoo::paper_setup();
        let engine = shared_engine(&zoo);
        let generator = ScenarioGenerator::new(21, ScenarioMix::harsh());
        let scenarios: Vec<_> = (0..200)
            .map(|id| generator.scenario(id))
            .filter(|s| s.schedule == hw_sim::ble::ConnectionSchedule::NeverConnected)
            .take(3)
            .collect();
        assert!(
            !scenarios.is_empty(),
            "harsh mix should produce offline devices"
        );
        for report in run_fleet(&scenarios, &zoo, &engine, &ExecutorOptions::default()).unwrap() {
            assert_eq!(report.offload_fraction, 0.0);
            assert_eq!(report.disconnected_fraction, 1.0);
        }
    }
}
