//! Parallel fleet execution over std scoped threads.
//!
//! Devices are distributed through a shared atomic cursor over fixed-size
//! chunks — a minimal work-stealing queue: fast workers simply claim more
//! chunks. Every device simulation is a pure function of its scenario and
//! the shared (read-only) zoo + decision engine, and results are merged in
//! device order afterwards, so the output is byte-identical for any thread
//! count and any scheduling interleaving.
//!
//! The executor is the per-process layer of the scale-out story: both the
//! single-process path ([`crate::FleetSimulation::run`]) and every
//! `fleet-shard` worker drive their device range through [`run_fleet`], so a
//! sharded fleet and a single-process fleet execute identical per-device
//! work — only the partitioning and the final [`crate::merge::merge`]
//! differ.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use chris_core::runtime::{ChrisRuntime, RuntimeOptions};
use chris_core::DecisionEngine;
use hw_sim::battery::{Battery, HWATCH_BATTERY_VOLTAGE, HWATCH_CONVERTER_EFFICIENCY};
use ppg_models::zoo::ModelZoo;

use crate::error::FleetError;
use crate::progress::{ProgressSink, ProgressSource};
use crate::report::DeviceReport;
use crate::scenario::DeviceScenario;

/// Upper bound on the projected battery life, in hours (≈11 years). Keeps
/// the distribution finite for pathological near-zero average power.
pub const BATTERY_LIFE_CAP_HOURS: f64 = 100_000.0;

/// Knobs of the parallel executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorOptions {
    /// Worker thread count; `0` means one worker per available core.
    pub threads: usize,
    /// Devices claimed per queue pop. Larger chunks amortize contention,
    /// smaller chunks balance better when device workloads differ.
    pub chunk_size: usize,
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            chunk_size: 8,
        }
    }
}

impl ExecutorOptions {
    fn effective_threads(&self, devices: usize) -> usize {
        let requested = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            self.threads
        };
        requested.clamp(1, devices.max(1))
    }
}

/// Simulates one device: streams its windows straight out of the synthesizer
/// into CHRIS under the device's constraint and schedule, and projects
/// battery life.
///
/// Each call owns a fresh [`ChrisRuntime`] built from clones of the shared
/// zoo and engine, which is what lets workers run devices concurrently
/// without sharing mutable state. The session is never materialized: the
/// runtime pulls windows one at a time from
/// [`DeviceScenario::window_stream`], so peak per-device memory is one
/// activity segment plus one window instead of the whole session vector
/// (asserted by the `streaming` integration test via
/// [`ppg_data::stream::metrics`]).
///
/// # Errors
///
/// Returns [`FleetError::Device`], carrying the device id, when data
/// synthesis, the runtime or the battery model fails for this device.
pub fn simulate_device(
    scenario: &DeviceScenario,
    zoo: &ModelZoo,
    engine: &DecisionEngine,
) -> Result<DeviceReport, FleetError> {
    simulate_device_with_progress(scenario, zoo, engine, None)
}

/// [`simulate_device`] with an optional [`ProgressSink`] observing every
/// pulled window and the device's completion.
///
/// # Errors
///
/// Same conditions as [`simulate_device`].
pub fn simulate_device_with_progress(
    scenario: &DeviceScenario,
    zoo: &ModelZoo,
    engine: &DecisionEngine,
    sink: Option<&dyn ProgressSink>,
) -> Result<DeviceReport, FleetError> {
    let for_device = |e: FleetError| FleetError::for_device(scenario.device_id, e);
    let stream = scenario.window_stream().map_err(|e| for_device(e.into()))?;
    let options = RuntimeOptions {
        accounting: scenario.accounting,
        seed: scenario.dataset_seed,
        ..RuntimeOptions::default()
    };
    let mut runtime = ChrisRuntime::new(zoo.clone(), engine.clone(), options);
    let run = match sink {
        Some(sink) => runtime.run(
            ProgressSource::new(stream, sink, scenario.device_id),
            &scenario.constraint,
            &scenario.schedule,
        ),
        None => runtime.run(stream, &scenario.constraint, &scenario.schedule),
    }
    .map_err(|e| for_device(e.into()))?;
    if let Some(sink) = sink {
        sink.device_completed(scenario.device_id, run.windows);
    }

    let battery = Battery::new(
        scenario.battery_capacity_mah,
        HWATCH_BATTERY_VOLTAGE,
        HWATCH_CONVERTER_EFFICIENCY,
    )
    .map_err(|e| for_device(e.into()))?;
    let battery_life_hours =
        (battery.lifetime(run.avg_watch_power()).as_seconds() / 3600.0).min(BATTERY_LIFE_CAP_HOURS);

    let constraint_violated = match scenario.constraint {
        chris_core::UserConstraint::MaxMae(target) => run.mae_bpm > target,
        chris_core::UserConstraint::MaxEnergy(budget) => run.avg_watch_energy > budget,
    };

    Ok(DeviceReport {
        device_id: scenario.device_id,
        windows: run.windows,
        mae_bpm: run.mae_bpm,
        avg_watch_energy: run.avg_watch_energy,
        avg_phone_energy: run.avg_phone_energy,
        offload_fraction: run.offload_fraction,
        simple_fraction: run.simple_fraction,
        disconnected_fraction: run.disconnected_fraction,
        battery_life_hours,
        constraint: scenario.constraint,
        accounting: scenario.accounting,
        constraint_violated,
    })
}

/// Runs every scenario and returns the device reports in device order.
///
/// # Errors
///
/// Returns [`FleetError::EmptyFleet`] for an empty scenario list; when
/// multiple devices fail, the error of the lowest-indexed device is returned
/// (deterministic for any thread count).
pub fn run_fleet(
    scenarios: &[DeviceScenario],
    zoo: &ModelZoo,
    engine: &DecisionEngine,
    options: &ExecutorOptions,
) -> Result<Vec<DeviceReport>, FleetError> {
    run_fleet_with_progress(scenarios, zoo, engine, options, None)
}

/// [`run_fleet`] with an optional [`ProgressSink`] receiving window- and
/// device-level progress from the worker threads while the fleet runs.
///
/// Attaching a sink never changes the results: reports stay byte-identical
/// for any thread count, with or without progress.
///
/// # Errors
///
/// Same conditions as [`run_fleet`].
pub fn run_fleet_with_progress(
    scenarios: &[DeviceScenario],
    zoo: &ModelZoo,
    engine: &DecisionEngine,
    options: &ExecutorOptions,
    sink: Option<&dyn ProgressSink>,
) -> Result<Vec<DeviceReport>, FleetError> {
    if scenarios.is_empty() {
        return Err(FleetError::EmptyFleet);
    }
    let threads = options.effective_threads(scenarios.len());
    let chunk = options.chunk_size.max(1);

    if threads == 1 {
        return scenarios
            .iter()
            .map(|scenario| simulate_device_with_progress(scenario, zoo, engine, sink))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, Result<DeviceReport, FleetError>)>> =
        Mutex::new(Vec::with_capacity(scenarios.len()));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= scenarios.len() {
                        break;
                    }
                    let end = (start + chunk).min(scenarios.len());
                    for (index, scenario) in scenarios[start..end].iter().enumerate() {
                        local.push((
                            start + index,
                            simulate_device_with_progress(scenario, zoo, engine, sink),
                        ));
                    }
                }
                collected
                    .lock()
                    .expect("no worker panics while holding the results lock")
                    .extend(local);
            });
        }
    });

    let mut merged = collected
        .into_inner()
        .expect("all workers joined before the lock is consumed");
    merged.sort_by_key(|&(index, _)| index);
    debug_assert_eq!(merged.len(), scenarios.len());
    merged.into_iter().map(|(_, result)| result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ScenarioGenerator, ScenarioMix};
    use chris_core::{Profiler, ProfilingOptions};
    use ppg_data::DatasetBuilder;

    fn shared_engine(zoo: &ModelZoo) -> DecisionEngine {
        let windows = DatasetBuilder::new()
            .subjects(1)
            .seconds_per_activity(16.0)
            .seed(1)
            .build()
            .unwrap()
            .windows();
        let profiler = Profiler::new(zoo);
        DecisionEngine::new(
            profiler
                .profile_all(&windows, ProfilingOptions::default())
                .unwrap(),
        )
    }

    #[test]
    fn empty_fleet_is_rejected() {
        let zoo = ModelZoo::paper_setup();
        let engine = shared_engine(&zoo);
        assert!(matches!(
            run_fleet(&[], &zoo, &engine, &ExecutorOptions::default()),
            Err(FleetError::EmptyFleet)
        ));
    }

    #[test]
    fn parallel_and_sequential_results_are_identical() {
        let zoo = ModelZoo::paper_setup();
        let engine = shared_engine(&zoo);
        let scenarios: Vec<_> = ScenarioGenerator::new(9, ScenarioMix::balanced())
            .scenarios(12)
            .collect();
        let sequential = run_fleet(
            &scenarios,
            &zoo,
            &engine,
            &ExecutorOptions {
                threads: 1,
                chunk_size: 8,
            },
        )
        .unwrap();
        let parallel = run_fleet(
            &scenarios,
            &zoo,
            &engine,
            &ExecutorOptions {
                threads: 4,
                chunk_size: 2,
            },
        )
        .unwrap();
        assert_eq!(sequential, parallel);
        assert_eq!(sequential.len(), 12);
        for (i, report) in sequential.iter().enumerate() {
            assert_eq!(report.device_id, i as u64);
            assert!(report.windows > 0);
        }
    }

    #[test]
    fn battery_failure_reports_the_device_id() {
        let zoo = ModelZoo::paper_setup();
        let engine = shared_engine(&zoo);
        let mut scenario = ScenarioGenerator::new(2, ScenarioMix::balanced()).scenario(41);
        scenario.battery_capacity_mah = 0.0;
        let err = simulate_device(&scenario, &zoo, &engine).unwrap_err();
        assert!(
            matches!(err, FleetError::Device { device_id: 41, .. }),
            "expected a device-tagged error, got {err:?}"
        );
        assert!(err.to_string().contains("device 41"));
    }

    #[test]
    fn offline_devices_never_offload() {
        let zoo = ModelZoo::paper_setup();
        let engine = shared_engine(&zoo);
        let generator = ScenarioGenerator::new(21, ScenarioMix::harsh());
        let scenarios: Vec<_> = (0..200)
            .map(|id| generator.scenario(id))
            .filter(|s| s.schedule == hw_sim::ble::ConnectionSchedule::NeverConnected)
            .take(3)
            .collect();
        assert!(
            !scenarios.is_empty(),
            "harsh mix should produce offline devices"
        );
        for report in run_fleet(&scenarios, &zoo, &engine, &ExecutorOptions::default()).unwrap() {
            assert_eq!(report.offload_fraction, 0.0);
            assert_eq!(report.disconnected_fraction, 1.0);
        }
    }
}
