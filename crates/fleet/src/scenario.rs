//! Deterministic per-device scenario generation.
//!
//! A fleet is described by a *master seed* and a [`ScenarioMix`] — the knobs
//! of the population distribution (constraint shares, link quality, battery
//! spread, activity diversity). From those, [`ScenarioGenerator`] derives one
//! [`DeviceScenario`] per device id. The derivation hashes
//! `(master seed, device id)` into an independent RNG stream, so a device's
//! scenario never depends on how many other devices exist or in which order
//! they are generated — the property the executor relies on for
//! thread-count-independent results.

use chris_core::config::EnergyAccounting;
use chris_core::decision::UserConstraint;
use hw_sim::ble::ConnectionSchedule;
use hw_sim::units::Energy;
use ppg_data::{
    Activity, DatasetBuilder, LabeledWindow, MaybeCachedWindows, SynthWindows, WindowCache,
    WindowCacheKey,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Population-level knobs of a fleet.
///
/// All shares are probabilities in `[0, 1]`; all `(lo, hi)` pairs are sampled
/// uniformly (a pair with `hi <= lo` pins the value to `lo`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioMix {
    /// Share of devices running a `MaxMae` constraint (the rest run
    /// `MaxEnergy`).
    pub max_mae_share: f64,
    /// Range of MAE targets for `MaxMae` devices, in BPM.
    pub mae_target_bpm: (f32, f32),
    /// Range of per-prediction energy budgets for `MaxEnergy` devices, in mJ.
    pub energy_budget_mj: (f64, f64),
    /// Share of devices with a non-perfect BLE link.
    pub flaky_link_share: f64,
    /// Among flaky devices, share that are fully offline (phone out of
    /// range), exercising the local-only fallback.
    pub offline_share: f64,
    /// Lower bound on link availability for flaky (duty-cycled) devices.
    pub min_link_availability: f64,
    /// Range of battery capacities, in mAh.
    pub battery_capacity_mah: (f64, f64),
    /// Range of recording length per activity, in seconds.
    pub seconds_per_activity: (f32, f32),
    /// Range of how many of the nine activities each device performs.
    pub activity_count: (usize, usize),
    /// When true, the energy-accounting mode is sampled uniformly from
    /// [`EnergyAccounting::ALL`]; otherwise every device uses the default.
    pub accounting_sweep: bool,
    /// Number of distinct *synthesis profiles* (dataset seed, activity
    /// schedule, recording length) in the population, `0` for "every device
    /// distinct". When positive, device `id` draws its synthesis profile
    /// from pool slot `id % subject_pool` — the cohort shape real fleets
    /// have (many devices per calibration profile), and the one that lets
    /// the profiling-window cache ([`crate::ExecutorOptions::profile_cache`])
    /// actually hit: devices in one slot share a
    /// [`DeviceScenario::window_cache_key`]. Constraints, links, batteries
    /// and accounting stay per-device in either case.
    pub subject_pool: u64,
}

impl ScenarioMix {
    /// A representative mix: two-thirds `MaxMae` devices, a quarter with a
    /// flaky link, full battery and activity diversity.
    pub fn balanced() -> Self {
        Self {
            max_mae_share: 0.67,
            mae_target_bpm: (5.0, 8.0),
            energy_budget_mj: (0.25, 0.75),
            flaky_link_share: 0.25,
            offline_share: 0.2,
            min_link_availability: 0.5,
            battery_capacity_mah: (250.0, 450.0),
            seconds_per_activity: (16.0, 32.0),
            activity_count: (4, 9),
            accounting_sweep: false,
            subject_pool: 0,
        }
    }

    /// A hostile mix: tight constraints, mostly degraded or absent links,
    /// small batteries — the worst corner of the deployment envelope.
    pub fn harsh() -> Self {
        Self {
            max_mae_share: 0.5,
            mae_target_bpm: (4.8, 5.6),
            energy_budget_mj: (0.2, 0.35),
            flaky_link_share: 0.8,
            offline_share: 0.35,
            min_link_availability: 0.25,
            battery_capacity_mah: (150.0, 300.0),
            seconds_per_activity: (16.0, 32.0),
            activity_count: (6, 9),
            accounting_sweep: true,
            subject_pool: 0,
        }
    }

    /// An office-like mix: phone always reachable, relaxed error targets,
    /// mostly sedentary activity schedules.
    pub fn connected() -> Self {
        Self {
            max_mae_share: 0.8,
            mae_target_bpm: (5.6, 9.0),
            energy_budget_mj: (0.3, 0.75),
            flaky_link_share: 0.0,
            offline_share: 0.0,
            min_link_availability: 1.0,
            battery_capacity_mah: (300.0, 450.0),
            seconds_per_activity: (16.0, 32.0),
            activity_count: (2, 5),
            accounting_sweep: false,
            subject_pool: 0,
        }
    }

    /// The [`ScenarioMix::balanced`] population with a 16-profile
    /// [`subject_pool`](ScenarioMix::subject_pool): devices cluster into
    /// cohorts sharing calibration data and activity schedules, the shape
    /// that makes the `--profile-cache` memoization pay off.
    pub fn cohort() -> Self {
        Self {
            subject_pool: 16,
            ..Self::balanced()
        }
    }

    /// Looks a preset mix up by name (`balanced`, `harsh`, `connected`,
    /// `cohort`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "balanced" => Some(Self::balanced()),
            "harsh" => Some(Self::harsh()),
            "connected" => Some(Self::connected()),
            "cohort" => Some(Self::cohort()),
            _ => None,
        }
    }

    /// The names accepted by [`ScenarioMix::from_name`].
    pub const PRESETS: [&'static str; 4] = ["balanced", "harsh", "connected", "cohort"];
}

impl Default for ScenarioMix {
    fn default() -> Self {
        Self::balanced()
    }
}

/// Everything that distinguishes one simulated device from another.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceScenario {
    /// Device id within the fleet.
    pub device_id: u64,
    /// Seed of the device's synthetic recording (subject physiology included)
    /// and of its calibrated-estimator error streams.
    pub dataset_seed: u64,
    /// The activities this device's wearer performs, in difficulty order.
    pub activities: Vec<Activity>,
    /// Seconds of recording per activity.
    pub seconds_per_activity: f32,
    /// The wearer's soft constraint.
    pub constraint: UserConstraint,
    /// How offloaded windows are charged to the smartwatch.
    pub accounting: EnergyAccounting,
    /// BLE availability over the device's windows.
    pub schedule: ConnectionSchedule,
    /// Battery capacity in mAh (at the HWatch's 3.7 V).
    pub battery_capacity_mah: f64,
}

impl DeviceScenario {
    /// Streams the device's labeled windows lazily, synthesizing them on
    /// demand from `(dataset seed, activity schedule)`.
    ///
    /// The executor's path: at most one activity segment of raw signal and
    /// one window are alive per device, instead of the whole session — the
    /// collected stream is element-wise identical to the legacy eager
    /// [`DeviceScenario::windows`] vector.
    ///
    /// # Errors
    ///
    /// Returns [`ppg_data::DataError`] when the sampled parameters are
    /// rejected by the dataset builder (cannot happen for mixes whose ranges
    /// respect the builder's invariants).
    pub fn window_stream(&self) -> Result<SynthWindows, ppg_data::DataError> {
        self.dataset_builder().window_stream()
    }

    /// The dataset builder describing this device's session — the one place
    /// the scenario's synthesis parameters become builder state, shared by
    /// the streaming, cached and key-derivation paths.
    fn dataset_builder(&self) -> DatasetBuilder {
        DatasetBuilder::new()
            .subjects(1)
            .seconds_per_activity(self.seconds_per_activity)
            .seed(self.dataset_seed)
            .activities(&self.activities)
    }

    /// The memoization key of this device's window stream: everything that
    /// determines the synthesized windows — `(dataset seed, activity
    /// schedule, seconds per activity)` — and **not** the device id, so
    /// devices sharing a subject/activity profile share one cache entry.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeviceScenario::window_stream`].
    pub fn window_cache_key(&self) -> Result<WindowCacheKey, ppg_data::DataError> {
        self.dataset_builder().window_cache_key()
    }

    /// Streams the device's labeled windows through a [`WindowCache`]:
    /// the first device with a given [`DeviceScenario::window_cache_key`]
    /// synthesizes and materializes the session once, and every later device
    /// with an equal key replays the shared buffer instead of re-running
    /// [`SynthWindows`]. The replay is element-wise identical to
    /// [`DeviceScenario::window_stream`], so reports are byte-identical with
    /// or without the cache.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeviceScenario::window_stream`].
    pub fn cached_window_stream(
        &self,
        cache: &mut WindowCache,
    ) -> Result<MaybeCachedWindows<SynthWindows>, ppg_data::DataError> {
        self.dataset_builder().cached_window_stream(cache)
    }

    /// Exact number of windows the device's session yields, computed from
    /// the schedule geometry without synthesizing any signal.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeviceScenario::window_stream`].
    pub fn window_count(&self) -> Result<usize, ppg_data::DataError> {
        Ok(self.window_stream()?.len())
    }

    /// Synthesizes the device's labeled windows eagerly.
    ///
    /// Thin `collect()` wrapper over [`DeviceScenario::window_stream`] kept
    /// for tests and offline analysis; the executor streams instead.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DeviceScenario::window_stream`].
    pub fn windows(&self) -> Result<Vec<LabeledWindow>, ppg_data::DataError> {
        ppg_data::collect_windows(self.window_stream()?)
    }
}

/// SplitMix64 finalizer: decorrelates consecutive inputs into independent
/// 64-bit streams.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives the RNG seed of a device's scenario stream. Depends only on
/// `(master_seed, device_id)`.
pub fn device_stream_seed(master_seed: u64, device_id: u64) -> u64 {
    splitmix64(splitmix64(master_seed) ^ splitmix64(device_id.wrapping_mul(0xA076_1D64_78BD_642F)))
}

/// Domain separator for subject-pool streams: keeps the shared
/// synthesis-profile draws of pool slot `s` independent from the per-device
/// scenario stream of device id `s`.
const SUBJECT_POOL_SALT: u64 = 0x5EED_C0DE_5A17_ED00;

/// Draws one synthesis profile — recording length, activity schedule,
/// dataset seed — from `rng`. The tail of every scenario derivation; for
/// pooled mixes it runs on a slot-shared stream instead of the device's own.
fn synthesis_profile(rng: &mut StdRng, mix: &ScenarioMix) -> (f32, Vec<Activity>, u64) {
    let seconds_per_activity = sample_f32(rng, mix.seconds_per_activity);

    let (lo, hi) = mix.activity_count;
    let lo = lo.clamp(1, Activity::ALL.len());
    let hi = hi.clamp(1, Activity::ALL.len());
    let count = if hi > lo {
        rng.random_range(lo..=hi)
    } else {
        lo
    };
    // Partial Fisher-Yates: pick `count` distinct activities, then keep
    // them in difficulty order so HR trajectories chain canonically.
    let mut pool: Vec<usize> = (0..Activity::ALL.len()).collect();
    for i in 0..count {
        let j = rng.random_range(i..pool.len());
        pool.swap(i, j);
    }
    let mut chosen = pool[..count].to_vec();
    chosen.sort_unstable();
    let activities: Vec<Activity> = chosen.into_iter().map(|i| Activity::ALL[i]).collect();

    let dataset_seed: u64 = rng.random();
    (seconds_per_activity, activities, dataset_seed)
}

/// Derives [`DeviceScenario`]s from a master seed and a [`ScenarioMix`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioGenerator {
    master_seed: u64,
    mix: ScenarioMix,
}

fn sample_f32(rng: &mut StdRng, (lo, hi): (f32, f32)) -> f32 {
    if hi > lo {
        rng.random_range(lo..hi)
    } else {
        lo
    }
}

fn sample_f64(rng: &mut StdRng, (lo, hi): (f64, f64)) -> f64 {
    if hi > lo {
        rng.random_range(lo..hi)
    } else {
        lo
    }
}

impl ScenarioGenerator {
    /// Creates a generator for a master seed and mix.
    pub fn new(master_seed: u64, mix: ScenarioMix) -> Self {
        Self { master_seed, mix }
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The scenario mix.
    pub fn mix(&self) -> &ScenarioMix {
        &self.mix
    }

    /// Derives the scenario of one device.
    pub fn scenario(&self, device_id: u64) -> DeviceScenario {
        let mix = &self.mix;
        let mut rng = StdRng::seed_from_u64(device_stream_seed(self.master_seed, device_id));

        let constraint = if rng.random::<f64>() < mix.max_mae_share {
            UserConstraint::MaxMae(sample_f32(&mut rng, mix.mae_target_bpm))
        } else {
            UserConstraint::MaxEnergy(Energy::from_millijoules(sample_f64(
                &mut rng,
                mix.energy_budget_mj,
            )))
        };

        let schedule = if rng.random::<f64>() < mix.flaky_link_share {
            if rng.random::<f64>() < mix.offline_share {
                ConnectionSchedule::NeverConnected
            } else {
                // A duty cycle whose availability lies in
                // [min_link_availability, 1).
                let availability =
                    sample_f64(&mut rng, (mix.min_link_availability.min(0.95), 0.95));
                let period = rng.random_range(4usize..24);
                let up = ((period as f64 * availability).round() as usize)
                    .clamp(1, period.saturating_sub(1).max(1));
                ConnectionSchedule::DutyCycle {
                    up,
                    down: period - up,
                }
            }
        } else {
            ConnectionSchedule::AlwaysConnected
        };

        let accounting = if mix.accounting_sweep {
            EnergyAccounting::ALL[rng.random_range(0..EnergyAccounting::ALL.len())]
        } else {
            EnergyAccounting::default()
        };

        let battery_capacity_mah = sample_f64(&mut rng, mix.battery_capacity_mah);
        // Pooled mixes draw the synthesis profile from a slot-shared stream,
        // so every device in a slot gets the same (seed, schedule, length) —
        // and therefore the same window-cache key. Distinct mixes draw it
        // from the device's own stream, exactly as before.
        let (seconds_per_activity, activities, dataset_seed) = if mix.subject_pool > 0 {
            let slot = device_id % mix.subject_pool;
            let mut pool_rng = StdRng::seed_from_u64(device_stream_seed(
                self.master_seed ^ SUBJECT_POOL_SALT,
                slot,
            ));
            synthesis_profile(&mut pool_rng, mix)
        } else {
            synthesis_profile(&mut rng, mix)
        };

        DeviceScenario {
            device_id,
            dataset_seed,
            activities,
            seconds_per_activity,
            constraint,
            accounting,
            schedule,
            battery_capacity_mah,
        }
    }

    /// Derives the scenarios of devices `0..count`, lazily.
    ///
    /// Returns an iterator rather than a `Vec`: scenario derivation is pure,
    /// so callers that only need to walk (or count) scenarios never pay for
    /// materializing the whole fleet. Collect when random access is needed.
    pub fn scenarios(&self, count: u64) -> impl Iterator<Item = DeviceScenario> + '_ {
        self.scenarios_in(0..count)
    }

    /// Derives the scenarios of a contiguous device-id range — the unit of
    /// work of one fleet shard — lazily. Because scenarios depend only on
    /// `(master seed, device id)`, a range's scenarios are the same whether
    /// it is generated in one process or split across many.
    ///
    /// The executor does not even collect this iterator: its scenario-free
    /// path ([`crate::executor::run_fleet_range`]) hands workers the
    /// generator itself and lets each worker call
    /// [`ScenarioGenerator::scenario`] for the ids it claims, so per-shard
    /// scenario memory stays O(worker threads) for any range size.
    pub fn scenarios_in(
        &self,
        range: std::ops::Range<u64>,
    ) -> impl Iterator<Item = DeviceScenario> + '_ {
        range.map(|id| self.scenario(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_depends_only_on_master_seed_and_device_id() {
        let a = ScenarioGenerator::new(7, ScenarioMix::balanced());
        let b = ScenarioGenerator::new(7, ScenarioMix::balanced());
        for id in [0u64, 1, 99, 12_345] {
            assert_eq!(a.scenario(id), b.scenario(id));
        }
        // Generating a big fleet does not perturb small-fleet scenarios.
        let big: Vec<_> = a.scenarios(64).collect();
        let small: Vec<_> = a.scenarios(8).collect();
        assert_eq!(&big[..8], &small[..]);
    }

    #[test]
    fn range_generation_matches_per_id_generation() {
        let generator = ScenarioGenerator::new(13, ScenarioMix::balanced());
        let ranged: Vec<_> = generator.scenarios_in(5..9).collect();
        assert_eq!(ranged.len(), 4);
        for (offset, scenario) in ranged.iter().enumerate() {
            assert_eq!(scenario, &generator.scenario(5 + offset as u64));
        }
        assert_eq!(generator.scenarios_in(7..7).count(), 0);
        // Boundary device ids derive valid scenarios without panicking.
        for id in [u64::MAX, u64::MAX - 1] {
            let scenario = generator.scenario(id);
            assert_eq!(scenario.device_id, id);
            assert!(!scenario.activities.is_empty());
        }
    }

    #[test]
    fn different_seeds_and_ids_give_different_scenarios() {
        let a = ScenarioGenerator::new(1, ScenarioMix::balanced());
        let b = ScenarioGenerator::new(2, ScenarioMix::balanced());
        assert_ne!(a.scenario(0), b.scenario(0));
        assert_ne!(a.scenario(0).dataset_seed, a.scenario(1).dataset_seed);
    }

    #[test]
    fn mix_shares_are_respected_in_aggregate() {
        let generator = ScenarioGenerator::new(11, ScenarioMix::balanced());
        let scenarios: Vec<_> = generator.scenarios(400).collect();
        let max_mae = scenarios
            .iter()
            .filter(|s| matches!(s.constraint, UserConstraint::MaxMae(_)))
            .count();
        let share = max_mae as f64 / scenarios.len() as f64;
        assert!((share - 0.67).abs() < 0.1, "MaxMae share {share}");
        let flaky = scenarios
            .iter()
            .filter(|s| s.schedule != ConnectionSchedule::AlwaysConnected)
            .count();
        let share = flaky as f64 / scenarios.len() as f64;
        assert!((share - 0.25).abs() < 0.1, "flaky share {share}");
    }

    #[test]
    fn connected_mix_never_produces_flaky_links() {
        let generator = ScenarioGenerator::new(3, ScenarioMix::connected());
        for s in generator.scenarios(100) {
            assert_eq!(s.schedule, ConnectionSchedule::AlwaysConnected);
            assert!(!s.activities.is_empty() && s.activities.len() <= 5);
        }
    }

    #[test]
    fn scenarios_build_valid_windows() {
        let generator = ScenarioGenerator::new(5, ScenarioMix::harsh());
        let scenario = generator.scenario(17);
        let windows = scenario.windows().unwrap();
        assert!(!windows.is_empty());
        assert!(windows.iter().all(|w| w.ppg.len() == 256));
        // Difficulty order is preserved.
        for pair in scenario.activities.windows(2) {
            assert!(pair[0].difficulty() <= pair[1].difficulty());
        }
    }

    #[test]
    fn window_stream_matches_eager_windows_and_counts() {
        use ppg_data::WindowSource;
        let generator = ScenarioGenerator::new(19, ScenarioMix::balanced());
        let scenario = generator.scenario(3);
        let eager = scenario.windows().unwrap();
        let streamed: Vec<_> = scenario
            .window_stream()
            .unwrap()
            .iter()
            .map(Result::unwrap)
            .collect();
        assert_eq!(streamed, eager);
        assert_eq!(scenario.window_count().unwrap(), eager.len());
    }

    #[test]
    fn cached_window_stream_replays_the_synth_stream_and_shares_keys() {
        use ppg_data::WindowSource;
        let generator = ScenarioGenerator::new(19, ScenarioMix::balanced());
        let scenario = generator.scenario(3);
        // A clone with a different device id shares the cache key: the key
        // excludes the id, so repeated subject/activity profiles hit.
        let mut twin = scenario.clone();
        twin.device_id = 99;
        assert_eq!(
            scenario.window_cache_key().unwrap(),
            twin.window_cache_key().unwrap()
        );
        assert_ne!(
            scenario.window_cache_key().unwrap(),
            generator.scenario(4).window_cache_key().unwrap()
        );

        let mut cache = WindowCache::new(2);
        let eager: Vec<_> = scenario
            .window_stream()
            .unwrap()
            .iter()
            .map(Result::unwrap)
            .collect();
        for expected_hits in [0, 1] {
            let streamed: Vec<_> = twin
                .cached_window_stream(&mut cache)
                .unwrap()
                .iter()
                .map(Result::unwrap)
                .collect();
            assert_eq!(streamed, eager);
            assert_eq!(cache.hits(), expected_hits);
        }
    }

    #[test]
    fn cohort_pool_shares_synthesis_profiles_but_not_the_rest() {
        let generator = ScenarioGenerator::new(23, ScenarioMix::cohort());
        let pool = ScenarioMix::cohort().subject_pool;
        assert_eq!(pool, 16);
        // Devices in the same slot share the synthesis profile (and so the
        // window-cache key) while keeping per-device constraints/links.
        let a = generator.scenario(3);
        let b = generator.scenario(3 + pool);
        assert_eq!(a.dataset_seed, b.dataset_seed);
        assert_eq!(a.activities, b.activities);
        assert_eq!(a.seconds_per_activity, b.seconds_per_activity);
        assert_eq!(a.window_cache_key().unwrap(), b.window_cache_key().unwrap());
        // Different slots get different profiles.
        let c = generator.scenario(4);
        assert_ne!(a.dataset_seed, c.dataset_seed);
        // A fleet of N devices has exactly min(N, pool) distinct keys.
        let distinct: std::collections::HashSet<_> = generator
            .scenarios(64)
            .map(|s| s.window_cache_key().unwrap())
            .collect();
        assert_eq!(distinct.len(), pool as usize);
        // The population stays heterogeneous on the non-synthesis axes.
        let constraints: std::collections::HashSet<_> = generator
            .scenarios(64)
            .map(|s| format!("{}", s.constraint))
            .collect();
        assert!(constraints.len() > 1);
    }

    #[test]
    fn pooled_and_distinct_mixes_agree_on_non_synthesis_fields() {
        // The pool only replaces the synthesis profile; every other sampled
        // field must be identical to the distinct-mix derivation.
        let distinct = ScenarioGenerator::new(31, ScenarioMix::balanced());
        let pooled = ScenarioGenerator::new(31, ScenarioMix::cohort());
        for id in [0u64, 7, 40] {
            let d = distinct.scenario(id);
            let p = pooled.scenario(id);
            assert_eq!(d.constraint, p.constraint);
            assert_eq!(d.schedule, p.schedule);
            assert_eq!(d.accounting, p.accounting);
            assert_eq!(d.battery_capacity_mah, p.battery_capacity_mah);
        }
    }

    #[test]
    fn inverted_activity_count_pins_to_lo_instead_of_panicking() {
        let mix = ScenarioMix {
            activity_count: (5, 3),
            ..ScenarioMix::balanced()
        };
        let scenario = ScenarioGenerator::new(1, mix).scenario(0);
        assert_eq!(scenario.activities.len(), 5);
    }

    #[test]
    fn presets_resolve_by_name() {
        for name in ScenarioMix::PRESETS {
            assert!(ScenarioMix::from_name(name).is_some());
        }
        assert!(ScenarioMix::from_name("nope").is_none());
        assert_eq!(ScenarioMix::default(), ScenarioMix::balanced());
    }
}
