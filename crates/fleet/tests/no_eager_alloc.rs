//! The streaming executor never materializes a full per-device window
//! vector: every eager collect in `ppg-data` bumps a process-global counter
//! (`ppg_data::stream::metrics`), and a fleet run must leave it untouched.
//!
//! This lives in its own integration binary on purpose — other test
//! binaries legitimately call eager `windows()` helpers concurrently, which
//! would race the counter.

use fleet::{ExecutorOptions, FleetSimulation, ScenarioMix};
use ppg_data::stream::metrics;

#[test]
fn fleet_execution_never_collects_a_window_vector() {
    // Setup (profiling) is allowed to buffer its windows once; measure only
    // the execution phase.
    let simulation = FleetSimulation::new(42, ScenarioMix::balanced()).unwrap();

    let before = metrics::eager_collects();
    let outcome = simulation.run(8, 2).unwrap();
    assert_eq!(outcome.report.devices, 8);
    assert!(outcome.report.total_windows > 0);
    assert_eq!(
        metrics::eager_collects(),
        before,
        "the streaming executor materialized a full per-device window vector"
    );

    // The profile cache materializes sessions *inside its bounded store* —
    // a deliberate, capacity-limited memoization that must not register as
    // an eager-collect regression on the executor path.
    let options = ExecutorOptions {
        threads: 2,
        profile_cache: Some(4),
        ..ExecutorOptions::default()
    };
    let cached = simulation.run_with_options(8, &options, None).unwrap();
    assert_eq!(cached.report, outcome.report);
    assert_eq!(
        metrics::eager_collects(),
        before,
        "the cached executor path tripped the eager-collect counter"
    );
}
