//! Fleet-level telemetry integration tests.
//!
//! Locks in the three cross-layer guarantees of the metrics registry:
//!
//! * the [`telemetry::Stability::Stable`] snapshot embedded in a
//!   [`fleet::ShardReport`] depends only on the workload — identical for any
//!   thread count,
//! * merging shard artifacts folds their telemetry into exactly the snapshot
//!   a single-process run over the same fleet produces (proptest-locked
//!   across fleet sizes and shard counts),
//! * the [`fleet::ProgressSink::profile_cache`] callback reports the same
//!   totals the registry's `chris_profile_cache_events_total` series holds —
//!   the sink is a view of the snapshot, not a separate counter island.

use std::sync::{Mutex, OnceLock};

use fleet::{
    merge, ExecutorOptions, FleetSimulation, ProgressSink, ScenarioMix, ShardSpec,
    DEFAULT_PROFILE_CACHE_CAPACITY, PROFILE_CACHE_EVENTS_SERIES,
};
use proptest::prelude::*;

/// One shared simulation: profiling the configuration table dominates test
/// time, and every test wants the same master seed anyway.
fn simulation() -> &'static FleetSimulation {
    static SIM: OnceLock<FleetSimulation> = OnceLock::new();
    SIM.get_or_init(|| FleetSimulation::new(42, ScenarioMix::balanced()).expect("profiling works"))
}

#[test]
fn shard_telemetry_is_stable_across_thread_counts() {
    let sim = simulation();
    let spec = ShardSpec::single(6);
    let one = sim.run_shard(&spec, 0, 1).unwrap();
    let four = sim.run_shard(&spec, 0, 4).unwrap();
    assert_eq!(one.devices, four.devices);
    assert_eq!(one.telemetry, four.telemetry);

    // The embedded snapshot counts exactly the windows the devices report.
    let windows: u64 = one.devices.iter().map(|d| d.windows as u64).sum();
    assert_eq!(
        one.telemetry.counter_value("chris_windows_total", &[]),
        Some(windows)
    );

    // Offload decisions partition the windows: every window executes on
    // exactly one backend.
    let phone = one
        .telemetry
        .counter_value("chris_offload_decisions_total", &[("backend", "phone")])
        .expect("eagerly registered");
    let wearable = one
        .telemetry
        .counter_value("chris_offload_decisions_total", &[("backend", "wearable")])
        .expect("eagerly registered");
    assert_eq!(phone + wearable, windows);

    // Only workload-deterministic series are embedded — durations and cache
    // counters vary run to run and must stay out of byte-stable artifacts.
    assert!(one.telemetry.histograms.is_empty());
    for counter in &one.telemetry.counters {
        assert_eq!(counter.stability, telemetry::Stability::Stable);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn merged_shard_telemetry_matches_the_single_process_run(
        devices in 3u64..8,
        shards in 1u32..4,
        threads in 1usize..3,
    ) {
        let sim = simulation();
        let single = sim.run(devices, 1).unwrap();

        let spec = ShardSpec::new(devices, shards).unwrap();
        let artifacts: Vec<_> = (0..shards)
            .map(|index| sim.run_shard(&spec, index, threads).unwrap())
            .collect();
        let merged = merge::merge(artifacts).unwrap();

        prop_assert_eq!(&merged.report, &single.report);
        prop_assert_eq!(&merged.telemetry, &single.telemetry);
    }
}

/// Sink capturing the one `profile_cache` callback of a run.
#[derive(Default)]
struct CacheSink {
    seen: Mutex<Option<(u64, u64)>>,
}

impl ProgressSink for CacheSink {
    fn windows_processed(&self, _device_id: u64, _count: usize) {}
    fn device_completed(&self, _device_id: u64, _windows: usize) {}
    fn profile_cache(&self, hits: u64, misses: u64) {
        *self.seen.lock().unwrap() = Some((hits, misses));
    }
}

#[test]
fn sink_cache_counters_mirror_the_registry_snapshot() {
    let sim = simulation();
    let registry = telemetry::Registry::new();
    let sink = CacheSink::default();
    let options = ExecutorOptions {
        threads: 2,
        profile_cache: Some(DEFAULT_PROFILE_CACHE_CAPACITY),
        ..ExecutorOptions::default()
    };
    {
        let _scope = telemetry::scoped(&registry);
        sim.run_with_options(8, &options, Some(&sink)).unwrap();
    }

    let (hits, misses) = sink
        .seen
        .lock()
        .unwrap()
        .expect("the executor reports cache counters when the cache is enabled");
    let snapshot = registry.snapshot();
    let event = |result| snapshot.counter_value(PROFILE_CACHE_EVENTS_SERIES, &[("result", result)]);
    assert_eq!(event("hit"), Some(hits));
    assert_eq!(event("miss"), Some(misses));
    // Every device resolves its profile through the cache, so lookups cover
    // the whole fleet.
    assert_eq!(hits + misses, 8);
}
