//! Conformance suite for sharded fleet execution: for random fleets,
//! partitioning the device-id range into K shards, simulating each shard
//! independently and merging the artifacts must reproduce the single-process
//! report **byte-for-byte** — the property that makes population-level
//! MAE/energy claims survive scale-out unchanged.

use std::collections::BTreeSet;

use fleet::{merge, ExecutorOptions, FleetSimulation, ReportMode, ScenarioMix, ShardSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shard boundaries never duplicate or drop a device, for any fleet size
    /// and shard count (including more shards than devices).
    #[test]
    fn shard_ranges_tile_the_fleet(devices in 0u64..100_000, shards in 1u32..=64) {
        let spec = ShardSpec::new(devices, shards).unwrap();
        let ranges = spec.ranges();
        prop_assert_eq!(ranges.len(), shards as usize);
        let mut cursor = 0u64;
        for (index, range) in ranges.iter().enumerate() {
            // Contiguous: no gap, no overlap.
            prop_assert_eq!(range.start, cursor);
            prop_assert!(range.end >= range.start);
            cursor = range.end;
            prop_assert_eq!(spec.range(index as u32).unwrap(), range.clone());
        }
        prop_assert_eq!(cursor, devices);
        prop_assert!(spec.range(shards).is_none());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// End-to-end equivalence: running K shards independently (at an
    /// arbitrary thread count) and merging serializes byte-identically to
    /// the single-process run over the same fleet.
    #[test]
    fn merged_report_is_byte_identical_to_single_process(
        master_seed in 0u64..1000,
        devices in 1u64..40,
        shards in 1u32..=8,
        threads in 1usize..=4,
    ) {
        let simulation = FleetSimulation::new(master_seed, ScenarioMix::balanced()).unwrap();
        let single = simulation.run(devices, 1).unwrap();

        let spec = ShardSpec::new(devices, shards).unwrap();
        let mut artifacts = Vec::new();
        let mut seen_ids = BTreeSet::new();
        for index in 0..shards {
            let shard = simulation.run_shard(&spec, index, threads).unwrap();
            for device in &shard.devices {
                // No device id may appear in two shards.
                prop_assert!(seen_ids.insert(device.device_id));
            }
            // Shard artifacts survive the JSON round trip exactly.
            let json = serde_json::to_string(&shard).unwrap();
            let back: fleet::ShardReport = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(&back, &shard);
            artifacts.push(back);
        }
        // No device id may be dropped.
        let expected_ids: BTreeSet<u64> = (0..devices).collect();
        prop_assert_eq!(seen_ids, expected_ids);

        let merged = merge(artifacts).unwrap();
        prop_assert_eq!(&merged.devices, &single.devices);
        prop_assert_eq!(&merged.report, &single.report);

        let merged_json = serde_json::to_string_pretty(&merged.report).unwrap();
        let single_json = serde_json::to_string_pretty(&single.report).unwrap();
        prop_assert_eq!(merged_json, single_json);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The byte-identity guarantee survives sketch mode: merging
    /// sketch-mode shard artifacts of an arbitrary tiling — in range order
    /// or reversed — serializes byte-identically to the sketch-mode
    /// single-process run.
    #[test]
    fn sketch_mode_merge_is_byte_identical_to_single_process(
        master_seed in 0u64..1000,
        devices in 1u64..30,
        shards in 1u32..=6,
        threads in 1usize..=4,
    ) {
        let options = ExecutorOptions {
            report_mode: ReportMode::Sketch,
            ..ExecutorOptions::default()
        };
        let simulation = FleetSimulation::new(master_seed, ScenarioMix::balanced()).unwrap();
        let single = simulation.run_with_options(devices, &options, None).unwrap();
        prop_assert!(single.sketch.is_some());

        let spec = ShardSpec::new(devices, shards).unwrap();
        let threaded = ExecutorOptions { threads, ..options };
        let mut artifacts = Vec::new();
        for index in 0..shards {
            let shard = simulation
                .run_shard_with_options(&spec, index, &threaded, None)
                .unwrap();
            prop_assert_eq!(shard.meta.report_mode, ReportMode::Sketch);
            // Sketch-mode artifacts survive the JSON round trip exactly.
            let json = serde_json::to_string(&shard).unwrap();
            let back: fleet::ShardReport = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(&back, &shard);
            artifacts.push(back);
        }

        let mut reversed = artifacts.clone();
        reversed.reverse();
        let merged = merge(artifacts).unwrap();
        let merged_reversed = merge(reversed).unwrap();

        for outcome in [&merged, &merged_reversed] {
            prop_assert_eq!(&outcome.devices, &single.devices);
            prop_assert_eq!(&outcome.report, &single.report);
            prop_assert_eq!(&outcome.sketch, &single.sketch);
            prop_assert_eq!(
                serde_json::to_string_pretty(&outcome.report).unwrap(),
                serde_json::to_string_pretty(&single.report).unwrap()
            );
        }
    }
}
