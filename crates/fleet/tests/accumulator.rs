//! Property suite for streaming fleet aggregation: feeding random device
//! reports one at a time through `FleetAccumulator` must serialize
//! byte-identically to the batch `FleetReport::from_devices` over the same
//! slice — including empty and single-device fleets. This is the lock that
//! keeps incremental aggregation (and therefore streaming shard merges)
//! exact rather than approximate.

use chris_core::config::EnergyAccounting;
use chris_core::decision::UserConstraint;
use fleet::{FleetAccumulator, FleetReport, ReportMode};
use hw_sim::units::Energy;
use proptest::prelude::*;

/// Builds one synthetic device report from sampled scalars.
#[allow(clippy::too_many_arguments)]
fn device(
    id: u64,
    windows: usize,
    mae: f32,
    watch_uj: f64,
    phone_uj: f64,
    offload: f32,
    battery_hours: f64,
    max_mae_constraint: bool,
    accounting_index: usize,
    violated: bool,
) -> fleet::DeviceReport {
    fleet::DeviceReport {
        device_id: id,
        windows,
        mae_bpm: mae,
        avg_watch_energy: Energy::from_microjoules(watch_uj),
        avg_phone_energy: Energy::from_microjoules(phone_uj),
        offload_fraction: offload,
        simple_fraction: 0.4,
        disconnected_fraction: 1.0 - offload,
        battery_life_hours: battery_hours,
        constraint: if max_mae_constraint {
            UserConstraint::MaxMae(6.0)
        } else {
            UserConstraint::MaxEnergy(Energy::from_millijoules(0.5))
        },
        accounting: EnergyAccounting::ALL[accounting_index % EnergyAccounting::ALL.len()],
        constraint_violated: violated,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// One-at-a-time accumulation equals batch aggregation, byte for byte.
    #[test]
    fn accumulator_equals_from_devices_byte_for_byte(
        seeds in prop::collection::vec(
            (
                1usize..400,          // windows
                0.1f32..40.0,         // MAE
                (1.0f64..2000.0, 0.0f64..500.0),  // watch / phone energy
                0.0f32..=1.0,         // offload fraction
                1.0f64..5000.0,       // battery life
            ),
            0..40,
        ),
        constraint_bits in prop::collection::vec(prop::bool::ANY, 40),
        accounting_indices in prop::collection::vec(0usize..8, 40),
    ) {
        let devices: Vec<fleet::DeviceReport> = seeds
            .iter()
            .enumerate()
            .map(|(i, (windows, mae, (watch, phone), offload, battery))| {
                device(
                    i as u64,
                    *windows,
                    *mae,
                    *watch,
                    *phone,
                    *offload,
                    *battery,
                    constraint_bits[i],
                    accounting_indices[i],
                    i % 7 == 0,
                )
            })
            .collect();

        let batch = FleetReport::from_devices(&devices);
        let mut accumulator = FleetAccumulator::new();
        for d in &devices {
            accumulator.push(d);
        }
        let streamed = accumulator.finalize();

        prop_assert_eq!(&streamed, &batch);
        // Byte-for-byte: the serialized artifacts are indistinguishable.
        prop_assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&batch).unwrap()
        );

        // The same lock holds in sketch mode — streamed sketch aggregation
        // is byte-identical to the batch sketch fold, and everything
        // non-percentile matches the exact report.
        let sketch_batch = FleetReport::from_devices_with_mode(&devices, ReportMode::Sketch);
        let mut sketch_accumulator = FleetAccumulator::with_mode(ReportMode::Sketch);
        for d in &devices {
            sketch_accumulator.push(d);
        }
        prop_assert_eq!(sketch_accumulator.sketch_info().is_some(), true);
        let sketch_streamed = sketch_accumulator.finalize();
        prop_assert_eq!(&sketch_streamed, &sketch_batch);
        prop_assert_eq!(
            serde_json::to_string(&sketch_streamed).unwrap(),
            serde_json::to_string(&sketch_batch).unwrap()
        );
        prop_assert_eq!(sketch_streamed.total_windows, batch.total_windows);
        prop_assert_eq!(&sketch_streamed.offload_histogram, &batch.offload_histogram);
        prop_assert_eq!(sketch_streamed.constraint_violations, batch.constraint_violations);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The integer-math percentile index is exactly the nearest rank: the
    /// *smallest* 1-based rank covering `p` percent of the sample — never
    /// one past it, which is what the old float `ceil` formulation produced
    /// whenever `p / 100.0` rounded up against an exact-integer rank.
    #[test]
    fn nearest_rank_index_is_the_smallest_covering_rank(
        p in 1u32..=100,
        n in 1usize..100_000,
    ) {
        let index = fleet::DistributionSummary::nearest_rank_index(p, n);
        prop_assert!(index < n);
        let rank = (index + 1) as u128;
        let target = u128::from(p) * n as u128;
        // `rank` samples cover p percent of the population...
        prop_assert!(rank * 100 >= target, "rank {rank} misses p{p} of {n}");
        // ...and no smaller rank does (the overshoot the fix removes).
        prop_assert!(
            (rank - 1) * 100 < target,
            "rank {rank} exceeds the true nearest rank for p{p} of {n}"
        );
    }
}

#[test]
fn empty_fleet_accumulates_to_the_batch_report() {
    let streamed = FleetAccumulator::new().finalize();
    let batch = FleetReport::from_devices(&[]);
    assert_eq!(streamed, batch);
    assert_eq!(
        serde_json::to_string(&streamed).unwrap(),
        serde_json::to_string(&batch).unwrap()
    );
}

#[test]
fn single_device_fleet_accumulates_to_the_batch_report() {
    let only = device(0, 120, 5.5, 420.0, 60.0, 0.35, 900.0, true, 0, false);
    let batch = FleetReport::from_devices(std::slice::from_ref(&only));
    let mut accumulator = FleetAccumulator::new();
    accumulator.push(&only);
    let streamed = accumulator.finalize();
    assert_eq!(streamed, batch);
    assert_eq!(
        serde_json::to_string(&streamed).unwrap(),
        serde_json::to_string(&batch).unwrap()
    );
}
