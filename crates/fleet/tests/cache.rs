//! Conformance suite for the per-worker profiling-window cache: enabling
//! memoization must be **invisible in every output byte** — for arbitrary
//! seeds, mixes, device counts and cache capacities — while the hit/miss
//! accounting stays exact on a deterministic (single-threaded) executor.

use std::sync::atomic::{AtomicU64, Ordering};

use fleet::{
    run_fleet, ExecutorOptions, FleetSimulation, ProgressSink, ScenarioMix,
    DEFAULT_PROFILE_CACHE_CAPACITY,
};
use proptest::prelude::*;

const GOLDEN: &str = include_str!("fixtures/fleet-64-balanced-seed42.json");

fn options(threads: usize, profile_cache: Option<usize>) -> ExecutorOptions {
    ExecutorOptions {
        threads,
        chunk_size: 2,
        profile_cache,
        ..ExecutorOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Cached and uncached fleets serialize byte-identically for arbitrary
    /// `(seed, mix, device count)` — the cache's core guarantee.
    #[test]
    fn cached_and_uncached_reports_are_byte_identical(
        master_seed in 0u64..10_000,
        devices in 1u64..10,
        mix_idx in 0usize..3,
        capacity_idx in 0usize..4,
    ) {
        let capacity = [0usize, 1, 3, usize::MAX][capacity_idx];
        let mix = [ScenarioMix::balanced(), ScenarioMix::harsh(), ScenarioMix::connected()][mix_idx];
        let simulation = FleetSimulation::new(master_seed, mix).unwrap();
        let uncached = simulation
            .run_with_options(devices, &options(2, None), None)
            .unwrap();
        let cached = simulation
            .run_with_options(devices, &options(2, Some(capacity)), None)
            .unwrap();
        prop_assert_eq!(
            serde_json::to_string_pretty(&uncached.report).unwrap(),
            serde_json::to_string_pretty(&cached.report).unwrap()
        );
        prop_assert_eq!(&uncached.devices, &cached.devices);
    }
}

/// Eviction pressure never leaks into results: capacity 0 (always miss),
/// capacity 1 (maximal eviction churn) and unbounded produce the same report
/// as each other and as the uncached run, across thread counts.
#[test]
fn eviction_determinism_across_capacities() {
    let simulation = FleetSimulation::new(11, ScenarioMix::balanced()).unwrap();
    // Repeated subject profiles make hits and evictions actually happen.
    let base: Vec<_> = simulation.generator().scenarios(3).collect();
    let scenarios: Vec<_> = (0..12)
        .map(|i| {
            let mut s = base[i % base.len()].clone();
            s.device_id = i as u64;
            s
        })
        .collect();

    let reference = run_fleet(
        &scenarios,
        simulation.zoo(),
        simulation.engine(),
        &options(1, None),
    )
    .unwrap();
    for threads in [1usize, 4] {
        for capacity in [0usize, 1, usize::MAX] {
            let cached = run_fleet(
                &scenarios,
                simulation.zoo(),
                simulation.engine(),
                &options(threads, Some(capacity)),
            )
            .unwrap();
            assert_eq!(
                cached, reference,
                "capacity {capacity} at {threads} threads changed a report"
            );
        }
    }
}

#[derive(Default)]
struct CacheStatsSink {
    hits: AtomicU64,
    misses: AtomicU64,
    calls: AtomicU64,
}

impl ProgressSink for CacheStatsSink {
    fn windows_processed(&self, _device_id: u64, _count: usize) {}

    fn device_completed(&self, _device_id: u64, _windows: usize) {}

    fn profile_cache(&self, hits: u64, misses: u64) {
        // relaxed: assertions read these after the executor returned, so
        // the worker join already orders every store.
        self.hits.store(hits, Ordering::Relaxed);
        // relaxed: ordered by the worker join, as above.
        self.misses.store(misses, Ordering::Relaxed);
        // relaxed: ordered by the worker join, as above.
        self.calls.fetch_add(1, Ordering::Relaxed);
    }
}

/// On one worker thread the accounting is exact: misses equal the distinct
/// cache keys, hits equal the repeats, and the counters arrive exactly once
/// per run through `ProgressSink::profile_cache`.
#[test]
fn hit_and_miss_counters_account_for_every_device() {
    let simulation = FleetSimulation::new(5, ScenarioMix::balanced()).unwrap();
    let base: Vec<_> = simulation.generator().scenarios(3).collect();
    // 3 distinct profiles, 9 devices: 3 misses + 6 hits with room to cache.
    let scenarios: Vec<_> = (0..9)
        .map(|i| {
            let mut s = base[i % base.len()].clone();
            s.device_id = i as u64;
            s
        })
        .collect();

    let sink = CacheStatsSink::default();
    let outcome = fleet::run_fleet_with_progress(
        &scenarios,
        simulation.zoo(),
        simulation.engine(),
        &options(1, Some(DEFAULT_PROFILE_CACHE_CAPACITY)),
        Some(&sink),
    )
    .unwrap();
    assert_eq!(outcome.len(), 9);
    // relaxed: post-join test assertion.
    assert_eq!(sink.calls.load(Ordering::Relaxed), 1);
    // relaxed: post-join test assertion.
    assert_eq!(sink.misses.load(Ordering::Relaxed), 3);
    // relaxed: post-join test assertion.
    assert_eq!(sink.hits.load(Ordering::Relaxed), 6);

    // Capacity 0 stores nothing: every device misses.
    let cold = CacheStatsSink::default();
    fleet::run_fleet_with_progress(
        &scenarios,
        simulation.zoo(),
        simulation.engine(),
        &options(1, Some(0)),
        Some(&cold),
    )
    .unwrap();
    // relaxed: post-join test assertion.
    assert_eq!(cold.misses.load(Ordering::Relaxed), 9);
    // relaxed: post-join test assertion.
    assert_eq!(cold.hits.load(Ordering::Relaxed), 0);

    // Cache disabled: the sink is never called.
    let off = CacheStatsSink::default();
    fleet::run_fleet_with_progress(
        &scenarios,
        simulation.zoo(),
        simulation.engine(),
        &options(1, None),
        Some(&off),
    )
    .unwrap();
    // relaxed: post-join test assertion.
    assert_eq!(off.calls.load(Ordering::Relaxed), 0);
}

/// The generator's own cohort mechanism feeds the cache end to end: a
/// `cohort` fleet run through `FleetSimulation` (the CLI path) hits for
/// every device beyond the first of its pool slot, and the report matches
/// the uncached run byte for byte.
#[test]
fn cohort_mix_hits_the_cache_through_the_full_pipeline() {
    let simulation = FleetSimulation::new(13, ScenarioMix::cohort()).unwrap();
    let pool = ScenarioMix::cohort().subject_pool;
    let devices = 2 * pool;

    let uncached = simulation
        .run_with_options(devices, &options(1, None), None)
        .unwrap();
    let sink = CacheStatsSink::default();
    let cached = simulation
        .run_with_options(
            devices,
            &options(1, Some(DEFAULT_PROFILE_CACHE_CAPACITY)),
            Some(&sink),
        )
        .unwrap();
    assert_eq!(
        serde_json::to_string_pretty(&uncached.report).unwrap(),
        serde_json::to_string_pretty(&cached.report).unwrap()
    );
    assert_eq!(uncached.devices, cached.devices);
    // One miss per pool slot, one hit per repeat — exact on one thread.
    // relaxed: post-join test assertion.
    assert_eq!(sink.misses.load(Ordering::Relaxed), pool);
    // relaxed: post-join test assertion.
    assert_eq!(sink.hits.load(Ordering::Relaxed), devices - pool);
}

/// The committed 64-device golden fixture is reproduced byte-for-byte with
/// the cache enabled — the same guarantee the CI smoke job checks through
/// the `fleet --profile-cache` CLI.
#[test]
fn golden_fixture_is_byte_identical_with_the_cache_enabled() {
    let simulation = FleetSimulation::new(42, ScenarioMix::balanced()).unwrap();
    let outcome = simulation
        .run_with_options(64, &options(0, Some(DEFAULT_PROFILE_CACHE_CAPACITY)), None)
        .unwrap();
    let json = serde_json::to_string_pretty(&outcome.report).unwrap();
    assert_eq!(
        format!("{json}\n"),
        GOLDEN,
        "enabling the profile cache moved a population-level number"
    );
}
