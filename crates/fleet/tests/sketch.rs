//! Conformance suite for the deterministic quantile sketch behind
//! `ReportMode::Sketch`: merge-order invariance over arbitrary tilings of
//! the device-id space (byte identity, not just statistical equivalence),
//! the proven worst-case rank-error bound against exact order statistics,
//! and the O(log devices) retained-sample footprint that unblocks
//! fleet sizes an exact accumulator cannot hold.

use chris_core::config::EnergyAccounting;
use chris_core::decision::UserConstraint;
use fleet::{
    merge, FleetAccumulator, FleetReport, MergeAccumulator, QuantileSketch, ReportMode,
    ScenarioMix, ShardMeta, ShardReport, DEFAULT_SKETCH_CAPACITY,
};
use hw_sim::units::Energy;
use proptest::prelude::*;

/// Deterministic pseudo-values: a fixed hash of the id, so every test run
/// sketches the same population without a random source.
fn value_for(id: u64) -> f64 {
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % 1_000_000) as f64 / 100.0
}

/// Builds the sketch of ids `[start, end)` at `capacity`.
fn sketch_range(capacity: usize, start: u64, end: u64) -> QuantileSketch {
    let mut sketch = QuantileSketch::with_capacity(capacity);
    for id in start..end {
        sketch.insert(id, value_for(id));
    }
    sketch
}

/// One synthetic device report whose distribution samples derive from the id.
fn device(id: u64) -> fleet::DeviceReport {
    fleet::DeviceReport {
        device_id: id,
        windows: 10 + (id % 50) as usize,
        mae_bpm: (value_for(id) / 100.0) as f32,
        avg_watch_energy: Energy::from_microjoules(100.0 + value_for(id.wrapping_add(1))),
        avg_phone_energy: Energy::from_microjoules(30.0),
        offload_fraction: ((id % 11) as f32) / 10.0,
        simple_fraction: 0.3,
        disconnected_fraction: 0.0,
        battery_life_hours: 100.0 + value_for(id.wrapping_add(2)),
        constraint: if id.is_multiple_of(2) {
            UserConstraint::MaxMae(6.0)
        } else {
            UserConstraint::MaxEnergy(Energy::from_millijoules(0.5))
        },
        accounting: EnergyAccounting::ALL[id as usize % EnergyAccounting::ALL.len()],
        constraint_violated: id.is_multiple_of(7),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Byte-level merge-order invariance: cut the id range into arbitrary
    /// tiles, sketch each independently, merge the tiles in an arbitrary
    /// order — the result equals the sequential sketch exactly.
    #[test]
    fn any_tiling_merged_in_any_order_is_byte_identical(
        n in 1u64..1500,
        capacity_idx in 0usize..3,
        raw_cuts in prop::collection::vec(0u64..1500, 0..6),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        let capacity = [2usize, 8, 64][capacity_idx];
        let sequential = sketch_range(capacity, 0, n);

        // Tile [0, n) at the sampled cut points.
        let mut cuts: Vec<u64> = raw_cuts.into_iter().map(|c| c % (n + 1)).collect();
        cuts.push(0);
        cuts.push(n);
        cuts.sort_unstable();
        cuts.dedup();
        let mut tiles: Vec<QuantileSketch> = cuts
            .windows(2)
            .map(|w| sketch_range(capacity, w[0], w[1]))
            .collect();

        // Deterministic Fisher–Yates driven by the sampled seed.
        let mut state = shuffle_seed;
        for i in (1..tiles.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            tiles.swap(i, (state >> 33) as usize % (i + 1));
        }

        let mut merged = QuantileSketch::with_capacity(capacity);
        for tile in &tiles {
            merged.merge(tile);
        }
        prop_assert_eq!(&merged, &sequential);
        prop_assert_eq!(merged.summary(), sequential.summary());
        prop_assert_eq!(merged.compactions(), sequential.compactions());
        prop_assert_eq!(merged.rank_error_bound(), sequential.rank_error_bound());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The surfaced rank-error bound holds against exact order statistics:
    /// the value returned for target rank `r` has true rank within
    /// `[r - E, r + E]` of the exact sorted sample, for every reported
    /// percentile.
    #[test]
    fn percentiles_stay_within_the_reported_rank_error_bound(
        values in prop::collection::vec(-1.0e4f64..1.0e4, 1..1200),
        capacity_idx in 0usize..3,
    ) {
        let capacity = [2usize, 16, 128][capacity_idx];
        let mut sketch = QuantileSketch::with_capacity(capacity);
        for (id, &v) in values.iter().enumerate() {
            sketch.insert(id as u64, v);
        }
        let bound = sketch.rank_error_bound();
        let n = values.len() as u128;
        for p in [1u32, 10, 25, 50, 75, 90, 99, 100] {
            let estimate = sketch.percentile(p).unwrap();
            let target = (u128::from(p) * n).div_ceil(100).max(1);
            let count_le = values
                .iter()
                .filter(|v| v.total_cmp(&estimate).is_le())
                .count() as u128;
            let count_lt = values
                .iter()
                .filter(|v| v.total_cmp(&estimate).is_lt())
                .count() as u128;
            // True rank of `estimate` reaches down to `target - bound`...
            prop_assert!(
                count_le + u128::from(bound) >= target,
                "p{p}: estimate {estimate} has rank ≤ {count_le}, target {target}, bound {bound}"
            );
            // ...and up to `target + bound`.
            prop_assert!(
                count_lt <= target - 1 + u128::from(bound),
                "p{p}: estimate {estimate} has rank > {count_lt}, target {target}, bound {bound}"
            );
        }
        // Min/max/mean are exact, not sketched.
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        prop_assert_eq!(sketch.min(), sorted.first().copied());
        prop_assert_eq!(sketch.max(), sorted.last().copied());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The same bound holds through the report layer: every sketched
    /// percentile in a sketch-mode `FleetReport` is within the reported
    /// rank-error bound of the exact per-device MAE sample.
    #[test]
    fn sketch_report_percentiles_respect_the_bound(n in 1u64..800) {
        let devices: Vec<fleet::DeviceReport> = (0..n).map(device).collect();
        let mut accumulator = FleetAccumulator::sketch_with_capacity(32);
        for d in &devices {
            accumulator.push(d);
        }
        let info = accumulator.sketch_info().unwrap();
        let report = accumulator.finalize();
        let maes: Vec<f64> = devices.iter().map(|d| f64::from(d.mae_bpm)).collect();
        for (p, estimate) in [
            (50u32, report.mae_bpm.p50),
            (90, report.mae_bpm.p90),
            (99, report.mae_bpm.p99),
        ] {
            let target = (u128::from(p) * u128::from(n)).div_ceil(100).max(1);
            let count_le = maes
                .iter()
                .filter(|v| v.total_cmp(&estimate).is_le())
                .count() as u128;
            let count_lt = maes
                .iter()
                .filter(|v| v.total_cmp(&estimate).is_lt())
                .count() as u128;
            let bound = u128::from(info.max_rank_error);
            prop_assert!(count_le + bound >= target, "p{p} undershoots the bound");
            prop_assert!(count_lt <= target - 1 + bound, "p{p} overshoots the bound");
        }
    }
}

/// The memory claim of the tentpole, asserted directly (the analogue of
/// `tests/scenario_free.rs` for aggregation memory): a sketch over `n`
/// devices retains O(capacity · log(n / capacity)) samples, not O(n).
#[test]
fn retained_samples_grow_logarithmically_not_linearly() {
    const N: u64 = 100_000;
    let sketch = sketch_range(DEFAULT_SKETCH_CAPACITY, 0, N);
    assert_eq!(sketch.count(), N);
    // At most one node per level of the dyadic forest (the binary digits of
    // the block count), each holding `capacity` values, plus one partial run
    // of fewer than `capacity` raw values.
    let blocks = N / DEFAULT_SKETCH_CAPACITY as u64;
    let levels = 64 - blocks.leading_zeros() as usize;
    let bound = DEFAULT_SKETCH_CAPACITY * (levels + 1);
    assert!(
        sketch.retained() <= bound,
        "retained {} exceeds the O(k log(n/k)) bound {bound}",
        sketch.retained()
    );
    assert!(
        (sketch.retained() as u64) < N / 20,
        "retained {} is not sublinear in n = {N}",
        sketch.retained()
    );
    // The bound it trades for stays honest and sublinear too.
    assert!(sketch.rank_error_fraction() < 0.05);

    // Through the accumulator: all three per-device distributions together
    // stay within 3× the single-sketch bound.
    let mut accumulator = FleetAccumulator::with_mode(ReportMode::Sketch);
    for id in 0..20_000 {
        accumulator.push(&device(id));
    }
    let info = accumulator.sketch_info().unwrap();
    let blocks = 20_000 / DEFAULT_SKETCH_CAPACITY as u64;
    let levels = 64 - blocks.leading_zeros() as usize;
    let per_sketch = DEFAULT_SKETCH_CAPACITY * (levels + 1);
    assert!(
        info.retained_samples <= 3 * per_sketch,
        "accumulator retains {} samples, bound {}",
        info.retained_samples,
        3 * per_sketch
    );
    assert_eq!(accumulator.devices(), 20_000);
    assert_eq!(accumulator.finalize().devices, 20_000);
}

/// Sharded sketch aggregation over synthetic artifacts: a 7-shard merge —
/// streaming or batch, in order or reversed — is byte-identical to the
/// single-process sketch fold over the same 2000 devices.
#[test]
fn synthetic_shard_merge_matches_the_single_process_sketch_fold() {
    const DEVICES: u64 = 2000;
    const SHARDS: u64 = 7;
    let make_shard = |index: u64, start: u64, end: u64| ShardReport {
        meta: ShardMeta {
            engine_version: fleet::ENGINE_VERSION.to_string(),
            master_seed: 42,
            mix: ScenarioMix::balanced(),
            report_mode: ReportMode::Sketch,
            fleet_devices: DEVICES,
            shard_count: SHARDS as u32,
            shard_index: index as u32,
            start,
            end,
        },
        devices: (start..end).map(device).collect(),
        telemetry: telemetry::MetricsSnapshot::default(),
    };
    let per_shard = DEVICES.div_ceil(SHARDS);
    let shards: Vec<ShardReport> = (0..SHARDS)
        .map(|i| {
            make_shard(
                i,
                (i * per_shard).min(DEVICES),
                ((i + 1) * per_shard).min(DEVICES),
            )
        })
        .collect();

    let all: Vec<fleet::DeviceReport> = (0..DEVICES).map(device).collect();
    let single = FleetReport::from_devices_with_mode(&all, ReportMode::Sketch);

    // Streaming, in range order.
    let mut accumulator = MergeAccumulator::new();
    for shard in &shards {
        accumulator.push(shard).unwrap();
    }
    let info = accumulator.sketch_info().unwrap();
    assert!(
        info.compactions > 0,
        "2000 devices must compact at capacity 256"
    );
    let streamed = accumulator.finalize().unwrap();
    assert_eq!(streamed, single);
    assert_eq!(
        serde_json::to_string(&streamed).unwrap(),
        serde_json::to_string(&single).unwrap()
    );

    // Batch, reversed artifact order.
    let mut reversed = shards;
    reversed.reverse();
    let outcome = merge(reversed).unwrap();
    assert_eq!(outcome.report, single);
    assert_eq!(outcome.sketch, Some(info));
}
