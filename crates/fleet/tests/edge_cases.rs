//! Degenerate-input coverage: empty shards, single-device fleets and u64
//! device-id boundaries must yield well-formed reports — no panics, no NaNs.

use fleet::{
    merge, run_fleet, DistributionSummary, ExecutorOptions, FleetReport, FleetSimulation,
    ScenarioMix, ShardSpec,
};

fn assert_finite(summary: &DistributionSummary, name: &str) {
    for (field, value) in [
        ("min", summary.min),
        ("mean", summary.mean),
        ("p50", summary.p50),
        ("p90", summary.p90),
        ("p99", summary.p99),
        ("max", summary.max),
    ] {
        assert!(value.is_finite(), "{name}.{field} is not finite: {value}");
    }
}

fn assert_well_formed(report: &FleetReport) {
    assert_finite(&report.mae_bpm, "mae_bpm");
    assert_finite(&report.watch_energy_uj, "watch_energy_uj");
    assert_finite(&report.battery_life_hours, "battery_life_hours");
    assert!(report.offloaded_window_share.is_finite());
    assert!(report.disconnected_window_share.is_finite());
    assert!(report.avg_phone_energy_uj.is_finite());
    assert_eq!(
        report.offload_histogram.len(),
        fleet::OFFLOAD_HISTOGRAM_BINS
    );
    assert_eq!(
        report.offload_histogram.iter().sum::<usize>(),
        report.devices
    );
}

#[test]
fn empty_shards_produce_well_formed_artifacts_and_merge() {
    let simulation = FleetSimulation::new(7, ScenarioMix::balanced()).unwrap();
    // More shards than devices: the last two shards are empty.
    let spec = ShardSpec::new(2, 4).unwrap();
    let shards: Vec<_> = (0..4)
        .map(|i| simulation.run_shard(&spec, i, 1).unwrap())
        .collect();
    assert!(shards[2].devices.is_empty());
    assert!(shards[3].devices.is_empty());
    // Empty artifacts survive serialization and merge into the exact
    // single-process outcome.
    for shard in &shards {
        let json = serde_json::to_string(shard).unwrap();
        let back: fleet::ShardReport = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, shard);
    }
    let merged = merge(shards).unwrap();
    assert_eq!(merged, simulation.run(2, 1).unwrap());
    assert_well_formed(&merged.report);
}

#[test]
fn zero_device_fleet_merges_to_an_all_zero_report() {
    let simulation = FleetSimulation::new(7, ScenarioMix::balanced()).unwrap();
    let spec = ShardSpec::single(0);
    let shard = simulation.run_shard(&spec, 0, 1).unwrap();
    assert!(shard.devices.is_empty());
    let merged = merge(vec![shard]).unwrap();
    assert_eq!(merged.report, FleetReport::from_devices(&[]));
    assert_eq!(merged.report.devices, 0);
    assert_well_formed(&merged.report);
    // The single-process entry point still reports the empty fleet loudly.
    assert!(matches!(
        simulation.run(0, 1),
        Err(fleet::FleetError::EmptyFleet)
    ));
}

#[test]
fn single_device_fleet_is_well_formed() {
    let simulation = FleetSimulation::new(11, ScenarioMix::harsh()).unwrap();
    let outcome = simulation.run(1, 1).unwrap();
    assert_eq!(outcome.report.devices, 1);
    assert_eq!(outcome.devices.len(), 1);
    assert_well_formed(&outcome.report);
    // With one sample every order statistic is that sample.
    let mae = &outcome.report.mae_bpm;
    assert_eq!(mae.min, mae.max);
    assert_eq!(mae.p50, mae.max);
    assert_eq!(mae.p99, mae.max);
    assert_eq!(mae.mean, mae.max);
}

#[test]
fn u64_boundary_device_ids_simulate_cleanly() {
    let simulation = FleetSimulation::new(3, ScenarioMix::balanced()).unwrap();
    let generator = simulation.generator();
    let scenarios: Vec<_> = [u64::MAX, u64::MAX - 1, 0]
        .into_iter()
        .map(|id| generator.scenario(id))
        .collect();
    let reports = run_fleet(
        &scenarios,
        simulation.zoo(),
        simulation.engine(),
        &ExecutorOptions::default(),
    )
    .unwrap();
    assert_eq!(reports[0].device_id, u64::MAX);
    assert!(reports.iter().all(|r| r.windows > 0));
    let report = FleetReport::from_devices(&reports);
    assert_well_formed(&report);
    // Boundary ids survive the JSON round trip without losing precision.
    let json = serde_json::to_string(&reports).unwrap();
    let back: Vec<fleet::DeviceReport> = serde_json::from_str(&json).unwrap();
    assert_eq!(back, reports);
}

#[test]
fn huge_shard_specs_partition_without_overflow() {
    for shards in [1u32, 2, 7, 64] {
        let spec = ShardSpec::new(u64::MAX, shards).unwrap();
        let mut cursor = 0u64;
        for range in spec.ranges() {
            assert_eq!(range.start, cursor);
            cursor = range.end;
        }
        assert_eq!(cursor, u64::MAX);
    }
}

#[test]
fn distribution_summary_degenerate_samples() {
    assert!(DistributionSummary::from_values(&[]).is_none());
    let single = DistributionSummary::from_values(&[3.5]).unwrap();
    assert_eq!(single.min, 3.5);
    assert_eq!(single.max, 3.5);
    assert_eq!(single.p50, 3.5);
    assert_eq!(single.p90, 3.5);
    assert_eq!(single.p99, 3.5);
    assert_eq!(single.mean, 3.5);
    assert_finite(&single, "single");
}
