//! Property tests for the fleet engine's determinism guarantees:
//!
//! * a fleet run produces *byte-identical* aggregate reports for any worker
//!   thread count,
//! * a device's scenario depends only on `(master seed, device id)` — never
//!   on fleet size, generation order or the mix of other devices.

use fleet::{
    run_fleet, ExecutorOptions, FleetReport, FleetSimulation, ScenarioGenerator, ScenarioMix,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn fleet_reports_are_identical_for_1_2_and_8_threads(master_seed in 0u64..1000) {
        let simulation = FleetSimulation::new(master_seed, ScenarioMix::balanced()).unwrap();
        let scenarios: Vec<_> = simulation.generator().scenarios(64).collect();

        let mut outcomes = Vec::new();
        for threads in [1usize, 2, 8] {
            let options = ExecutorOptions {
                threads,
                chunk_size: 4,
                ..ExecutorOptions::default()
            };
            let devices = run_fleet(&scenarios, simulation.zoo(), simulation.engine(), &options)
            .unwrap();
            let report = FleetReport::from_devices(&devices);
            // Byte-identical serialized output, not merely `==`.
            let json = serde_json::to_string(&report).unwrap();
            outcomes.push((devices, report, json));
        }
        prop_assert_eq!(outcomes[0].0.len(), 64);
        prop_assert_eq!(&outcomes[0].0, &outcomes[1].0);
        prop_assert_eq!(&outcomes[0].0, &outcomes[2].0);
        prop_assert_eq!(&outcomes[0].1, &outcomes[1].1);
        prop_assert_eq!(&outcomes[0].1, &outcomes[2].1);
        prop_assert_eq!(&outcomes[0].2, &outcomes[1].2);
        prop_assert_eq!(&outcomes[0].2, &outcomes[2].2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn scenarios_depend_only_on_master_seed_and_device_id(
        master_seed in 0u64..10_000,
        device_id in 0u64..100_000,
    ) {
        let mix = ScenarioMix::balanced();
        let direct = ScenarioGenerator::new(master_seed, mix).scenario(device_id);
        let rebuilt = ScenarioGenerator::new(master_seed, mix).scenario(device_id);
        prop_assert_eq!(&direct, &rebuilt);

        // Embedding the device in fleets of different sizes never changes it.
        let generator = ScenarioGenerator::new(master_seed, mix);
        for (id, scenario) in generator.scenarios(device_id % 7 + 1).enumerate() {
            prop_assert_eq!(&scenario, &generator.scenario(id as u64));
        }

        // A different master seed or device id yields a different stream.
        let other = ScenarioGenerator::new(master_seed.wrapping_add(1), mix).scenario(device_id);
        prop_assert_ne!(direct.dataset_seed, other.dataset_seed);
    }
}
