//! Conformance suite for the streaming fleet executor: for random fleets,
//! the stream-driven path must reproduce the legacy eager path exactly —
//! element-wise identical windows, equal device reports, and `FleetReport`
//! bytes unchanged whether or not a progress sink observes the run.

use std::sync::atomic::{AtomicU64, Ordering};

use chris_core::runtime::{ChrisRuntime, RuntimeOptions};
use fleet::{simulate_device, FleetSimulation, ProgressSink, ScenarioGenerator, ScenarioMix};
use ppg_data::WindowSource;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A device's collected `window_stream()` is element-wise identical to
    /// the legacy eager `windows()` vector, for random
    /// `(master seed, device id)` across all mixes.
    #[test]
    fn device_stream_equals_eager_windows(
        master_seed in 0u64..10_000,
        device_id in 0u64..100_000,
        mix_idx in 0usize..3,
    ) {
        let mix = [ScenarioMix::balanced(), ScenarioMix::harsh(), ScenarioMix::connected()][mix_idx];
        let scenario = ScenarioGenerator::new(master_seed, mix).scenario(device_id);
        let eager = scenario.windows().unwrap();
        let streamed: Vec<_> = scenario
            .window_stream()
            .unwrap()
            .iter()
            .map(Result::unwrap)
            .collect();
        prop_assert_eq!(&streamed, &eager);
        prop_assert_eq!(scenario.window_count().unwrap(), eager.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The streaming `simulate_device` reproduces the legacy executor shape
    /// (materialize the window vector, run the runtime over the slice)
    /// number for number.
    #[test]
    fn streaming_executor_matches_legacy_eager_run(master_seed in 0u64..1000) {
        let simulation = FleetSimulation::new(master_seed, ScenarioMix::balanced()).unwrap();
        for device_id in 0..3u64 {
            let scenario = simulation.generator().scenario(device_id);
            let streaming =
                simulate_device(&scenario, simulation.zoo(), simulation.engine()).unwrap();

            let windows = scenario.windows().unwrap();
            let options = RuntimeOptions {
                accounting: scenario.accounting,
                seed: scenario.dataset_seed,
                ..RuntimeOptions::default()
            };
            let mut runtime = ChrisRuntime::new(
                simulation.zoo().clone(),
                simulation.engine().clone(),
                options,
            );
            let eager = runtime
                .run(&windows, &scenario.constraint, &scenario.schedule)
                .unwrap();

            prop_assert_eq!(streaming.windows, eager.windows);
            prop_assert_eq!(streaming.mae_bpm, eager.mae_bpm);
            prop_assert_eq!(streaming.avg_watch_energy, eager.avg_watch_energy);
            prop_assert_eq!(streaming.avg_phone_energy, eager.avg_phone_energy);
            prop_assert_eq!(streaming.offload_fraction, eager.offload_fraction);
            prop_assert_eq!(streaming.simple_fraction, eager.simple_fraction);
            prop_assert_eq!(streaming.disconnected_fraction, eager.disconnected_fraction);
        }
    }
}

#[derive(Default)]
struct CountingSink {
    windows: AtomicU64,
    devices: AtomicU64,
    completed_windows: AtomicU64,
}

impl ProgressSink for CountingSink {
    fn windows_processed(&self, _device_id: u64, count: usize) {
        // relaxed: cross-thread test counter, read post-join.
        self.windows.fetch_add(count as u64, Ordering::Relaxed);
    }

    fn device_completed(&self, _device_id: u64, windows: usize) {
        // relaxed: cross-thread test counter, read post-join.
        self.devices.fetch_add(1, Ordering::Relaxed);
        self.completed_windows
            // relaxed: cross-thread test counter, read post-join.
            .fetch_add(windows as u64, Ordering::Relaxed);
    }
}

/// Attaching a progress sink changes nothing in the output: `FleetReport`
/// serializes byte-identically with and without progress, at any thread
/// count, and the sink's totals agree with the report.
#[test]
fn progress_observation_leaves_report_bytes_unchanged() {
    let simulation = FleetSimulation::new(7, ScenarioMix::balanced()).unwrap();
    let plain = simulation.run(12, 1).unwrap();

    let sink = CountingSink::default();
    let observed = simulation.run_with_progress(12, 4, Some(&sink)).unwrap();

    let plain_json = serde_json::to_string_pretty(&plain.report).unwrap();
    let observed_json = serde_json::to_string_pretty(&observed.report).unwrap();
    assert_eq!(plain_json, observed_json);
    assert_eq!(plain.devices, observed.devices);

    // relaxed: post-join test assertion.
    assert_eq!(sink.devices.load(Ordering::Relaxed), 12);
    let total_windows: u64 = observed.devices.iter().map(|d| d.windows as u64).sum();
    // relaxed: post-join test assertion.
    assert_eq!(sink.windows.load(Ordering::Relaxed), total_windows);
    assert_eq!(
        // relaxed: post-join test assertion.
        sink.completed_windows.load(Ordering::Relaxed),
        total_windows
    );
}
