//! Negative-path coverage for `merge` and its streaming counterpart — the
//! validation layer behind the `fleet-merge` binary. Every bad artifact set
//! must be rejected with the specific typed [`MergeError`], never folded
//! into a corrupted report, whether the artifacts arrive as one batch or
//! one at a time.

use fleet::{
    merge, merge_stream, FleetSimulation, MergeAccumulator, MergeError, ReportMode, ScenarioMix,
    ShardReport, ShardSpec,
};

const DEVICES: u64 = 8;
const SHARDS: u32 = 4;

/// Simulates a small fleet and returns its four shard artifacts.
fn artifacts() -> Vec<ShardReport> {
    let simulation = FleetSimulation::new(42, ScenarioMix::balanced()).unwrap();
    let spec = ShardSpec::new(DEVICES, SHARDS).unwrap();
    (0..SHARDS)
        .map(|index| simulation.run_shard(&spec, index, 1).unwrap())
        .collect()
}

#[test]
fn overlapping_ranges_are_rejected() {
    let mut shards = artifacts();
    // Duplicate the second shard: its range is now claimed twice.
    shards.push(shards[1].clone());
    let err = merge(shards).unwrap_err();
    assert_eq!(
        err,
        MergeError::OverlappingShards {
            left: (2, 4),
            right: (2, 4),
        }
    );
}

#[test]
fn partially_overlapping_ranges_are_rejected() {
    let mut shards = artifacts();
    // Stretch shard 0 to also claim shard 1's first device.
    let extra = shards[1].devices[0].clone();
    shards[0].meta.end = 3;
    shards[0].devices.push(extra);
    let err = merge(shards).unwrap_err();
    assert_eq!(
        err,
        MergeError::OverlappingShards {
            left: (0, 3),
            right: (2, 4),
        }
    );
}

#[test]
fn a_missing_shard_is_rejected() {
    let mut shards = artifacts();
    shards.remove(2); // devices [4, 6) now uncovered
    let err = merge(shards).unwrap_err();
    assert_eq!(err, MergeError::MissingDevices { start: 4, end: 6 });
}

#[test]
fn a_missing_trailing_shard_is_rejected() {
    let mut shards = artifacts();
    shards.pop(); // devices [6, 8) now uncovered
    let err = merge(shards).unwrap_err();
    assert_eq!(err, MergeError::MissingDevices { start: 6, end: 8 });
}

#[test]
fn mismatched_master_seed_is_rejected() {
    let mut shards = artifacts();
    shards[3].meta.master_seed = 43;
    let err = merge(shards).unwrap_err();
    assert_eq!(
        err,
        MergeError::SeedMismatch {
            expected: 42,
            found: 43,
        }
    );
}

#[test]
fn mismatched_engine_version_is_rejected() {
    let mut shards = artifacts();
    shards[1].meta.engine_version = "0.0.0-other".to_string();
    let err = merge(shards).unwrap_err();
    assert_eq!(
        err,
        MergeError::VersionMismatch {
            expected: fleet::ENGINE_VERSION.to_string(),
            found: "0.0.0-other".to_string(),
        }
    );
}

#[test]
fn mismatched_mix_is_rejected() {
    let mut shards = artifacts();
    shards[2].meta.mix = ScenarioMix::harsh();
    assert_eq!(merge(shards).unwrap_err(), MergeError::MixMismatch);
}

#[test]
fn mismatched_fleet_size_is_rejected() {
    let mut shards = artifacts();
    shards[2].meta.fleet_devices = DEVICES + 1;
    assert_eq!(
        merge(shards).unwrap_err(),
        MergeError::FleetSizeMismatch {
            expected: DEVICES,
            found: DEVICES + 1,
        }
    );
}

#[test]
fn mismatched_shard_count_is_rejected() {
    let mut shards = artifacts();
    shards[0].meta.shard_count = SHARDS + 1;
    assert_eq!(
        merge(shards).unwrap_err(),
        MergeError::ShardCountMismatch {
            expected: SHARDS + 1,
            found: SHARDS,
        }
    );
}

#[test]
fn mismatched_report_mode_is_rejected() {
    // Batch merge: the upfront provenance sweep catches the mixed mode.
    let mut shards = artifacts();
    shards[2].meta.report_mode = ReportMode::Sketch;
    assert_eq!(
        merge(shards).unwrap_err(),
        MergeError::ReportModeMismatch {
            expected: ReportMode::Exact,
            found: ReportMode::Sketch,
        }
    );

    // Streaming merge: the push rejects it and leaves the fold untouched.
    let mut shards = artifacts();
    shards[1].meta.report_mode = ReportMode::Sketch;
    let mut accumulator = MergeAccumulator::new();
    accumulator.push(&shards[0]).unwrap();
    assert_eq!(
        accumulator.push(&shards[1]).unwrap_err(),
        MergeError::ReportModeMismatch {
            expected: ReportMode::Exact,
            found: ReportMode::Sketch,
        }
    );
    assert_eq!(accumulator.cursor(), 2);
    assert_eq!(accumulator.devices(), 2);
}

#[test]
fn tampered_device_list_is_rejected() {
    let mut shards = artifacts();
    shards[1].devices.swap(0, 1);
    assert!(matches!(
        merge(shards).unwrap_err(),
        MergeError::CorruptShard {
            start: 2,
            end: 4,
            ..
        }
    ));
}

#[test]
fn validation_never_yields_a_partial_report() {
    // The untampered artifact set still merges cleanly after all the
    // negative tests above cloned and mutated copies of it.
    let outcome = merge(artifacts()).unwrap();
    assert_eq!(outcome.report.devices, DEVICES as usize);
    assert_eq!(outcome.devices.len(), DEVICES as usize);
}

#[test]
fn streaming_merge_matches_batch_merge_on_real_artifacts() {
    let shards = artifacts();
    let batch = merge(shards.clone()).unwrap();
    let streamed = merge_stream(shards).unwrap();
    assert_eq!(streamed, batch.report);
    assert_eq!(
        serde_json::to_string_pretty(&streamed).unwrap(),
        serde_json::to_string_pretty(&batch.report).unwrap()
    );
}

#[test]
fn streaming_merge_rejects_a_mid_stream_seed_mismatch() {
    let mut shards = artifacts();
    shards[2].meta.master_seed = 43;
    assert_eq!(
        merge_stream(shards).unwrap_err(),
        MergeError::SeedMismatch {
            expected: 42,
            found: 43,
        }
    );
}

#[test]
fn streaming_merge_rejects_gaps_where_batch_merge_does() {
    let mut shards = artifacts();
    shards.remove(1); // devices [2, 4) uncovered
    let batch_err = merge(shards.clone()).unwrap_err();
    let stream_err = merge_stream(shards).unwrap_err();
    assert_eq!(batch_err, MergeError::MissingDevices { start: 2, end: 4 });
    assert_eq!(stream_err, batch_err);
}

#[test]
fn incremental_pushes_reject_a_tampered_artifact_and_resume() {
    let shards = artifacts();
    let mut accumulator = MergeAccumulator::new();
    accumulator.push(&shards[0]).unwrap();
    let mut tampered = shards[1].clone();
    tampered.devices.swap(0, 1);
    assert!(matches!(
        accumulator.push(&tampered).unwrap_err(),
        MergeError::CorruptShard {
            start: 2,
            end: 4,
            ..
        }
    ));
    // The failed push left the fold untouched; the intact artifact lands.
    for shard in &shards[1..] {
        accumulator.push(shard).unwrap();
    }
    let report = accumulator.finalize().unwrap();
    assert_eq!(report, merge(shards).unwrap().report);
}
