//! The scenario-free execution path never materializes a
//! `Vec<DeviceScenario>`: workers derive scenarios on demand from
//! `(generator, device id)`, so at most one generated scenario is alive per
//! worker thread — asserted here through the executor's live-scenario gauge
//! (`fleet::executor::metrics`).
//!
//! This lives in its own integration binary on purpose: the gauge is
//! process-global, and other test binaries legitimately run fleets
//! concurrently, which would race the peak measurement.

use std::sync::Mutex;

use fleet::executor::metrics;
use fleet::{ExecutorOptions, FleetSimulation, ScenarioMix, ShardSpec};

const THREADS: usize = 4;

/// Serializes the tests of this binary: both drive the scenario-free path,
/// and the gauge they observe is process-global.
static GAUGE_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn generated_scenarios_stay_bounded_by_the_worker_count() {
    let _guard = GAUGE_LOCK.lock().unwrap();
    let simulation = FleetSimulation::new(42, ScenarioMix::balanced()).unwrap();

    // Eager baseline for the equivalence half of the assertion.
    let scenarios: Vec<_> = simulation.generator().scenarios(24).collect();
    let options = ExecutorOptions {
        threads: THREADS,
        chunk_size: 2,
        ..ExecutorOptions::default()
    };
    let eager =
        fleet::run_fleet(&scenarios, simulation.zoo(), simulation.engine(), &options).unwrap();
    drop(scenarios);

    // The scenario-free path: same reports, O(threads) scenario memory.
    metrics::reset_peak();
    assert_eq!(metrics::live_generated_scenarios(), 0);
    let scenario_free = fleet::run_fleet_range(
        simulation.generator(),
        0..24,
        simulation.zoo(),
        simulation.engine(),
        &options,
    )
    .unwrap();
    assert_eq!(scenario_free, eager);
    assert_eq!(
        metrics::live_generated_scenarios(),
        0,
        "every generated scenario must be dropped when its device completes"
    );
    let peak = metrics::peak_live_scenarios();
    assert!(
        (1..=THREADS).contains(&peak),
        "peak live scenarios was {peak}; the scenario-free path must keep at \
         most one generated scenario alive per worker (threads = {THREADS})"
    );

    // The slice path generates nothing at all.
    metrics::reset_peak();
    let scenarios: Vec<_> = simulation.generator().scenarios(8).collect();
    fleet::run_fleet(&scenarios, simulation.zoo(), simulation.engine(), &options).unwrap();
    assert_eq!(
        metrics::peak_live_scenarios(),
        0,
        "the eager slice path must not register generated scenarios"
    );
}

#[test]
fn sharded_run_uses_the_scenario_free_path() {
    let _guard = GAUGE_LOCK.lock().unwrap();
    let simulation = FleetSimulation::new(7, ScenarioMix::connected()).unwrap();
    let spec = ShardSpec::new(12, 3).unwrap();

    // `run_shard` is the scenario-free path end to end: its reports match a
    // slice-driven run over the same range without ever collecting one.
    let shard = simulation.run_shard(&spec, 1, 2).unwrap();
    let range = spec.range(1).unwrap();
    let scenarios: Vec<_> = simulation.generator().scenarios_in(range.clone()).collect();
    let eager = fleet::run_fleet(
        &scenarios,
        simulation.zoo(),
        simulation.engine(),
        &ExecutorOptions {
            threads: 2,
            ..ExecutorOptions::default()
        },
    )
    .unwrap();
    assert_eq!(shard.devices, eager);
    assert_eq!(shard.meta.start, range.start);
    assert_eq!(shard.meta.end, range.end);
}
