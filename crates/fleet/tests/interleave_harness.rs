//! Exhaustive model-checking harness for the fleet crate's lock-free core.
//!
//! Runs only with `--features interleave` (see `crates/interleave` and the
//! sibling harness in `crates/telemetry/tests/interleave_harness.rs`).
//!
//! Two subjects:
//!
//! * the executor's CAS-claimed device cursor
//!   ([`fleet::executor::claim_chunk`]) — concurrent workers must tile the
//!   device range exactly (disjoint, gap-free, in-bounds) in every
//!   interleaving, even with all-Relaxed orderings and spurious weak-CAS
//!   failures injected;
//! * the profile-cache stats publication pair
//!   ([`fleet::CachePublication`]) — a Release store of the `reported`
//!   flag paired with an Acquire load must never let a reader observe the
//!   flag without the counter values published before it. The mutation
//!   self-test downgrades the Release store to Relaxed and demands the
//!   checker *find* the torn read — proving these harnesses have teeth.

#![cfg(feature = "interleave")]

use std::sync::{Arc, Mutex};

use fleet::executor::claim_chunk;
use fleet::sync::atomic::AtomicU64;
use fleet::CachePublication;

/// Devices in the simulated fleet; small enough to explore exhaustively,
/// large enough that two workers interleave mid-range.
const DEVICES: u64 = 5;
/// Chunk size; deliberately not a divisor of [`DEVICES`] so the final
/// chunk is short.
const CHUNK: u64 = 2;

/// Two workers race `claim_chunk` over one cursor: their claims must tile
/// `0..DEVICES` exactly — no overlap, no gap, no out-of-bounds range — in
/// every interleaving, including those with spurious `compare_exchange_weak`
/// failures injected by the checker.
#[test]
fn executor_cursor_claims_tile_the_device_range_exactly() {
    let stats = interleave::explore(&interleave::Options::default(), || {
        let cursor = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let cursor = Arc::clone(&cursor);
                interleave::thread::spawn(move || {
                    let mut claimed = Vec::new();
                    while let Some(range) = claim_chunk(&cursor, DEVICES, CHUNK) {
                        assert!(range.start < range.end, "empty claim {range:?}");
                        assert!(range.end <= DEVICES, "out-of-bounds claim {range:?}");
                        claimed.push(range);
                    }
                    claimed
                })
            })
            .collect();
        let mut all: Vec<_> = workers
            .into_iter()
            .flat_map(|w| w.join().expect("worker must not panic"))
            .collect();
        all.sort_by_key(|r| r.start);
        // Exact tiling: starts at 0, each claim begins where the previous
        // ended, ends at DEVICES. Any overlap or gap breaks the chain.
        let mut next = 0;
        for range in &all {
            assert_eq!(range.start, next, "gap or overlap at {range:?} in {all:?}");
            next = range.end;
        }
        assert_eq!(next, DEVICES, "devices left unclaimed: {all:?}");
    })
    .unwrap_or_else(|failure| panic!("{failure}"));
    assert!(stats.complete, "schedule space not exhausted: {stats:?}");
    assert!(
        stats.executions > 1,
        "expected many interleavings: {stats:?}"
    );
}

/// The Release/Acquire publication pair is sound: whenever `stats()`
/// returns `Some`, the values are exactly the ones published — never a
/// torn or stale pair — in every interleaving.
#[test]
fn cache_publication_is_sound() {
    // Proof that the reader genuinely races the writer: some execution
    // observes `None` (flag not yet visible) and some observes `Some`.
    let saw = Arc::new(Mutex::new((false, false)));
    let witness = Arc::clone(&saw);

    let stats = interleave::explore(&interleave::Options::default(), move || {
        let publication = Arc::new(CachePublication::new());
        let writer = {
            let publication = Arc::clone(&publication);
            interleave::thread::spawn(move || publication.publish(7, 3))
        };
        match publication.stats() {
            // The Acquire load saw the Release store, so the counter
            // stores published before it are guaranteed visible.
            Some(pair) => {
                assert_eq!(pair, (7, 3), "torn publication: {pair:?}");
                witness.lock().unwrap().1 = true;
            }
            None => witness.lock().unwrap().0 = true,
        }
        writer.join().expect("writer must not panic");
        assert_eq!(publication.stats(), Some((7, 3)), "publication lost");
    })
    .unwrap_or_else(|failure| panic!("{failure}"));
    assert!(stats.complete, "schedule space not exhausted: {stats:?}");
    let (saw_none, saw_some) = *saw.lock().unwrap();
    assert!(saw_none && saw_some, "reader never raced the writer");
}

/// Mutation self-test: downgrading the Release store to Relaxed
/// ([`CachePublication::new_unsound_relaxed`]) must make the checker find
/// an interleaving where the reader sees the flag without the values —
/// and the failing schedule must replay to the same assertion.
#[test]
fn relaxed_publication_mutation_is_caught_and_replays() {
    let body = || {
        let publication = Arc::new(CachePublication::new_unsound_relaxed());
        let writer = {
            let publication = Arc::clone(&publication);
            interleave::thread::spawn(move || publication.publish(7, 3))
        };
        if let Some(pair) = publication.stats() {
            assert_eq!(pair, (7, 3), "torn publication: {pair:?}");
        }
        writer.join().expect("writer must not panic");
    };
    let failure = interleave::explore(&interleave::Options::default(), body)
        .expect_err("the checker must catch the Relaxed publication");
    assert!(
        failure.message.contains("torn publication"),
        "wrong failure: {failure}"
    );
    // The printed schedule replays deterministically to the same bug.
    let replayed = interleave::replay(&failure.schedule, body)
        .expect_err("replaying the failing schedule must fail again");
    assert_eq!(replayed.message, failure.message);
}
