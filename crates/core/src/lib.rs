//! # chris-core — the Collaborative Heart Rate Inference System
//!
//! CHRIS is the paper's contribution: a lightweight runtime executing on the
//! smartwatch that, for every incoming 8-second window, decides **which** HR
//! model to run and **where** (locally on the MCU or offloaded to the phone
//! over BLE) so that a user-supplied constraint — a maximum tracking error or
//! a maximum smartwatch energy — is met at minimum cost.
//!
//! The crate mirrors the structure of the paper's Section III:
//!
//! * [`config`] — *CHRIS configurations*: pairs of HR models plus a difficulty
//!   threshold and an execution target (fully local or hybrid); 60
//!   configurations exist for the 3-model zoo,
//! * [`profiling`] — offline profiling of every configuration on a profiling
//!   dataset, producing the table stored in the smartwatch MCU memory
//!   (Table II of the paper),
//! * [`pareto`] — extraction of the Pareto-optimal configurations in the
//!   (MAE, smartwatch-energy) plane (Fig. 4),
//! * [`decision`] — the Decision Engine: constraint- and connectivity-driven
//!   configuration selection plus the per-window model choice driven by the
//!   activity-recognition classifier (Fig. 2),
//! * [`runtime`] — the window-by-window collaborative-inference simulator,
//!   which dispatches each window to the smartwatch or the phone, tracks
//!   energy with `hw-sim` power-state traces and accumulates the error,
//! * [`report`] — run reports (MAE, energy breakdown, offload statistics).
//!
//! ## Example
//!
//! ```
//! use chris_core::prelude::*;
//! use ppg_data::DatasetBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Profile all configurations on a small profiling split...
//! let dataset = DatasetBuilder::new().subjects(2).seconds_per_activity(20.0).seed(1).build()?;
//! let zoo = ModelZoo::paper_setup();
//! let profiler = Profiler::new(&zoo);
//! let table = profiler.profile_all(&dataset.windows(), ProfilingOptions::default())?;
//!
//! // ...then ask the decision engine for the cheapest configuration that
//! // keeps the MAE under 6 BPM while the phone is reachable.
//! let engine = DecisionEngine::new(table);
//! let selected = engine
//!     .select(&UserConstraint::MaxMae(6.0), ConnectionStatus::Connected)
//!     .expect("a feasible configuration exists");
//! assert!(selected.mae_bpm <= 6.0 + 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod decision;
pub mod error;
pub mod metrics;
pub mod pareto;
pub mod profiling;
pub mod report;
pub mod runtime;

pub use config::{Configuration, DifficultyThreshold, EnergyAccounting, ExecutionTarget};
pub use decision::{ConnectionStatus, DecisionEngine, UserConstraint};
pub use error::ChrisError;
pub use profiling::{ConfigurationProfile, Profiler, ProfilingOptions};
pub use report::RunReport;
pub use runtime::{ChrisRuntime, RuntimeOptions};

/// Convenient re-exports for downstream binaries and examples.
pub mod prelude {
    pub use crate::config::{
        Configuration, DifficultyThreshold, EnergyAccounting, ExecutionTarget,
    };
    pub use crate::decision::{ConnectionStatus, DecisionEngine, UserConstraint};
    pub use crate::error::ChrisError;
    pub use crate::pareto::pareto_front;
    pub use crate::profiling::{ConfigurationProfile, Profiler, ProfilingOptions};
    pub use crate::report::RunReport;
    pub use crate::runtime::{ChrisRuntime, RuntimeOptions};
    pub use ppg_data::{IntoWindowSource, SliceSource, WindowSource};
    pub use ppg_models::zoo::{ModelKind, ModelZoo};
}
