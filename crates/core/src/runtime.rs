//! The CHRIS runtime: window-by-window collaborative inference.
//!
//! The runtime ties everything together. For every incoming window it:
//!
//! 1. reads the BLE connection status from the [`ConnectionSchedule`],
//! 2. asks the [`DecisionEngine`] for the active configuration (re-selection
//!    is a table lookup, so doing it every window is how CHRIS reacts to
//!    link drops),
//! 3. runs the activity classifier (on the IMU's ML core in the real system,
//!    so at zero MCU energy cost by default) to estimate the window
//!    difficulty,
//! 4. routes the window to the simple or the complex model of the pair and
//!    executes it locally or offloads it over BLE,
//! 5. charges the smartwatch (and, for offloaded windows, the phone) with the
//!    corresponding energy and records the error.

use std::collections::BTreeMap;

use hw_sim::ble::ConnectionSchedule;
use hw_sim::power_state::{PowerState, PowerStateTrace};
use hw_sim::units::{Energy, TimeSpan};
use ppg_data::{IntoWindowSource, WindowSource};
use ppg_dsp::stats::ErrorAccumulator;
use ppg_models::traits::{ActivityClassifier, HrEstimator, OracleActivityClassifier};
use ppg_models::zoo::{ModelKind, ModelZoo};
use serde::{Deserialize, Serialize};

use crate::config::EnergyAccounting;
use crate::decision::{ConnectionStatus, DecisionEngine, UserConstraint};
use crate::error::ChrisError;
use crate::profiling::Profiler;
use crate::report::RunReport;

/// Options controlling a runtime simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeOptions {
    /// How offloaded windows are charged to the smartwatch.
    pub accounting: EnergyAccounting,
    /// Seed of the calibrated estimators' error sequences.
    pub seed: u64,
    /// Energy charged to the MCU for running the activity classifier. Zero by
    /// default because the LSM6DSM ML core executes it in the real system.
    pub classifier_energy: Energy,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        Self {
            accounting: EnergyAccounting::default(),
            seed: 0xC4215,
            classifier_energy: Energy::ZERO,
        }
    }
}

/// The CHRIS runtime simulator.
///
/// A runtime is cheap to construct from clones of a shared [`ModelZoo`] and
/// [`DecisionEngine`] and is `Send`, so fleet-scale simulators can build one
/// per device inside worker threads (see the `fleet` crate).
pub struct ChrisRuntime {
    zoo: ModelZoo,
    engine: DecisionEngine,
    classifier: Box<dyn ActivityClassifier>,
    estimators: BTreeMap<ModelKind, Box<dyn HrEstimator>>,
    options: RuntimeOptions,
}

// Parallel executors move runtimes across threads; a non-`Send` classifier
// or estimator sneaking into the trait objects must fail to compile here,
// not in downstream crates.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ChrisRuntime>()
};

impl std::fmt::Debug for ChrisRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChrisRuntime")
            .field("configurations", &self.engine.len())
            .field("classifier", &self.classifier.name())
            .field("options", &self.options)
            .finish()
    }
}

impl ChrisRuntime {
    /// Creates a runtime with the oracle activity classifier (no
    /// misprediction effects).
    pub fn new(zoo: ModelZoo, engine: DecisionEngine, options: RuntimeOptions) -> Self {
        Self::with_classifier(
            zoo,
            engine,
            Box::new(OracleActivityClassifier::new()),
            options,
        )
    }

    /// Creates a runtime with an explicit activity classifier (for example a
    /// trained [`ppg_models::random_forest::RandomForest`]).
    pub fn with_classifier(
        zoo: ModelZoo,
        engine: DecisionEngine,
        classifier: Box<dyn ActivityClassifier>,
        options: RuntimeOptions,
    ) -> Self {
        let estimators: BTreeMap<ModelKind, Box<dyn HrEstimator>> = ModelKind::ALL
            .iter()
            .map(|&kind| {
                (
                    kind,
                    zoo.calibrated_estimator(kind, options.seed ^ kind as u64),
                )
            })
            .collect();
        Self {
            zoo,
            engine,
            classifier,
            estimators,
            options,
        }
    }

    /// The decision engine backing this runtime.
    pub fn engine(&self) -> &DecisionEngine {
        &self.engine
    }

    /// The runtime options.
    pub fn options(&self) -> RuntimeOptions {
        self.options
    }

    /// Runs CHRIS over a sequence of windows under a user constraint and a
    /// BLE connection schedule, returning the aggregated report.
    ///
    /// `windows` is anything convertible into a
    /// [`WindowSource`](ppg_data::WindowSource): an eager buffer
    /// (`&[LabeledWindow]`, `&Vec<LabeledWindow>`) or a lazy stream such as
    /// [`ppg_data::DatasetBuilder::window_stream`]. The runtime pulls one
    /// window at a time and never buffers the workload — with a synthesis
    /// stream, peak memory is O(1 window) instead of O(session) — and the
    /// report is byte-identical either way.
    ///
    /// # Errors
    ///
    /// Returns [`ChrisError::InvalidConstraint`] for a NaN or negative
    /// constraint bound (rejected before any window is pulled),
    /// [`ChrisError::EmptyWorkload`] when `windows` yields nothing,
    /// [`ChrisError::EmptyProfileTable`] when the decision engine has no
    /// configurations, [`ChrisError::Data`] when a streaming source fails
    /// mid-synthesis, and propagates model errors.
    pub fn run<S: IntoWindowSource>(
        &mut self,
        windows: S,
        constraint: &UserConstraint,
        schedule: &ConnectionSchedule,
    ) -> Result<RunReport, ChrisError> {
        constraint.validate()?;
        let mut source = windows.into_window_source();
        let profiler = Profiler::new(&self.zoo);
        let period = TimeSpan::from_seconds(hw_sim::PREDICTION_PERIOD_S);
        // One registry resolution per run; the loop below only touches
        // pre-resolved lock-free handles.
        let instruments = crate::metrics::RunInstruments::resolve();

        let mut errors = ErrorAccumulator::new();
        let mut per_activity: BTreeMap<String, ErrorAccumulator> = BTreeMap::new();
        let mut trace = PowerStateTrace::new();
        let mut phone_energy = Energy::ZERO;
        let mut offloaded = 0usize;
        let mut simple = 0usize;
        let mut disconnected = 0usize;
        let mut report = RunReport::default();

        let mut index = 0usize;
        // By-reference internal iteration: buffer-backed sources visit their
        // windows without cloning, lazy sources materialize one at a time.
        let n = source.try_for_each_window(|window| -> Result<(), ChrisError> {
            let connected = schedule.is_connected(index);
            if !connected {
                disconnected += 1;
            }
            let status = ConnectionStatus::from_connected(connected);
            let profile = self.engine.select_or_closest(constraint, status)?;
            let configuration = profile.configuration;
            report.record_configuration(&configuration, 1);

            let predicted_activity = {
                let _timer = instruments.time_classify();
                self.classifier.classify(window)?
            };
            let difficulty = predicted_activity.difficulty();
            let model = configuration.model_for(difficulty);
            let offload = configuration.offloads(difficulty) && connected;
            instruments.offload_decision(offload);

            if model == configuration.simple {
                simple += 1;
            }

            let estimator = self
                .estimators
                .get_mut(&model)
                .expect("every model kind has an estimator");
            let prediction = {
                let _timer = instruments.time_predict();
                estimator.predict(window)?
            };
            errors.record(prediction, window.hr_bpm);
            per_activity
                .entry(window.activity.name().to_string())
                .or_default()
                .record(prediction, window.hr_bpm);

            // Energy accounting for this window.
            let _energy_timer = instruments.time_energy();
            if self.options.classifier_energy > Energy::ZERO {
                trace.push(
                    PowerState::Acquire,
                    TimeSpan::ZERO,
                    self.options.classifier_energy,
                );
            }
            if offload {
                offloaded += 1;
                let (tx_time, _) = self.zoo.ble().offload_window()?;
                let watch_energy =
                    profiler.window_watch_energy(model, true, self.options.accounting);
                trace.push(PowerState::RadioTx, tx_time, watch_energy);
                phone_energy += profiler.window_phone_energy(model);
            } else {
                let compute_time = self.zoo.watch().execution_time(&model.workload_watch());
                let compute_energy = self.zoo.watch().compute_energy(&model.workload_watch());
                trace.push(PowerState::Compute, compute_time, compute_energy);
                let sleep_time = (period - compute_time).max_zero();
                trace.push(
                    PowerState::Sleep,
                    sleep_time,
                    self.zoo.watch().sleep_power * sleep_time,
                );
            }
            instruments.window_processed();
            index += 1;
            Ok(())
        })?;

        if n == 0 {
            return Err(ChrisError::EmptyWorkload);
        }
        let total_watch = trace.total_energy();
        report.windows = n;
        report.mae_bpm = errors.mae().unwrap_or(0.0);
        report.rmse_bpm = errors.rmse().unwrap_or(0.0);
        report.total_watch_energy = total_watch;
        report.avg_watch_energy = total_watch / n as f64;
        report.total_phone_energy = phone_energy;
        report.avg_phone_energy = phone_energy / n as f64;
        report.offload_fraction = offloaded as f32 / n as f32;
        report.simple_fraction = simple as f32 / n as f32;
        report.disconnected_fraction = disconnected as f32 / n as f32;
        report.watch_energy_breakdown = trace
            .breakdown()
            .into_iter()
            .map(|(state, energy)| (state.name().to_string(), energy))
            .collect();
        report.per_activity_mae = per_activity
            .into_iter()
            .map(|(activity, acc)| (activity, acc.mae().unwrap_or(0.0)))
            .collect();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiling::ProfilingOptions;
    use ppg_data::{DatasetBuilder, LabeledWindow};
    use ppg_models::random_forest::{RandomForest, RandomForestConfig};

    fn dataset_windows(subjects: usize, seed: u64) -> Vec<LabeledWindow> {
        DatasetBuilder::new()
            .subjects(subjects)
            .seconds_per_activity(24.0)
            .seed(seed)
            .build()
            .unwrap()
            .windows()
    }

    fn engine_for(windows: &[LabeledWindow]) -> DecisionEngine {
        let zoo = ModelZoo::paper_setup();
        let profiler = Profiler::new(&zoo);
        DecisionEngine::new(
            profiler
                .profile_all(windows, ProfilingOptions::default())
                .unwrap(),
        )
    }

    #[test]
    fn empty_windows_are_rejected() {
        let windows = dataset_windows(1, 31);
        let engine = engine_for(&windows);
        let mut runtime =
            ChrisRuntime::new(ModelZoo::paper_setup(), engine, RuntimeOptions::default());
        assert!(matches!(
            runtime.run(
                &[],
                &UserConstraint::MaxMae(6.0),
                &ConnectionSchedule::AlwaysConnected
            ),
            Err(ChrisError::EmptyWorkload)
        ));
    }

    #[test]
    fn empty_engine_is_rejected() {
        let windows = dataset_windows(1, 32);
        let mut runtime = ChrisRuntime::new(
            ModelZoo::paper_setup(),
            DecisionEngine::new(Vec::new()),
            RuntimeOptions::default(),
        );
        assert!(matches!(
            runtime.run(
                &windows,
                &UserConstraint::MaxMae(6.0),
                &ConnectionSchedule::AlwaysConnected
            ),
            Err(ChrisError::EmptyProfileTable)
        ));
    }

    #[test]
    fn mae_constraint_is_respected_on_profiling_data() {
        let windows = dataset_windows(2, 33);
        let engine = engine_for(&windows);
        let mut runtime =
            ChrisRuntime::new(ModelZoo::paper_setup(), engine, RuntimeOptions::default());
        let report = runtime
            .run(
                &windows,
                &UserConstraint::MaxMae(5.6),
                &ConnectionSchedule::AlwaysConnected,
            )
            .unwrap();
        // On the data it was profiled on, the selected configuration should
        // come close to its profiled MAE (different RNG streams shift it a bit).
        assert!(report.mae_bpm < 6.5, "MAE {}", report.mae_bpm);
        assert_eq!(report.windows, windows.len());
        assert!(
            report.offload_fraction > 0.0,
            "a 5.6 BPM target requires offloading"
        );
        // Much cheaper than running TimePPG-Small locally (0.735 mJ).
        assert!(report.avg_watch_energy.as_millijoules() < 0.735);
    }

    #[test]
    fn energy_constraint_is_respected() {
        let windows = dataset_windows(2, 34);
        let engine = engine_for(&windows);
        let mut runtime =
            ChrisRuntime::new(ModelZoo::paper_setup(), engine, RuntimeOptions::default());
        let budget = Energy::from_millijoules(0.30);
        let report = runtime
            .run(
                &windows,
                &UserConstraint::MaxEnergy(budget),
                &ConnectionSchedule::AlwaysConnected,
            )
            .unwrap();
        assert!(
            report.avg_watch_energy.as_millijoules() <= 0.30 * 1.1,
            "average energy {} exceeds the budget",
            report.avg_watch_energy
        );
    }

    #[test]
    fn disconnection_forces_local_configurations() {
        let windows = dataset_windows(2, 35);
        let engine = engine_for(&windows);
        let mut runtime =
            ChrisRuntime::new(ModelZoo::paper_setup(), engine, RuntimeOptions::default());
        let report = runtime
            .run(
                &windows,
                &UserConstraint::MaxMae(5.6),
                &ConnectionSchedule::NeverConnected,
            )
            .unwrap();
        assert_eq!(report.offload_fraction, 0.0);
        assert_eq!(report.disconnected_fraction, 1.0);
        // Without the phone, hitting 5.6 BPM requires running the deep models
        // locally on a large share of the windows, which costs more than the
        // best hybrid solutions (≈0.4 mJ per prediction).
        assert!(report.avg_watch_energy.as_millijoules() > 0.45);
        assert!(!report.watch_energy_breakdown.contains_key("radio_tx"));
    }

    #[test]
    fn intermittent_connection_mixes_behaviour() {
        let windows = dataset_windows(2, 36);
        let engine = engine_for(&windows);
        let mut runtime =
            ChrisRuntime::new(ModelZoo::paper_setup(), engine, RuntimeOptions::default());
        let schedule = ConnectionSchedule::DutyCycle { up: 3, down: 1 };
        let report = runtime
            .run(&windows, &UserConstraint::MaxMae(5.6), &schedule)
            .unwrap();
        assert!((report.disconnected_fraction - 0.25).abs() < 0.05);
        assert!(report.offload_fraction > 0.0);
        assert!(
            report.configuration_usage.len() >= 2,
            "link drops should switch configurations"
        );
    }

    #[test]
    fn report_breakdown_covers_compute_radio_and_sleep() {
        let windows = dataset_windows(1, 37);
        let engine = engine_for(&windows);
        let mut runtime =
            ChrisRuntime::new(ModelZoo::paper_setup(), engine, RuntimeOptions::default());
        let report = runtime
            .run(
                &windows,
                &UserConstraint::MaxMae(5.6),
                &ConnectionSchedule::AlwaysConnected,
            )
            .unwrap();
        assert!(report.watch_energy_breakdown.contains_key("compute"));
        assert!(report.watch_energy_breakdown.contains_key("radio_tx"));
        assert!(report.watch_energy_breakdown.contains_key("sleep"));
        let breakdown_total: f64 = report
            .watch_energy_breakdown
            .values()
            .map(|e| e.as_microjoules())
            .sum();
        assert!(
            (breakdown_total - report.total_watch_energy.as_microjoules()).abs() < 1e-3,
            "breakdown should sum to the total"
        );
        assert_eq!(report.per_activity_mae.len(), 9);
    }

    #[test]
    fn random_forest_classifier_changes_little_versus_oracle() {
        // The paper argues RF mispredictions do not significantly affect CHRIS.
        let train = dataset_windows(2, 38);
        let test = dataset_windows(1, 39);
        let engine = engine_for(&train);
        let rf = RandomForest::train(&train, RandomForestConfig::default()).unwrap();

        let mut oracle_rt = ChrisRuntime::new(
            ModelZoo::paper_setup(),
            engine.clone(),
            RuntimeOptions::default(),
        );
        let mut rf_rt = ChrisRuntime::with_classifier(
            ModelZoo::paper_setup(),
            engine,
            Box::new(rf),
            RuntimeOptions::default(),
        );
        let constraint = UserConstraint::MaxMae(5.6);
        let oracle_report = oracle_rt
            .run(&test, &constraint, &ConnectionSchedule::AlwaysConnected)
            .unwrap();
        let rf_report = rf_rt
            .run(&test, &constraint, &ConnectionSchedule::AlwaysConnected)
            .unwrap();
        assert!(
            (oracle_report.mae_bpm - rf_report.mae_bpm).abs() < 1.0,
            "oracle {} vs rf {}",
            oracle_report.mae_bpm,
            rf_report.mae_bpm
        );
        assert!(
            (oracle_report.avg_watch_energy.as_millijoules()
                - rf_report.avg_watch_energy.as_millijoules())
            .abs()
                < 0.15
        );
    }

    #[test]
    fn classifier_energy_option_adds_cost() {
        let windows = dataset_windows(1, 40);
        let engine = engine_for(&windows);
        let zoo = ModelZoo::paper_setup();
        let mut base = ChrisRuntime::new(zoo.clone(), engine.clone(), RuntimeOptions::default());
        let mut costly = ChrisRuntime::new(
            zoo,
            engine,
            RuntimeOptions {
                classifier_energy: Energy::from_microjoules(50.0),
                ..RuntimeOptions::default()
            },
        );
        let constraint = UserConstraint::MaxMae(8.0);
        let a = base
            .run(&windows, &constraint, &ConnectionSchedule::AlwaysConnected)
            .unwrap();
        let b = costly
            .run(&windows, &constraint, &ConnectionSchedule::AlwaysConnected)
            .unwrap();
        let delta = b.avg_watch_energy.as_microjoules() - a.avg_watch_energy.as_microjoules();
        assert!(
            (delta - 50.0).abs() < 1.0,
            "classifier energy should add ~50 uJ, added {delta}"
        );
    }

    #[test]
    fn streaming_and_eager_runs_produce_identical_reports() {
        let windows = dataset_windows(2, 42);
        let engine = engine_for(&windows);
        let zoo = ModelZoo::paper_setup();
        let mut eager_rt =
            ChrisRuntime::new(zoo.clone(), engine.clone(), RuntimeOptions::default());
        let mut stream_rt = ChrisRuntime::new(zoo, engine, RuntimeOptions::default());
        let constraint = UserConstraint::MaxMae(5.6);
        let schedule = ConnectionSchedule::DutyCycle { up: 5, down: 2 };
        let eager = eager_rt.run(&windows, &constraint, &schedule).unwrap();
        let stream = DatasetBuilder::new()
            .subjects(2)
            .seconds_per_activity(24.0)
            .seed(42)
            .window_stream()
            .unwrap();
        let streamed = stream_rt.run(stream, &constraint, &schedule).unwrap();
        assert_eq!(eager, streamed);
        assert_eq!(streamed.windows, windows.len());
    }

    #[test]
    fn debug_and_accessors() {
        let windows = dataset_windows(1, 41);
        let engine = engine_for(&windows);
        let runtime = ChrisRuntime::new(ModelZoo::paper_setup(), engine, RuntimeOptions::default());
        let text = format!("{runtime:?}");
        assert!(text.contains("ChrisRuntime"));
        assert!(runtime.engine().len() == 60);
        assert_eq!(runtime.options().classifier_energy, Energy::ZERO);
    }
}
