//! CHRIS configurations: model pairs, difficulty thresholds and execution
//! targets.
//!
//! A *configuration* is a pair of HR models — a simple/efficient one and a
//! complex/accurate one — plus the difficulty threshold that routes each
//! window to one of them and the execution target of the complex model
//! (locally on the smartwatch, or offloaded to the phone). With three models
//! in the zoo, ten threshold values and two targets the paper enumerates 60
//! configurations, of which about half are Pareto-optimal after profiling.

use serde::{Deserialize, Serialize};

use ppg_data::DifficultyLevel;
use ppg_models::zoo::ModelKind;

use crate::error::ChrisError;

/// Where the *complex* model of a configuration executes. The simple model of
/// a pair always runs on the smartwatch (offloading it never pays off, see the
/// paper's Sec. IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ExecutionTarget {
    /// Both models run on the smartwatch; usable when BLE is down.
    Local,
    /// The complex model runs on the phone (the window is streamed over BLE).
    Hybrid,
}

impl ExecutionTarget {
    /// Both execution targets.
    pub const ALL: [ExecutionTarget; 2] = [ExecutionTarget::Local, ExecutionTarget::Hybrid];

    /// Short name used in reports ("Local" / "Hybrid", as in Table II).
    pub fn name(self) -> &'static str {
        match self {
            ExecutionTarget::Local => "Local",
            ExecutionTarget::Hybrid => "Hybrid",
        }
    }
}

impl std::fmt::Display for ExecutionTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How the smartwatch energy of an offloaded window is accounted.
///
/// The paper's text is not fully self-consistent on this point (its Table III
/// BLE row, the "22 % less than always offloading" claim and the 179 µJ
/// operating point imply three slightly different accountings), so the
/// reproduction makes the choice explicit and sweepable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EnergyAccounting {
    /// Offloaded window costs the BLE transmission energy only (0.52 mJ with
    /// the calibrated link). This matches the paper's Fig. 3/Fig. 4 baselines
    /// most closely and is the default.
    #[default]
    BleOnly,
    /// Offloaded window costs the BLE transmission energy plus sleep power for
    /// the remainder of the 2-second period (the strictest accounting).
    BleWithSleep,
    /// Offloaded window streams only the new 64 samples of the stride (the
    /// phone reconstructs the overlap), i.e. a quarter of the payload, plus
    /// sleep for the rest of the period.
    IncrementalPayload,
}

impl EnergyAccounting {
    /// All accounting modes (used by the ablation bench).
    pub const ALL: [EnergyAccounting; 3] = [
        EnergyAccounting::BleOnly,
        EnergyAccounting::BleWithSleep,
        EnergyAccounting::IncrementalPayload,
    ];
}

/// A difficulty threshold in `0..=9`.
///
/// Windows whose predicted activity difficulty (1..=9) is **less than or equal
/// to** the threshold are routed to the simple model; the rest go to the
/// complex model. Threshold 0 therefore means "always use the complex model"
/// and 9 means "always use the simple model".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DifficultyThreshold(u8);

impl DifficultyThreshold {
    /// Always use the complex model.
    pub const ALWAYS_COMPLEX: DifficultyThreshold = DifficultyThreshold(0);
    /// Always use the simple model.
    pub const ALWAYS_SIMPLE: DifficultyThreshold = DifficultyThreshold(9);

    /// Creates a threshold, returning an error outside `0..=9`.
    ///
    /// # Errors
    ///
    /// Returns [`ChrisError::InvalidParameter`] when `value > 9`.
    pub fn new(value: u8) -> Result<Self, ChrisError> {
        if value > 9 {
            return Err(ChrisError::InvalidParameter {
                name: "difficulty_threshold",
                requirement: "must be within 0..=9",
            });
        }
        Ok(Self(value))
    }

    /// All ten thresholds in increasing order.
    pub fn all() -> impl Iterator<Item = DifficultyThreshold> {
        (0..=9).map(DifficultyThreshold)
    }

    /// Raw threshold value.
    pub fn value(self) -> u8 {
        self.0
    }

    /// Whether a window of the given difficulty goes to the simple model.
    pub fn routes_to_simple(self, difficulty: DifficultyLevel) -> bool {
        difficulty.value() <= self.0
    }

    /// Number of activities (out of 9) treated as "easy" by this threshold.
    pub fn easy_activity_count(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for DifficultyThreshold {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One CHRIS configuration: the model pair, the difficulty threshold and the
/// execution target of the complex model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    /// The cheap model, always executed on the smartwatch.
    pub simple: ModelKind,
    /// The accurate model, executed locally or offloaded depending on
    /// [`Configuration::target`].
    pub complex: ModelKind,
    /// Difficulty threshold routing windows between the two models.
    pub threshold: DifficultyThreshold,
    /// Where the complex model runs.
    pub target: ExecutionTarget,
}

impl Configuration {
    /// Creates a configuration, validating that the pair is ordered (the
    /// simple model must be cheaper, i.e. appear before the complex one in
    /// [`ModelKind::ALL`]).
    ///
    /// # Errors
    ///
    /// Returns [`ChrisError::InvalidParameter`] when `simple` is not strictly
    /// cheaper than `complex`.
    pub fn new(
        simple: ModelKind,
        complex: ModelKind,
        threshold: DifficultyThreshold,
        target: ExecutionTarget,
    ) -> Result<Self, ChrisError> {
        if simple >= complex {
            return Err(ChrisError::InvalidParameter {
                name: "model pair",
                requirement: "the simple model must be cheaper than the complex model",
            });
        }
        Ok(Self {
            simple,
            complex,
            threshold,
            target,
        })
    }

    /// Which model handles a window of the given difficulty.
    pub fn model_for(&self, difficulty: DifficultyLevel) -> ModelKind {
        if self.threshold.routes_to_simple(difficulty) {
            self.simple
        } else {
            self.complex
        }
    }

    /// Whether a window of the given difficulty is offloaded to the phone.
    pub fn offloads(&self, difficulty: DifficultyLevel) -> bool {
        self.target == ExecutionTarget::Hybrid && !self.threshold.routes_to_simple(difficulty)
    }

    /// Short description like `"[AT, TimePPG-Big] thr=6 Hybrid"` (the format
    /// of the paper's Table II rows).
    pub fn label(&self) -> String {
        format!(
            "[{}, {}] thr={} {}",
            self.simple.name(),
            self.complex.name(),
            self.threshold,
            self.target
        )
    }
}

impl std::fmt::Display for Configuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Enumerates every CHRIS configuration for the default 3-model zoo:
/// 3 ordered model pairs × 10 thresholds × 2 execution targets = 60.
pub fn enumerate_configurations() -> Vec<Configuration> {
    let mut out = Vec::new();
    for (i, &simple) in ModelKind::ALL.iter().enumerate() {
        for &complex in &ModelKind::ALL[i + 1..] {
            for threshold in DifficultyThreshold::all() {
                for target in ExecutionTarget::ALL {
                    out.push(
                        Configuration::new(simple, complex, threshold, target)
                            .expect("enumeration only builds ordered pairs"),
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppg_data::Activity;

    #[test]
    fn threshold_validation() {
        assert!(DifficultyThreshold::new(10).is_err());
        assert_eq!(
            DifficultyThreshold::new(0).unwrap(),
            DifficultyThreshold::ALWAYS_COMPLEX
        );
        assert_eq!(
            DifficultyThreshold::new(9).unwrap(),
            DifficultyThreshold::ALWAYS_SIMPLE
        );
        assert_eq!(DifficultyThreshold::all().count(), 10);
        assert_eq!(DifficultyThreshold::new(4).unwrap().value(), 4);
        assert_eq!(
            DifficultyThreshold::new(4).unwrap().easy_activity_count(),
            4
        );
    }

    #[test]
    fn threshold_routing() {
        let thr = DifficultyThreshold::new(4).unwrap();
        assert!(thr.routes_to_simple(Activity::Resting.difficulty()));
        assert!(thr.routes_to_simple(Activity::Lunch.difficulty())); // difficulty 4
        assert!(!thr.routes_to_simple(Activity::Driving.difficulty())); // difficulty 5
        assert!(!thr.routes_to_simple(Activity::TableSoccer.difficulty()));
        assert!(
            DifficultyThreshold::ALWAYS_SIMPLE.routes_to_simple(Activity::TableSoccer.difficulty())
        );
        assert!(
            !DifficultyThreshold::ALWAYS_COMPLEX.routes_to_simple(Activity::Resting.difficulty())
        );
    }

    #[test]
    fn configuration_rejects_unordered_pairs() {
        let thr = DifficultyThreshold::new(5).unwrap();
        assert!(Configuration::new(
            ModelKind::TimePpgBig,
            ModelKind::AdaptiveThreshold,
            thr,
            ExecutionTarget::Local
        )
        .is_err());
        assert!(Configuration::new(
            ModelKind::AdaptiveThreshold,
            ModelKind::AdaptiveThreshold,
            thr,
            ExecutionTarget::Local
        )
        .is_err());
        assert!(Configuration::new(
            ModelKind::AdaptiveThreshold,
            ModelKind::TimePpgBig,
            thr,
            ExecutionTarget::Hybrid
        )
        .is_ok());
    }

    #[test]
    fn sixty_configurations_are_enumerated() {
        let configs = enumerate_configurations();
        assert_eq!(configs.len(), 60);
        // All unique.
        let mut set = std::collections::HashSet::new();
        for c in &configs {
            assert!(set.insert(*c), "duplicate configuration {c}");
        }
        // 30 hybrid, 30 local.
        let hybrid = configs
            .iter()
            .filter(|c| c.target == ExecutionTarget::Hybrid)
            .count();
        assert_eq!(hybrid, 30);
    }

    #[test]
    fn model_selection_and_offloading() {
        let config = Configuration::new(
            ModelKind::AdaptiveThreshold,
            ModelKind::TimePpgBig,
            DifficultyThreshold::new(4).unwrap(),
            ExecutionTarget::Hybrid,
        )
        .unwrap();
        assert_eq!(
            config.model_for(Activity::Resting.difficulty()),
            ModelKind::AdaptiveThreshold
        );
        assert_eq!(
            config.model_for(Activity::TableSoccer.difficulty()),
            ModelKind::TimePpgBig
        );
        assert!(!config.offloads(Activity::Resting.difficulty()));
        assert!(config.offloads(Activity::TableSoccer.difficulty()));

        let local = Configuration {
            target: ExecutionTarget::Local,
            ..config
        };
        assert!(!local.offloads(Activity::TableSoccer.difficulty()));
    }

    #[test]
    fn label_format_matches_table2_style() {
        let config = Configuration::new(
            ModelKind::AdaptiveThreshold,
            ModelKind::TimePpgSmall,
            DifficultyThreshold::new(9).unwrap(),
            ExecutionTarget::Local,
        )
        .unwrap();
        assert_eq!(config.label(), "[AT, TimePPG-Small] thr=9 Local");
        assert_eq!(config.to_string(), config.label());
    }

    #[test]
    fn execution_target_and_accounting_metadata() {
        assert_eq!(ExecutionTarget::Local.to_string(), "Local");
        assert_eq!(ExecutionTarget::ALL.len(), 2);
        assert_eq!(EnergyAccounting::ALL.len(), 3);
        assert_eq!(EnergyAccounting::default(), EnergyAccounting::BleOnly);
    }
}
