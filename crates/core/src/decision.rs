//! The CHRIS Decision Engine.
//!
//! Given the profiled configuration table, the current BLE connection status
//! and a user-defined constraint (a maximum MAE or a maximum smartwatch
//! energy), the decision engine picks the configuration to run:
//!
//! * the connection status restricts the feasible set — hybrid configurations
//!   are dropped while the link is down,
//! * a `MaxMae` constraint selects the *lowest-energy* feasible configuration
//!   whose profiled MAE does not exceed the threshold,
//! * a `MaxEnergy` constraint selects the *most accurate* feasible
//!   configuration whose profiled smartwatch energy does not exceed the
//!   threshold.
//!
//! Because the table is stored sorted by energy, both lookups are a single
//! linear pass, as the paper points out.

use serde::{Deserialize, Serialize};

use hw_sim::units::Energy;

use crate::config::ExecutionTarget;
use crate::error::ChrisError;
use crate::pareto::pareto_front;
use crate::profiling::ConfigurationProfile;

/// Whether the BLE link to the phone is currently available.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnectionStatus {
    /// The phone is reachable; hybrid configurations are feasible.
    Connected,
    /// The phone is not reachable; only local configurations are feasible.
    Disconnected,
}

impl ConnectionStatus {
    /// Builds the status from a boolean (`true` = connected).
    pub fn from_connected(connected: bool) -> Self {
        if connected {
            ConnectionStatus::Connected
        } else {
            ConnectionStatus::Disconnected
        }
    }
}

/// The user-defined soft constraint driving configuration selection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum UserConstraint {
    /// Maximum acceptable mean absolute error, in BPM.
    MaxMae(f32),
    /// Maximum acceptable smartwatch energy per prediction.
    MaxEnergy(Energy),
}

impl UserConstraint {
    /// Builds a validated `MaxMae` constraint.
    ///
    /// # Errors
    ///
    /// Returns [`ChrisError::InvalidConstraint`] for a NaN, infinite or
    /// negative MAE target.
    pub fn max_mae(target_bpm: f32) -> Result<Self, ChrisError> {
        let constraint = UserConstraint::MaxMae(target_bpm);
        constraint.validate()?;
        Ok(constraint)
    }

    /// Builds a validated `MaxEnergy` constraint.
    ///
    /// # Errors
    ///
    /// Returns [`ChrisError::InvalidConstraint`] for a NaN, infinite or
    /// negative energy budget.
    pub fn max_energy(budget: Energy) -> Result<Self, ChrisError> {
        let constraint = UserConstraint::MaxEnergy(budget);
        constraint.validate()?;
        Ok(constraint)
    }

    /// Checks the constraint's bound for NaN, infinity and negativity.
    ///
    /// A NaN bound is the nastiest case: every `<=` comparison against the
    /// profiled table is `false`, so selection silently degrades to "nothing
    /// feasible" and the soft-constraint fallback picks an extreme
    /// configuration with no diagnostic. Selection entry points call this so
    /// that such constraints fail loudly instead.
    ///
    /// # Errors
    ///
    /// Returns [`ChrisError::InvalidConstraint`] describing the offending
    /// bound.
    pub fn validate(&self) -> Result<(), ChrisError> {
        let invalid = |requirement| {
            Err(ChrisError::InvalidConstraint {
                constraint: self.to_string(),
                requirement,
            })
        };
        match *self {
            UserConstraint::MaxMae(target) => {
                if target.is_nan() {
                    return invalid("MAE target must not be NaN");
                }
                if !target.is_finite() || target < 0.0 {
                    return invalid("MAE target must be finite and non-negative");
                }
            }
            UserConstraint::MaxEnergy(budget) => {
                let microjoules = budget.as_microjoules();
                if microjoules.is_nan() {
                    return invalid("energy budget must not be NaN");
                }
                if !microjoules.is_finite() || microjoules < 0.0 {
                    return invalid("energy budget must be finite and non-negative");
                }
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for UserConstraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UserConstraint::MaxMae(mae) => write!(f, "MAE <= {mae:.2} BPM"),
            UserConstraint::MaxEnergy(e) => write!(f, "energy <= {e}"),
        }
    }
}

/// The decision engine: the profiled configuration table plus the selection
/// logic of the paper's Fig. 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionEngine {
    profiles: Vec<ConfigurationProfile>,
}

impl DecisionEngine {
    /// Creates the engine from a profiled table. The table is (re)sorted by
    /// smartwatch energy so selections are single-pass.
    ///
    /// Ordering uses `total_cmp`, so a NaN in a profiled MAE or energy (a
    /// corrupted table entry) sorts deterministically to the end of the table
    /// instead of silently scrambling it.
    pub fn new(mut profiles: Vec<ConfigurationProfile>) -> Self {
        profiles.sort_by(|a, b| {
            a.watch_energy
                .as_microjoules()
                .total_cmp(&b.watch_energy.as_microjoules())
                .then(a.mae_bpm.total_cmp(&b.mae_bpm))
        });
        Self { profiles }
    }

    /// The stored profiles, sorted by increasing smartwatch energy.
    pub fn profiles(&self) -> &[ConfigurationProfile] {
        &self.profiles
    }

    /// Number of stored configurations.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The configurations feasible under the given connection status.
    pub fn feasible(
        &self,
        status: ConnectionStatus,
    ) -> impl Iterator<Item = &ConfigurationProfile> {
        self.profiles.iter().filter(move |p| match status {
            ConnectionStatus::Connected => true,
            ConnectionStatus::Disconnected => p.configuration.target == ExecutionTarget::Local,
        })
    }

    /// Selects the configuration satisfying the constraint, or `None` when no
    /// feasible configuration satisfies it.
    ///
    /// This low-level lookup has no error channel and does **not** validate
    /// the constraint: a NaN bound fails every comparison and yields `None`
    /// indistinguishably from a genuinely unsatisfiable constraint. Build
    /// constraints through [`UserConstraint::max_mae`] /
    /// [`UserConstraint::max_energy`] (or call
    /// [`UserConstraint::validate`]), or use
    /// [`DecisionEngine::select_or_closest`], which rejects such bounds with
    /// a typed [`ChrisError::InvalidConstraint`].
    pub fn select(
        &self,
        constraint: &UserConstraint,
        status: ConnectionStatus,
    ) -> Option<&ConfigurationProfile> {
        match *constraint {
            UserConstraint::MaxMae(max_mae) => self
                .feasible(status)
                .filter(|p| p.mae_bpm <= max_mae)
                .min_by(|a, b| {
                    a.watch_energy
                        .as_microjoules()
                        .total_cmp(&b.watch_energy.as_microjoules())
                }),
            UserConstraint::MaxEnergy(max_energy) => self
                .feasible(status)
                .filter(|p| p.watch_energy <= max_energy)
                .min_by(|a, b| a.mae_bpm.total_cmp(&b.mae_bpm)),
        }
    }

    /// Selects the configuration satisfying the constraint, falling back to
    /// the closest feasible configuration when the constraint cannot be met
    /// (the constraint is soft, as the paper notes): the most accurate
    /// feasible configuration for a `MaxMae` request, the lowest-energy one
    /// for a `MaxEnergy` request.
    ///
    /// # Errors
    ///
    /// Returns [`ChrisError::InvalidConstraint`] for a NaN or negative
    /// constraint bound (which would otherwise silently fail every
    /// comparison and mis-select via the fallback),
    /// [`ChrisError::EmptyProfileTable`] when the table is empty and
    /// [`ChrisError::NoFeasibleConfiguration`] when connectivity leaves no
    /// feasible configuration at all.
    pub fn select_or_closest(
        &self,
        constraint: &UserConstraint,
        status: ConnectionStatus,
    ) -> Result<&ConfigurationProfile, ChrisError> {
        constraint.validate()?;
        if self.profiles.is_empty() {
            return Err(ChrisError::EmptyProfileTable);
        }
        if let Some(found) = self.select(constraint, status) {
            return Ok(found);
        }
        let fallback = match *constraint {
            UserConstraint::MaxMae(_) => self
                .feasible(status)
                .min_by(|a, b| a.mae_bpm.total_cmp(&b.mae_bpm)),
            UserConstraint::MaxEnergy(_) => self.feasible(status).min_by(|a, b| {
                a.watch_energy
                    .as_microjoules()
                    .total_cmp(&b.watch_energy.as_microjoules())
            }),
        };
        fallback.ok_or_else(|| ChrisError::NoFeasibleConfiguration {
            request: format!("{constraint} with {status:?} link"),
        })
    }

    /// The Pareto-optimal configurations (minimizing MAE and smartwatch
    /// energy) among those feasible under the given connection status.
    pub fn pareto(&self, status: ConnectionStatus) -> Vec<&ConfigurationProfile> {
        let feasible: Vec<&ConfigurationProfile> = self.feasible(status).collect();
        let front = pareto_front(&feasible, |p| {
            (p.watch_energy.as_microjoules(), f64::from(p.mae_bpm))
        });
        front.into_iter().map(|i| feasible[i]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Configuration, DifficultyThreshold, ExecutionTarget};
    use ppg_models::zoo::ModelKind;

    fn profile(
        simple: ModelKind,
        complex: ModelKind,
        thr: u8,
        target: ExecutionTarget,
        mae: f32,
        energy_mj: f64,
    ) -> ConfigurationProfile {
        ConfigurationProfile {
            configuration: Configuration::new(
                simple,
                complex,
                DifficultyThreshold::new(thr).unwrap(),
                target,
            )
            .unwrap(),
            mae_bpm: mae,
            watch_energy: Energy::from_millijoules(energy_mj),
            phone_energy: Energy::ZERO,
            offload_fraction: if target == ExecutionTarget::Hybrid {
                0.5
            } else {
                0.0
            },
            simple_fraction: 0.5,
            windows: 100,
        }
    }

    fn sample_table() -> Vec<ConfigurationProfile> {
        vec![
            profile(
                ModelKind::AdaptiveThreshold,
                ModelKind::TimePpgBig,
                9,
                ExecutionTarget::Local,
                11.0,
                0.23,
            ),
            profile(
                ModelKind::AdaptiveThreshold,
                ModelKind::TimePpgBig,
                6,
                ExecutionTarget::Hybrid,
                7.1,
                0.33,
            ),
            profile(
                ModelKind::AdaptiveThreshold,
                ModelKind::TimePpgBig,
                4,
                ExecutionTarget::Hybrid,
                5.5,
                0.40,
            ),
            profile(
                ModelKind::AdaptiveThreshold,
                ModelKind::TimePpgSmall,
                4,
                ExecutionTarget::Local,
                7.5,
                0.52,
            ),
            profile(
                ModelKind::TimePpgSmall,
                ModelKind::TimePpgBig,
                5,
                ExecutionTarget::Local,
                5.3,
                18.0,
            ),
            profile(
                ModelKind::AdaptiveThreshold,
                ModelKind::TimePpgBig,
                0,
                ExecutionTarget::Local,
                4.9,
                41.0,
            ),
        ]
    }

    #[test]
    fn engine_sorts_by_energy() {
        let mut table = sample_table();
        table.reverse();
        let engine = DecisionEngine::new(table);
        assert_eq!(engine.len(), 6);
        assert!(!engine.is_empty());
        for pair in engine.profiles().windows(2) {
            assert!(pair[0].watch_energy <= pair[1].watch_energy);
        }
    }

    #[test]
    fn max_mae_selects_lowest_energy_satisfying() {
        let engine = DecisionEngine::new(sample_table());
        let selected = engine
            .select(&UserConstraint::MaxMae(5.6), ConnectionStatus::Connected)
            .unwrap();
        // The cheapest configuration with MAE <= 5.6 is the hybrid at 0.40 mJ.
        assert!((selected.watch_energy.as_millijoules() - 0.40).abs() < 1e-9);
        assert!(selected.mae_bpm <= 5.6);
    }

    #[test]
    fn max_energy_selects_most_accurate_affordable() {
        let engine = DecisionEngine::new(sample_table());
        let selected = engine
            .select(
                &UserConstraint::MaxEnergy(Energy::from_millijoules(0.45)),
                ConnectionStatus::Connected,
            )
            .unwrap();
        assert!((selected.mae_bpm - 5.5).abs() < 1e-6);
        assert!(selected.watch_energy <= Energy::from_millijoules(0.45));
    }

    #[test]
    fn disconnected_excludes_hybrid_configurations() {
        let engine = DecisionEngine::new(sample_table());
        let selected = engine
            .select(&UserConstraint::MaxMae(5.6), ConnectionStatus::Disconnected)
            .unwrap();
        assert_eq!(selected.configuration.target, ExecutionTarget::Local);
        // The best local configuration under 5.6 BPM costs 18 mJ.
        assert!((selected.watch_energy.as_millijoules() - 18.0).abs() < 1e-9);
        let feasible_count = engine.feasible(ConnectionStatus::Disconnected).count();
        assert_eq!(feasible_count, 4);
    }

    #[test]
    fn unsatisfiable_constraint_returns_none_then_falls_back() {
        let engine = DecisionEngine::new(sample_table());
        assert!(engine
            .select(&UserConstraint::MaxMae(1.0), ConnectionStatus::Connected)
            .is_none());
        let fallback = engine
            .select_or_closest(&UserConstraint::MaxMae(1.0), ConnectionStatus::Connected)
            .unwrap();
        // Fallback is the most accurate configuration.
        assert!((fallback.mae_bpm - 4.9).abs() < 1e-6);

        assert!(engine
            .select(
                &UserConstraint::MaxEnergy(Energy::from_microjoules(1.0)),
                ConnectionStatus::Connected
            )
            .is_none());
        let fallback = engine
            .select_or_closest(
                &UserConstraint::MaxEnergy(Energy::from_microjoules(1.0)),
                ConnectionStatus::Connected,
            )
            .unwrap();
        // Fallback is the cheapest configuration.
        assert!((fallback.watch_energy.as_millijoules() - 0.23).abs() < 1e-9);
    }

    #[test]
    fn empty_table_is_an_error() {
        let engine = DecisionEngine::new(Vec::new());
        assert!(matches!(
            engine.select_or_closest(&UserConstraint::MaxMae(5.0), ConnectionStatus::Connected),
            Err(ChrisError::EmptyProfileTable)
        ));
        assert!(engine
            .select(&UserConstraint::MaxMae(5.0), ConnectionStatus::Connected)
            .is_none());
    }

    #[test]
    fn pareto_front_drops_dominated_configurations() {
        let engine = DecisionEngine::new(sample_table());
        let front = engine.pareto(ConnectionStatus::Connected);
        // The AT+Small local row (7.5 BPM, 0.52 mJ) is dominated by the hybrid
        // rows; the Small+Big local row (5.3, 18.0) is dominated by nothing
        // cheaper than it except... check it: (0.40, 5.5) dominates (18.0, 5.3)?
        // No: 5.3 < 5.5, so it stays.
        assert!(front.iter().all(|p| {
            !(p.configuration.simple == ModelKind::AdaptiveThreshold
                && p.configuration.complex == ModelKind::TimePpgSmall)
        }));
        assert!(front.len() >= 4);
        // Front is sorted by energy and has decreasing MAE.
        for pair in front.windows(2) {
            assert!(pair[0].watch_energy <= pair[1].watch_energy);
            assert!(pair[0].mae_bpm >= pair[1].mae_bpm);
        }
    }

    #[test]
    fn nan_profiles_sort_last_instead_of_scrambling_the_table() {
        let mut table = sample_table();
        table.push(profile(
            ModelKind::AdaptiveThreshold,
            ModelKind::TimePpgBig,
            5,
            ExecutionTarget::Local,
            f32::NAN,
            f64::NAN,
        ));
        table.reverse();
        let engine = DecisionEngine::new(table);
        // The NaN row lands at the end; everything before it is sorted.
        assert!(engine.profiles().last().unwrap().mae_bpm.is_nan());
        for pair in engine.profiles()[..engine.len() - 1].windows(2) {
            assert!(pair[0].watch_energy <= pair[1].watch_energy);
        }
        // Selection never returns the NaN row (a NaN MAE fails every filter,
        // and NaN energy is the total_cmp maximum).
        let selected = engine
            .select(&UserConstraint::MaxMae(5.6), ConnectionStatus::Connected)
            .unwrap();
        assert!(selected.mae_bpm.is_finite());
        let selected = engine
            .select(
                &UserConstraint::MaxEnergy(Energy::from_millijoules(50.0)),
                ConnectionStatus::Connected,
            )
            .unwrap();
        assert!(selected.mae_bpm.is_finite());
    }

    #[test]
    fn nan_constraint_errors_instead_of_silently_mis_selecting() {
        let engine = DecisionEngine::new(sample_table());
        // The pre-fix failure mode, kept as documentation: a NaN bound fails
        // every table comparison, so `select` finds "nothing feasible" even
        // though the table is fully populated...
        assert!(engine
            .select(
                &UserConstraint::MaxMae(f32::NAN),
                ConnectionStatus::Connected
            )
            .is_none());
        assert!(engine
            .select(
                &UserConstraint::MaxEnergy(Energy::from_millijoules(f64::NAN)),
                ConnectionStatus::Connected
            )
            .is_none());
        // ...and `select_or_closest` would then silently mis-select the
        // soft-constraint fallback (the most accurate / cheapest row) with no
        // diagnostic. It now reports a typed error instead.
        assert!(matches!(
            engine.select_or_closest(
                &UserConstraint::MaxMae(f32::NAN),
                ConnectionStatus::Connected
            ),
            Err(ChrisError::InvalidConstraint { .. })
        ));
        assert!(matches!(
            engine.select_or_closest(
                &UserConstraint::MaxEnergy(Energy::from_millijoules(f64::NAN)),
                ConnectionStatus::Connected
            ),
            Err(ChrisError::InvalidConstraint { .. })
        ));
    }

    #[test]
    fn negative_and_infinite_constraints_are_rejected_at_construction() {
        assert!(matches!(
            UserConstraint::max_mae(-1.0),
            Err(ChrisError::InvalidConstraint { .. })
        ));
        assert!(matches!(
            UserConstraint::max_mae(f32::INFINITY),
            Err(ChrisError::InvalidConstraint { .. })
        ));
        assert!(matches!(
            UserConstraint::max_energy(Energy::from_millijoules(-0.5)),
            Err(ChrisError::InvalidConstraint { .. })
        ));
        assert!(matches!(
            UserConstraint::max_energy(Energy::from_millijoules(f64::INFINITY)),
            Err(ChrisError::InvalidConstraint { .. })
        ));
        // Valid bounds construct and validate cleanly, zero included.
        assert_eq!(
            UserConstraint::max_mae(5.6).unwrap(),
            UserConstraint::MaxMae(5.6)
        );
        assert!(UserConstraint::max_mae(0.0).is_ok());
        let budget = Energy::from_millijoules(0.4);
        assert_eq!(
            UserConstraint::max_energy(budget).unwrap(),
            UserConstraint::MaxEnergy(budget)
        );
        assert!(UserConstraint::MaxMae(7.0).validate().is_ok());
    }

    #[test]
    fn connection_status_from_bool_and_display() {
        assert_eq!(
            ConnectionStatus::from_connected(true),
            ConnectionStatus::Connected
        );
        assert_eq!(
            ConnectionStatus::from_connected(false),
            ConnectionStatus::Disconnected
        );
        assert!(UserConstraint::MaxMae(5.6).to_string().contains("5.60"));
        assert!(UserConstraint::MaxEnergy(Energy::from_millijoules(0.5))
            .to_string()
            .contains("energy"));
    }
}
