//! Runtime hot-path instrumentation.
//!
//! [`RunInstruments`] bundles every telemetry handle the per-window loop in
//! [`ChrisRuntime::run`](crate::runtime::ChrisRuntime::run) touches. The
//! handles are resolved **once per run** from the thread's active registry,
//! so the per-window cost is a few relaxed atomic operations plus two clock
//! reads — no registry lookups inside the loop.
//!
//! Counter series (windows, offload decisions by backend) are
//! [`Stable`](telemetry::Stability::Stable): their values depend only on the
//! simulated workload and are identical for any thread count or partition,
//! so the fleet layer embeds them in byte-stable shard artifacts. Stage
//! duration histograms are
//! [`Observational`](telemetry::Stability::Observational).

use telemetry::{Counter, Histogram, Registry, ScopedTimer, Stability, DURATION_NS_BOUNDS};

/// Series name of the processed-window counter.
pub const WINDOWS_SERIES: &str = "chris_windows_total";

/// Help text of [`WINDOWS_SERIES`].
pub const WINDOWS_HELP: &str = "Windows processed by the CHRIS runtime";

/// Series name of the per-backend offload decision counter (labelled by
/// `backend`: `"phone"` for offloaded windows, `"wearable"` for local ones).
pub const OFFLOAD_DECISIONS_SERIES: &str = "chris_offload_decisions_total";

/// Help text of [`OFFLOAD_DECISIONS_SERIES`].
pub const OFFLOAD_DECISIONS_HELP: &str =
    "Per-window inference placement decisions, by executing backend";

/// The runtime pipeline stages timed into
/// [`telemetry::STAGE_DURATION_SERIES`].
const STAGES: [&str; 3] = ["classify", "predict", "energy"];

/// Telemetry handles for one runtime run, resolved once at run start.
#[derive(Debug)]
pub(crate) struct RunInstruments {
    windows: Counter,
    offload_phone: Counter,
    offload_wearable: Counter,
    classify: Histogram,
    predict: Histogram,
    energy: Histogram,
}

impl RunInstruments {
    /// Resolves (registering if needed) every series on the thread's active
    /// registry. All series are registered eagerly — a run that never
    /// offloads still exposes a zero-valued `backend="phone"` counter, so
    /// every shard reports an identical series set.
    pub(crate) fn resolve() -> Self {
        let registry = telemetry::active();
        let stage = |name: &str| -> Histogram {
            registry
                .histogram(
                    telemetry::STAGE_DURATION_SERIES,
                    &[("stage", name)],
                    telemetry::STAGE_DURATION_HELP,
                    Stability::Observational,
                    &DURATION_NS_BOUNDS,
                )
                .expect("stage histogram registration cannot fail")
        };
        let offload = |registry: &Registry, backend: &str| -> Counter {
            registry
                .counter(
                    OFFLOAD_DECISIONS_SERIES,
                    &[("backend", backend)],
                    OFFLOAD_DECISIONS_HELP,
                    Stability::Stable,
                )
                .expect("offload counter registration cannot fail")
        };
        Self {
            windows: registry
                .counter(WINDOWS_SERIES, &[], WINDOWS_HELP, Stability::Stable)
                .expect("window counter registration cannot fail"),
            offload_phone: offload(&registry, "phone"),
            offload_wearable: offload(&registry, "wearable"),
            classify: stage(STAGES[0]),
            predict: stage(STAGES[1]),
            energy: stage(STAGES[2]),
        }
    }

    pub(crate) fn window_processed(&self) {
        self.windows.inc();
    }

    pub(crate) fn offload_decision(&self, offloaded: bool) {
        if offloaded {
            self.offload_phone.inc();
        } else {
            self.offload_wearable.inc();
        }
    }

    pub(crate) fn time_classify(&self) -> ScopedTimer {
        self.classify.start_timer()
    }

    pub(crate) fn time_predict(&self) -> ScopedTimer {
        self.predict.start_timer()
    }

    pub(crate) fn time_energy(&self) -> ScopedTimer {
        self.energy.start_timer()
    }
}
