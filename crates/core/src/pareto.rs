//! Pareto-front extraction in the (MAE, energy) plane.
//!
//! Both objectives are minimized. A point is Pareto-optimal when no other
//! point is at least as good on both objectives and strictly better on one.

/// Returns the indices of the Pareto-optimal items under the two-objective
/// minimization defined by `objectives`.
///
/// The returned indices are sorted by the first objective (ascending); ties on
/// both objectives keep the first occurrence only, so the front contains no
/// duplicated points.
///
/// ```
/// let points = [(1.0, 5.0), (2.0, 3.0), (3.0, 4.0), (4.0, 1.0)];
/// let front = chris_core::pareto::pareto_front(&points, |&(a, b)| (a, b));
/// assert_eq!(front, vec![0, 1, 3]); // (3,4) is dominated by (2,3)
/// ```
pub fn pareto_front<T, F>(items: &[T], objectives: F) -> Vec<usize>
where
    F: Fn(&T) -> (f64, f64),
{
    let points: Vec<(f64, f64)> = items.iter().map(&objectives).collect();
    let mut order: Vec<usize> = (0..items.len()).collect();
    // Sort by first objective, then by second; `total_cmp` keeps the
    // comparator transitive even if a corrupted table injects a NaN (NaN
    // points sort last and never enter the front, matching the decision
    // engine's ordering).
    order.sort_by(|&a, &b| {
        points[a]
            .0
            .total_cmp(&points[b].0)
            .then(points[a].1.total_cmp(&points[b].1))
    });
    let mut front = Vec::new();
    let mut best_second = f64::INFINITY;
    let mut last_kept: Option<(f64, f64)> = None;
    for idx in order {
        let (first, second) = points[idx];
        if second < best_second {
            // Skip exact duplicates of the previously kept point.
            if last_kept != Some((first, second)) {
                front.push(idx);
                last_kept = Some((first, second));
            }
            best_second = second;
        }
    }
    front
}

/// Returns `true` when `candidate` is dominated by `other` (other is no worse
/// on both objectives and strictly better on at least one).
pub fn dominated_by(candidate: (f64, f64), other: (f64, f64)) -> bool {
    other.0 <= candidate.0
        && other.1 <= candidate.1
        && (other.0 < candidate.0 || other.1 < candidate.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_gives_empty_front() {
        let items: Vec<(f64, f64)> = Vec::new();
        assert!(pareto_front(&items, |&p| p).is_empty());
    }

    #[test]
    fn single_point_is_optimal() {
        assert_eq!(pareto_front(&[(1.0, 1.0)], |&p| p), vec![0]);
    }

    #[test]
    fn dominated_points_are_removed() {
        let points = [(1.0, 5.0), (2.0, 3.0), (3.0, 4.0), (4.0, 1.0), (5.0, 0.9)];
        let front = pareto_front(&points, |&p| p);
        assert_eq!(front, vec![0, 1, 3, 4]);
    }

    #[test]
    fn identical_points_are_kept_once() {
        let points = [(1.0, 1.0), (1.0, 1.0), (2.0, 0.5)];
        let front = pareto_front(&points, |&p| p);
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn all_points_on_a_diagonal_are_optimal() {
        let points: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 10.0 - i as f64)).collect();
        assert_eq!(pareto_front(&points, |&p| p).len(), 10);
    }

    #[test]
    fn front_is_sorted_by_first_objective() {
        let points = [(5.0, 1.0), (1.0, 5.0), (3.0, 3.0)];
        let front = pareto_front(&points, |&p| p);
        let firsts: Vec<f64> = front.iter().map(|&i| points[i].0).collect();
        let mut sorted = firsts.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(firsts, sorted);
    }

    #[test]
    fn dominance_predicate() {
        assert!(dominated_by((2.0, 2.0), (1.0, 2.0)));
        assert!(dominated_by((2.0, 2.0), (1.0, 1.0)));
        assert!(!dominated_by((2.0, 2.0), (2.0, 2.0)));
        assert!(!dominated_by((1.0, 3.0), (2.0, 2.0)));
    }

    #[test]
    fn works_with_arbitrary_item_types() {
        struct P {
            mae: f32,
            energy: f32,
        }
        let items = vec![
            P {
                mae: 5.0,
                energy: 1.0,
            },
            P {
                mae: 4.0,
                energy: 2.0,
            },
            P {
                mae: 6.0,
                energy: 3.0,
            },
        ];
        let front = pareto_front(&items, |p| (p.energy as f64, p.mae as f64));
        assert_eq!(front, vec![0, 1]);
    }
}
