//! Offline profiling of CHRIS configurations.
//!
//! Before deployment, every configuration is profiled on a profiling dataset:
//! its average MAE, average smartwatch energy per prediction, average phone
//! energy and offload statistics are measured and stored in the smartwatch MCU
//! memory, ordered by energy (the paper's Table II). At runtime the decision
//! engine only reads this table; no model is ever re-profiled on-line.

use serde::{Deserialize, Serialize};

use hw_sim::units::Energy;
use ppg_data::{DatasetBuilder, IntoWindowSource, LabeledWindow, WindowCache, WindowSource};
use ppg_dsp::stats::ErrorAccumulator;
use ppg_models::traits::{ActivityClassifier, HrEstimator, OracleActivityClassifier};
use ppg_models::zoo::{ModelKind, ModelZoo};

use crate::config::{enumerate_configurations, Configuration, EnergyAccounting};
use crate::error::ChrisError;

/// Options controlling a profiling pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfilingOptions {
    /// How offloaded windows are charged to the smartwatch.
    pub accounting: EnergyAccounting,
    /// Seed of the calibrated estimators' error sequences.
    pub seed: u64,
}

impl Default for ProfilingOptions {
    fn default() -> Self {
        Self {
            accounting: EnergyAccounting::default(),
            seed: 0xC4215,
        }
    }
}

/// The profiled behaviour of one configuration — one row of the table stored
/// in the MCU memory (Table II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigurationProfile {
    /// The configuration this row describes.
    pub configuration: Configuration,
    /// Average MAE over the profiling windows, in BPM.
    pub mae_bpm: f32,
    /// Average smartwatch energy per prediction.
    pub watch_energy: Energy,
    /// Average phone energy per prediction (zero for local configurations).
    pub phone_energy: Energy,
    /// Fraction of windows offloaded to the phone.
    pub offload_fraction: f32,
    /// Fraction of windows handled by the simple model of the pair.
    pub simple_fraction: f32,
    /// Number of profiling windows this row was measured on.
    pub windows: usize,
}

/// Profiles configurations against a [`ModelZoo`] on a profiling dataset.
#[derive(Debug, Clone)]
pub struct Profiler<'a> {
    zoo: &'a ModelZoo,
}

impl<'a> Profiler<'a> {
    /// Creates a profiler for the given zoo (platforms + BLE link).
    pub fn new(zoo: &'a ModelZoo) -> Self {
        Self { zoo }
    }

    /// Smartwatch energy charged for one window handled by `model`, either
    /// locally or offloaded, under the selected accounting.
    pub fn window_watch_energy(
        &self,
        model: ModelKind,
        offloaded: bool,
        accounting: EnergyAccounting,
    ) -> Energy {
        if !offloaded {
            return self
                .zoo
                .watch()
                .energy_per_prediction(&model.workload_watch());
        }
        let ble = self.zoo.ble();
        match accounting {
            EnergyAccounting::BleOnly => ble.transfer_energy(hw_sim::WINDOW_PAYLOAD_BYTES),
            EnergyAccounting::BleWithSleep => {
                let tx_time = ble.transfer_time(hw_sim::WINDOW_PAYLOAD_BYTES);
                let sleep_time =
                    (hw_sim::units::TimeSpan::from_seconds(hw_sim::PREDICTION_PERIOD_S) - tx_time)
                        .max_zero();
                ble.transfer_energy(hw_sim::WINDOW_PAYLOAD_BYTES)
                    + self.zoo.watch().sleep_power * sleep_time
            }
            EnergyAccounting::IncrementalPayload => {
                let payload = hw_sim::WINDOW_PAYLOAD_BYTES / 4;
                let tx_time = ble.transfer_time(payload);
                let sleep_time =
                    (hw_sim::units::TimeSpan::from_seconds(hw_sim::PREDICTION_PERIOD_S) - tx_time)
                        .max_zero();
                ble.transfer_energy(payload) + self.zoo.watch().sleep_power * sleep_time
            }
        }
    }

    /// Phone energy charged for one window handled by `model` when offloaded.
    pub fn window_phone_energy(&self, model: ModelKind) -> Energy {
        self.zoo.phone().compute_energy(&model.workload_phone())
    }

    /// Profiles one configuration on the given windows with the oracle
    /// activity classifier.
    ///
    /// Like every profiling entry point, `windows` accepts both eager
    /// buffers and lazy [`WindowSource`] streams (see
    /// [`Profiler::profile_all`]).
    ///
    /// # Errors
    ///
    /// Returns [`ChrisError::EmptyWorkload`] when `windows` yields nothing
    /// and propagates model errors.
    pub fn profile<S: IntoWindowSource>(
        &self,
        configuration: Configuration,
        windows: S,
        options: ProfilingOptions,
    ) -> Result<ConfigurationProfile, ChrisError> {
        self.profile_with(
            configuration,
            windows,
            &OracleActivityClassifier::new(),
            options,
        )
    }

    /// Profiles one configuration using an explicit activity classifier, so
    /// that classifier mispredictions are reflected in the profile (as in the
    /// paper's evaluation).
    ///
    /// A single pass: windows are pulled from the source one at a time, so a
    /// lazy stream is profiled in O(1 window) memory.
    ///
    /// # Errors
    ///
    /// Returns [`ChrisError::EmptyWorkload`] when `windows` yields nothing
    /// and propagates model errors.
    pub fn profile_with<S: IntoWindowSource>(
        &self,
        configuration: Configuration,
        windows: S,
        classifier: &dyn ActivityClassifier,
        options: ProfilingOptions,
    ) -> Result<ConfigurationProfile, ChrisError> {
        let mut source = windows.into_window_source();
        let mut simple_est = self
            .zoo
            .calibrated_estimator(configuration.simple, options.seed);
        let mut complex_est = self
            .zoo
            .calibrated_estimator(configuration.complex, options.seed.wrapping_add(1));

        let mut errors = ErrorAccumulator::new();
        let mut watch_energy = Energy::ZERO;
        let mut phone_energy = Energy::ZERO;
        let mut offloaded_count = 0usize;
        let mut simple_count = 0usize;
        // By-reference internal iteration: slices profile with zero copies,
        // lazy sources materialize one window at a time.
        let n = source.try_for_each_window(|window| -> Result<(), ChrisError> {
            let predicted_activity = classifier.classify(window)?;
            let difficulty = predicted_activity.difficulty();
            let model = configuration.model_for(difficulty);
            let offloaded = configuration.offloads(difficulty);

            let estimator: &mut Box<dyn HrEstimator> = if model == configuration.simple {
                simple_count += 1;
                &mut simple_est
            } else {
                &mut complex_est
            };
            let prediction = estimator.predict(window)?;
            errors.record(prediction, window.hr_bpm);

            watch_energy += self.window_watch_energy(model, offloaded, options.accounting);
            if offloaded {
                offloaded_count += 1;
                phone_energy += self.window_phone_energy(model);
            }
            Ok(())
        })?;

        if n == 0 {
            return Err(ChrisError::EmptyWorkload);
        }
        Ok(ConfigurationProfile {
            configuration,
            mae_bpm: errors.mae().unwrap_or(0.0),
            watch_energy: watch_energy / n as f64,
            phone_energy: phone_energy / n as f64,
            offload_fraction: offloaded_count as f32 / n as f32,
            simple_fraction: simple_count as f32 / n as f32,
            windows: n,
        })
    }

    /// Profiles one configuration on a **memoized** profiling stream: the
    /// windows described by `builder` are synthesized at most once per
    /// [`WindowCache`] key and replayed from the shared buffer on every
    /// later call — the CHRIS pattern of re-profiling the same table over
    /// identical calibration windows stops paying for repeated synthesis.
    ///
    /// The resulting profile is identical to
    /// `self.profile(configuration, builder.window_stream()?, options)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Profiler::profile`], plus [`ChrisError::Data`]
    /// when the builder parameters are invalid or synthesis fails.
    pub fn profile_cached(
        &self,
        configuration: Configuration,
        cache: &mut WindowCache,
        builder: DatasetBuilder,
        options: ProfilingOptions,
    ) -> Result<ConfigurationProfile, ChrisError> {
        let windows = builder.cached_window_stream(cache)?;
        self.profile(configuration, windows, options)
    }

    /// Profiles every configuration on a **memoized** profiling stream (see
    /// [`Profiler::profile_cached`]); the multi-pass table build profiles the
    /// shared cached buffer in place, with no second materialization.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Profiler::profile_all`].
    pub fn profile_all_cached(
        &self,
        cache: &mut WindowCache,
        builder: DatasetBuilder,
        options: ProfilingOptions,
    ) -> Result<Vec<ConfigurationProfile>, ChrisError> {
        let windows = builder.cached_window_stream(cache)?;
        self.profile_all(windows, options)
    }

    /// Profiles every one of the 60 configurations with the oracle classifier,
    /// returning the table sorted by increasing smartwatch energy (the
    /// ordering the paper stores in MCU memory).
    ///
    /// `windows` accepts both eager buffers and lazy
    /// [`WindowSource`] streams. Profiling every configuration is inherently
    /// multi-pass, so a one-shot stream is drained into a buffer once up
    /// front — profiling is the offline, once-per-fleet step where that is
    /// the right trade.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Profiler::profile`], plus [`ChrisError::Data`]
    /// when a streaming source fails.
    pub fn profile_all<S: IntoWindowSource>(
        &self,
        windows: S,
        options: ProfilingOptions,
    ) -> Result<Vec<ConfigurationProfile>, ChrisError> {
        self.profile_all_with(windows, &OracleActivityClassifier::new(), options)
    }

    /// Profiles every configuration with an explicit activity classifier.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Profiler::profile_all`].
    pub fn profile_all_with<S: IntoWindowSource>(
        &self,
        windows: S,
        classifier: &dyn ActivityClassifier,
        options: ProfilingOptions,
    ) -> Result<Vec<ConfigurationProfile>, ChrisError> {
        let source = windows.into_window_source();
        // Buffer-backed sources are profiled in place; only genuinely lazy
        // streams are drained into a buffer for the multi-pass table build.
        if let Some(slice) = source.as_slice() {
            return self.profile_each(slice, classifier, options);
        }
        let buffered: Vec<LabeledWindow> = source.iter().collect::<Result<_, _>>()?;
        self.profile_each(&buffered, classifier, options)
    }

    /// The multi-pass core of [`Profiler::profile_all_with`]: one
    /// [`Profiler::profile_with`] pass per configuration over a shared,
    /// borrowed workload.
    fn profile_each(
        &self,
        windows: &[LabeledWindow],
        classifier: &dyn ActivityClassifier,
        options: ProfilingOptions,
    ) -> Result<Vec<ConfigurationProfile>, ChrisError> {
        let mut table: Vec<ConfigurationProfile> = enumerate_configurations()
            .into_iter()
            .map(|c| self.profile_with(c, windows, classifier, options))
            .collect::<Result<_, _>>()?;
        // Same NaN-safe ordering as `DecisionEngine::new`, which re-sorts the
        // table it is given: keep the two in lockstep so direct consumers of
        // this table see the same order the engine stores.
        table.sort_by(|a, b| {
            a.watch_energy
                .as_microjoules()
                .total_cmp(&b.watch_energy.as_microjoules())
                .then(a.mae_bpm.total_cmp(&b.mae_bpm))
        });
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DifficultyThreshold, ExecutionTarget};
    use ppg_data::DatasetBuilder;

    fn windows() -> Vec<LabeledWindow> {
        DatasetBuilder::new()
            .subjects(2)
            .seconds_per_activity(24.0)
            .seed(21)
            .build()
            .unwrap()
            .windows()
    }

    fn config(
        simple: ModelKind,
        complex: ModelKind,
        thr: u8,
        target: ExecutionTarget,
    ) -> Configuration {
        Configuration::new(
            simple,
            complex,
            DifficultyThreshold::new(thr).unwrap(),
            target,
        )
        .unwrap()
    }

    #[test]
    fn empty_windows_are_rejected() {
        let zoo = ModelZoo::paper_setup();
        let profiler = Profiler::new(&zoo);
        let c = config(
            ModelKind::AdaptiveThreshold,
            ModelKind::TimePpgBig,
            5,
            ExecutionTarget::Hybrid,
        );
        assert!(matches!(
            profiler.profile(c, &[], ProfilingOptions::default()),
            Err(ChrisError::EmptyWorkload)
        ));
    }

    #[test]
    fn always_simple_local_matches_single_model_characterization() {
        let zoo = ModelZoo::paper_setup();
        let profiler = Profiler::new(&zoo);
        let ws = windows();
        let c = config(
            ModelKind::AdaptiveThreshold,
            ModelKind::TimePpgBig,
            9,
            ExecutionTarget::Local,
        );
        let p = profiler
            .profile(c, &ws, ProfilingOptions::default())
            .unwrap();
        assert_eq!(p.simple_fraction, 1.0);
        assert_eq!(p.offload_fraction, 0.0);
        assert_eq!(p.phone_energy, Energy::ZERO);
        let at = zoo.characterize(ModelKind::AdaptiveThreshold);
        assert!((p.watch_energy.as_millijoules() - at.watch_energy.as_millijoules()).abs() < 1e-6);
        // MAE close to the AT calibration (equal activity representation).
        assert!((p.mae_bpm - 10.99).abs() < 2.0, "AT-only MAE {}", p.mae_bpm);
    }

    #[test]
    fn always_complex_hybrid_offloads_everything() {
        let zoo = ModelZoo::paper_setup();
        let profiler = Profiler::new(&zoo);
        let ws = windows();
        let c = config(
            ModelKind::AdaptiveThreshold,
            ModelKind::TimePpgBig,
            0,
            ExecutionTarget::Hybrid,
        );
        let p = profiler
            .profile(c, &ws, ProfilingOptions::default())
            .unwrap();
        assert_eq!(p.offload_fraction, 1.0);
        assert_eq!(p.simple_fraction, 0.0);
        assert!(
            p.phone_energy.as_millijoules() > 20.0,
            "Big on phone per prediction"
        );
        // With the BleOnly accounting, each offloaded window costs ~0.52 mJ.
        assert!((p.watch_energy.as_millijoules() - 0.52).abs() < 0.01);
    }

    #[test]
    fn intermediate_threshold_mixes_models() {
        let zoo = ModelZoo::paper_setup();
        let profiler = Profiler::new(&zoo);
        let ws = windows();
        let c = config(
            ModelKind::AdaptiveThreshold,
            ModelKind::TimePpgBig,
            4,
            ExecutionTarget::Hybrid,
        );
        let p = profiler
            .profile(c, &ws, ProfilingOptions::default())
            .unwrap();
        // With equal activity representation, 4/9 of windows are easy.
        assert!((p.simple_fraction - 4.0 / 9.0).abs() < 0.05);
        assert!((p.offload_fraction - 5.0 / 9.0).abs() < 0.05);
        // Energy sits between the two extremes.
        let at_only = profiler
            .profile(
                config(
                    ModelKind::AdaptiveThreshold,
                    ModelKind::TimePpgBig,
                    9,
                    ExecutionTarget::Hybrid,
                ),
                &ws,
                ProfilingOptions::default(),
            )
            .unwrap();
        let big_only = profiler
            .profile(
                config(
                    ModelKind::AdaptiveThreshold,
                    ModelKind::TimePpgBig,
                    0,
                    ExecutionTarget::Hybrid,
                ),
                &ws,
                ProfilingOptions::default(),
            )
            .unwrap();
        assert!(p.watch_energy > at_only.watch_energy);
        assert!(p.watch_energy < big_only.watch_energy);
        assert!(p.mae_bpm < at_only.mae_bpm);
        assert!(p.mae_bpm > big_only.mae_bpm);
    }

    #[test]
    fn local_big_execution_is_extremely_expensive() {
        let zoo = ModelZoo::paper_setup();
        let profiler = Profiler::new(&zoo);
        let ws = windows();
        let local = config(
            ModelKind::AdaptiveThreshold,
            ModelKind::TimePpgBig,
            0,
            ExecutionTarget::Local,
        );
        let hybrid = config(
            ModelKind::AdaptiveThreshold,
            ModelKind::TimePpgBig,
            0,
            ExecutionTarget::Hybrid,
        );
        let p_local = profiler
            .profile(local, &ws, ProfilingOptions::default())
            .unwrap();
        let p_hybrid = profiler
            .profile(hybrid, &ws, ProfilingOptions::default())
            .unwrap();
        assert!(
            p_local.watch_energy.as_millijoules() > p_hybrid.watch_energy.as_millijoules() * 10.0,
            "local Big should dwarf offloaded Big on the watch"
        );
    }

    #[test]
    fn accounting_modes_order_offload_cost() {
        let zoo = ModelZoo::paper_setup();
        let profiler = Profiler::new(&zoo);
        let ble_only =
            profiler.window_watch_energy(ModelKind::TimePpgBig, true, EnergyAccounting::BleOnly);
        let with_sleep = profiler.window_watch_energy(
            ModelKind::TimePpgBig,
            true,
            EnergyAccounting::BleWithSleep,
        );
        let incremental = profiler.window_watch_energy(
            ModelKind::TimePpgBig,
            true,
            EnergyAccounting::IncrementalPayload,
        );
        assert!(with_sleep > ble_only);
        assert!(incremental < ble_only + Energy::from_millijoules(0.2));
        // Local energy is independent of the accounting mode.
        let local_a =
            profiler.window_watch_energy(ModelKind::TimePpgSmall, false, EnergyAccounting::BleOnly);
        let local_b = profiler.window_watch_energy(
            ModelKind::TimePpgSmall,
            false,
            EnergyAccounting::BleWithSleep,
        );
        assert_eq!(local_a, local_b);
    }

    #[test]
    fn profile_all_returns_sixty_rows_sorted_by_energy() {
        let zoo = ModelZoo::paper_setup();
        let profiler = Profiler::new(&zoo);
        let ws = windows();
        let table = profiler
            .profile_all(&ws, ProfilingOptions::default())
            .unwrap();
        assert_eq!(table.len(), 60);
        for pair in table.windows(2) {
            assert!(pair[0].watch_energy <= pair[1].watch_energy);
        }
        // The cheapest row must be an always-simple AT configuration and the
        // most expensive ones local TimePPG-Big.
        assert_eq!(table[0].configuration.simple, ModelKind::AdaptiveThreshold);
        assert_eq!(table[0].simple_fraction, 1.0);
        let last = table.last().unwrap();
        assert_eq!(last.configuration.complex, ModelKind::TimePpgBig);
        assert_eq!(last.configuration.target, ExecutionTarget::Local);
    }

    #[test]
    fn cached_profiling_matches_uncached_and_reuses_the_stream() {
        let zoo = ModelZoo::paper_setup();
        let profiler = Profiler::new(&zoo);
        let builder = || {
            DatasetBuilder::new()
                .subjects(2)
                .seconds_per_activity(24.0)
                .seed(21)
        };
        let uncached = profiler
            .profile_all(
                builder().window_stream().unwrap(),
                ProfilingOptions::default(),
            )
            .unwrap();
        let mut cache = WindowCache::new(4);
        let first = profiler
            .profile_all_cached(&mut cache, builder(), ProfilingOptions::default())
            .unwrap();
        let second = profiler
            .profile_all_cached(&mut cache, builder(), ProfilingOptions::default())
            .unwrap();
        assert_eq!(first, uncached);
        assert_eq!(second, uncached);
        // One synthesis, one replay.
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        let c = config(
            ModelKind::AdaptiveThreshold,
            ModelKind::TimePpgSmall,
            5,
            ExecutionTarget::Hybrid,
        );
        let cached_one = profiler
            .profile_cached(c, &mut cache, builder(), ProfilingOptions::default())
            .unwrap();
        let eager_one = profiler
            .profile(c, windows(), ProfilingOptions::default())
            .unwrap();
        assert_eq!(cached_one, eager_one);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn profiles_are_deterministic_for_a_seed() {
        let zoo = ModelZoo::paper_setup();
        let profiler = Profiler::new(&zoo);
        let ws = windows();
        let c = config(
            ModelKind::AdaptiveThreshold,
            ModelKind::TimePpgSmall,
            5,
            ExecutionTarget::Hybrid,
        );
        let a = profiler
            .profile(c, &ws, ProfilingOptions::default())
            .unwrap();
        let b = profiler
            .profile(c, &ws, ProfilingOptions::default())
            .unwrap();
        assert_eq!(a, b);
    }
}
