//! Error type for the CHRIS runtime and its supporting machinery.

use std::fmt;

/// Errors produced while profiling configurations or running CHRIS.
#[derive(Debug, Clone, PartialEq)]
pub enum ChrisError {
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Human-readable description of the requirement.
        requirement: &'static str,
    },
    /// A user constraint carried a NaN or negative bound. Left unchecked,
    /// such a constraint fails every table comparison and silently degrades
    /// selection to "nothing feasible"; rejecting it keeps the failure
    /// diagnosable.
    InvalidConstraint {
        /// Display rendering of the offending constraint.
        constraint: String,
        /// Human-readable description of the requirement.
        requirement: &'static str,
    },
    /// No configuration satisfies the requested constraint and connectivity.
    NoFeasibleConfiguration {
        /// Human-readable description of the request.
        request: String,
    },
    /// The profiling table is empty.
    EmptyProfileTable,
    /// No windows were provided to profile or run on.
    EmptyWorkload,
    /// A streaming window source failed to synthesize or extract a window.
    Data(ppg_data::DataError),
    /// A model failed while predicting.
    Model(ppg_models::ModelError),
    /// A hardware model rejected a request.
    Hardware(hw_sim::HwError),
    /// A DSP routine failed while aggregating metrics.
    Dsp(ppg_dsp::DspError),
}

impl fmt::Display for ChrisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChrisError::InvalidParameter { name, requirement } => {
                write!(f, "invalid parameter `{name}` ({requirement})")
            }
            ChrisError::InvalidConstraint {
                constraint,
                requirement,
            } => {
                write!(f, "invalid user constraint `{constraint}` ({requirement})")
            }
            ChrisError::NoFeasibleConfiguration { request } => {
                write!(f, "no feasible configuration for {request}")
            }
            ChrisError::EmptyProfileTable => write!(f, "the profiling table is empty"),
            ChrisError::EmptyWorkload => write!(f, "no windows provided"),
            ChrisError::Data(e) => write!(f, "window source error: {e}"),
            ChrisError::Model(e) => write!(f, "model error: {e}"),
            ChrisError::Hardware(e) => write!(f, "hardware error: {e}"),
            ChrisError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl std::error::Error for ChrisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChrisError::Data(e) => Some(e),
            ChrisError::Model(e) => Some(e),
            ChrisError::Hardware(e) => Some(e),
            ChrisError::Dsp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ppg_data::DataError> for ChrisError {
    fn from(e: ppg_data::DataError) -> Self {
        ChrisError::Data(e)
    }
}

impl From<ppg_models::ModelError> for ChrisError {
    fn from(e: ppg_models::ModelError) -> Self {
        ChrisError::Model(e)
    }
}

impl From<hw_sim::HwError> for ChrisError {
    fn from(e: hw_sim::HwError) -> Self {
        ChrisError::Hardware(e)
    }
}

impl From<ppg_dsp::DspError> for ChrisError {
    fn from(e: ppg_dsp::DspError) -> Self {
        ChrisError::Dsp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ChrisError::EmptyProfileTable.to_string().contains("empty"));
        assert!(ChrisError::EmptyWorkload.to_string().contains("windows"));
        assert!(ChrisError::InvalidParameter {
            name: "threshold",
            requirement: "0..=9"
        }
        .to_string()
        .contains("threshold"));
        assert!(ChrisError::NoFeasibleConfiguration {
            request: "MAE <= 1".to_string()
        }
        .to_string()
        .contains("MAE"));
    }

    #[test]
    fn wrapped_errors_expose_sources() {
        use std::error::Error;
        let e: ChrisError = hw_sim::HwError::LinkDown.into();
        assert!(e.source().is_some());
        let e: ChrisError = ppg_dsp::DspError::EmptyInput { op: "mae" }.into();
        assert!(e.source().is_some());
        let e: ChrisError = ppg_models::ModelError::NotTrained { model: "rf" }.into();
        assert!(e.source().is_some());
        let e: ChrisError = ppg_data::DataError::RecordingTooShort {
            samples: 10,
            required: 256,
        }
        .into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("window source"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ChrisError>();
    }
}
