//! Run reports produced by the CHRIS runtime.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use hw_sim::units::Energy;
use ppg_data::Activity;

use crate::config::Configuration;

/// Aggregated result of running CHRIS over a sequence of windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RunReport {
    /// Number of windows processed.
    pub windows: usize,
    /// Mean absolute error over all windows, in BPM.
    pub mae_bpm: f32,
    /// Root-mean-square error over all windows, in BPM.
    pub rmse_bpm: f32,
    /// Total smartwatch energy over the run.
    pub total_watch_energy: Energy,
    /// Average smartwatch energy per prediction.
    pub avg_watch_energy: Energy,
    /// Total phone energy over the run.
    pub total_phone_energy: Energy,
    /// Average phone energy per prediction.
    pub avg_phone_energy: Energy,
    /// Fraction of windows offloaded to the phone.
    pub offload_fraction: f32,
    /// Fraction of windows handled by the simple model of the active pair.
    pub simple_fraction: f32,
    /// Fraction of windows processed while the BLE link was down.
    pub disconnected_fraction: f32,
    /// Smartwatch energy broken down by power state (compute / radio / sleep),
    /// keyed by the state name.
    pub watch_energy_breakdown: BTreeMap<String, Energy>,
    /// Per-activity MAE, keyed by activity name.
    pub per_activity_mae: BTreeMap<String, f32>,
    /// How many windows each selected configuration handled, keyed by the
    /// configuration label.
    pub configuration_usage: BTreeMap<String, usize>,
}

impl RunReport {
    /// Average smartwatch power over the run (energy per prediction divided by
    /// the 2-second prediction period).
    pub fn avg_watch_power(&self) -> hw_sim::units::Power {
        hw_sim::units::Power::from_milliwatts(
            self.avg_watch_energy.as_millijoules() / hw_sim::PREDICTION_PERIOD_S,
        )
    }

    /// MAE of the activity with the given label, if present.
    pub fn activity_mae(&self, activity: Activity) -> Option<f32> {
        self.per_activity_mae.get(activity.name()).copied()
    }

    /// The configuration label that handled the most windows.
    pub fn dominant_configuration(&self) -> Option<(&str, usize)> {
        self.configuration_usage
            .iter()
            .max_by_key(|&(_, &count)| count)
            .map(|(label, &count)| (label.as_str(), count))
    }

    /// Records usage of a configuration for `count` windows.
    pub(crate) fn record_configuration(&mut self, configuration: &Configuration, count: usize) {
        *self
            .configuration_usage
            .entry(configuration.label())
            .or_insert(0) += count;
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "CHRIS run over {} windows", self.windows)?;
        writeln!(
            f,
            "  MAE                 : {:.2} BPM (RMSE {:.2})",
            self.mae_bpm, self.rmse_bpm
        )?;
        writeln!(
            f,
            "  smartwatch energy   : {} per prediction ({} total, {:.3} mW average)",
            self.avg_watch_energy,
            self.total_watch_energy,
            self.avg_watch_power().as_milliwatts()
        )?;
        writeln!(
            f,
            "  phone energy        : {} per prediction",
            self.avg_phone_energy
        )?;
        writeln!(
            f,
            "  offloaded / simple  : {:.1} % / {:.1} % of windows",
            self.offload_fraction * 100.0,
            self.simple_fraction * 100.0
        )?;
        if self.disconnected_fraction > 0.0 {
            writeln!(
                f,
                "  link down           : {:.1} % of windows",
                self.disconnected_fraction * 100.0
            )?;
        }
        if !self.watch_energy_breakdown.is_empty() {
            writeln!(f, "  energy breakdown    :")?;
            for (state, energy) in &self.watch_energy_breakdown {
                writeln!(f, "    {state:<10} {energy}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DifficultyThreshold, ExecutionTarget};
    use ppg_models::zoo::ModelKind;

    fn report() -> RunReport {
        RunReport {
            windows: 100,
            mae_bpm: 5.5,
            rmse_bpm: 7.0,
            total_watch_energy: Energy::from_millijoules(40.0),
            avg_watch_energy: Energy::from_millijoules(0.4),
            total_phone_energy: Energy::from_millijoules(2000.0),
            avg_phone_energy: Energy::from_millijoules(20.0),
            offload_fraction: 0.8,
            simple_fraction: 0.2,
            disconnected_fraction: 0.1,
            watch_energy_breakdown: BTreeMap::from([
                ("compute".to_string(), Energy::from_millijoules(10.0)),
                ("radio_tx".to_string(), Energy::from_millijoules(30.0)),
            ]),
            per_activity_mae: BTreeMap::from([
                ("resting".to_string(), 3.0),
                ("table soccer".to_string(), 8.0),
            ]),
            configuration_usage: BTreeMap::new(),
        }
    }

    #[test]
    fn average_power_is_energy_over_period() {
        let r = report();
        assert!((r.avg_watch_power().as_milliwatts() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn activity_mae_lookup() {
        let r = report();
        assert_eq!(r.activity_mae(Activity::Resting), Some(3.0));
        assert_eq!(r.activity_mae(Activity::TableSoccer), Some(8.0));
        assert_eq!(r.activity_mae(Activity::Cycling), None);
    }

    #[test]
    fn configuration_usage_tracking() {
        let mut r = report();
        let config = Configuration::new(
            ModelKind::AdaptiveThreshold,
            ModelKind::TimePpgBig,
            DifficultyThreshold::new(8).unwrap(),
            ExecutionTarget::Hybrid,
        )
        .unwrap();
        r.record_configuration(&config, 30);
        r.record_configuration(&config, 20);
        assert_eq!(
            r.dominant_configuration(),
            Some((config.label().as_str(), 50))
        );
    }

    #[test]
    fn display_mentions_key_quantities() {
        let text = report().to_string();
        assert!(text.contains("MAE"));
        assert!(text.contains("5.50"));
        assert!(text.contains("offloaded"));
        assert!(text.contains("link down"));
        assert!(text.contains("radio_tx"));
    }

    #[test]
    fn default_report_is_empty() {
        let r = RunReport::default();
        assert_eq!(r.windows, 0);
        assert!(r.dominant_configuration().is_none());
    }

    #[test]
    fn serde_round_trip() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
