//! Serialization round-trips for the artifacts CHRIS persists: the profiled
//! configuration table (what the paper stores in the MCU flash) and run
//! reports (what the evaluation scripts consume).

use chris_core::prelude::*;
use hw_sim::ble::ConnectionSchedule;
use ppg_data::DatasetBuilder;

fn engine() -> (ModelZoo, DecisionEngine) {
    let windows = DatasetBuilder::new()
        .subjects(1)
        .seconds_per_activity(20.0)
        .seed(55)
        .build()
        .unwrap()
        .windows();
    let zoo = ModelZoo::paper_setup();
    let profiler = Profiler::new(&zoo);
    let table = profiler
        .profile_all(&windows, ProfilingOptions::default())
        .unwrap();
    (zoo, DecisionEngine::new(table))
}

#[test]
fn profile_table_round_trips_through_json() {
    let (_, engine) = engine();
    let json = serde_json::to_string_pretty(engine.profiles()).unwrap();
    assert!(json.contains("watch_energy"));
    let restored: Vec<ConfigurationProfile> = serde_json::from_str(&json).unwrap();
    assert_eq!(restored.len(), engine.len());
    let rebuilt = DecisionEngine::new(restored);
    // Selections are identical after the round trip.
    for mae in [5.0f32, 5.6, 7.2, 12.0] {
        let a = engine.select(&UserConstraint::MaxMae(mae), ConnectionStatus::Connected);
        let b = rebuilt.select(&UserConstraint::MaxMae(mae), ConnectionStatus::Connected);
        assert_eq!(
            a.map(|p| p.configuration),
            b.map(|p| p.configuration),
            "MAE {mae}"
        );
    }
}

#[test]
fn decision_engine_round_trips_through_json() {
    let (_, engine) = engine();
    let json = serde_json::to_string(&engine).unwrap();
    let restored: DecisionEngine = serde_json::from_str(&json).unwrap();
    assert_eq!(restored.len(), engine.len());
    assert_eq!(
        restored.pareto(ConnectionStatus::Disconnected).len(),
        engine.pareto(ConnectionStatus::Disconnected).len()
    );
}

#[test]
fn run_report_round_trips_through_json() {
    let (zoo, engine) = engine();
    let windows = DatasetBuilder::new()
        .subjects(1)
        .seconds_per_activity(20.0)
        .seed(56)
        .build()
        .unwrap()
        .windows();
    let mut runtime = ChrisRuntime::new(zoo, engine, RuntimeOptions::default());
    let report = runtime
        .run(
            &windows,
            &UserConstraint::MaxMae(6.0),
            &ConnectionSchedule::DutyCycle { up: 3, down: 1 },
        )
        .unwrap();
    let json = serde_json::to_string(&report).unwrap();
    let restored: RunReport = serde_json::from_str(&json).unwrap();
    // JSON prints f64 with shortest-round-trip formatting; compare fields with
    // a tight tolerance instead of bitwise equality.
    assert_eq!(report.windows, restored.windows);
    assert_eq!(report.mae_bpm, restored.mae_bpm);
    assert_eq!(report.configuration_usage, restored.configuration_usage);
    assert_eq!(report.per_activity_mae, restored.per_activity_mae);
    assert!(
        (report.total_watch_energy.as_microjoules() - restored.total_watch_energy.as_microjoules())
            .abs()
            < 1e-6
    );
    for (state, energy) in &report.watch_energy_breakdown {
        let other = restored.watch_energy_breakdown[state];
        assert!((energy.as_microjoules() - other.as_microjoules()).abs() < 1e-6);
    }
    assert!(json.contains("per_activity_mae"));
    assert!(json.contains("watch_energy_breakdown"));
}

#[test]
fn configuration_labels_are_stable_identifiers() {
    let (_, engine) = engine();
    let mut labels: Vec<String> = engine
        .profiles()
        .iter()
        .map(|p| p.configuration.label())
        .collect();
    labels.sort();
    labels.dedup();
    assert_eq!(
        labels.len(),
        60,
        "labels must uniquely identify configurations"
    );
}
