//! Thread shims: [`spawn`] / [`JoinHandle`] / [`yield_now`] that map onto
//! `std::thread` outside a model run and onto model threads inside one.
//!
//! Model threads are created, scheduled, and joined by the engine; the
//! number of live model threads per execution is bounded by
//! [`crate::Options::max_threads`].

use std::any::Any;
use std::marker::PhantomData;
use std::sync::Arc;

use crate::engine::{current, BodyFn, Engine, OpOut, OpReq};

/// Handle to a spawned (real or model) thread.
pub struct JoinHandle<T>(Imp<T>);

enum Imp<T> {
    Os(std::thread::JoinHandle<T>),
    Model {
        engine: Arc<Engine>,
        target: usize,
        _result: PhantomData<fn() -> T>,
    },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// Under the model, joining is a blocking scheduler edge: the joiner
    /// is only schedulable again once the target has finished, and the
    /// target's memory view becomes visible to the joiner. A panicking
    /// model thread fails the whole execution (with a replayable
    /// schedule), so the `Err` arm is only ever taken in passthrough mode.
    ///
    /// # Errors
    ///
    /// The target thread's panic payload (passthrough mode only).
    pub fn join(self) -> std::thread::Result<T>
    where
        T: 'static,
    {
        match self.0 {
            Imp::Os(handle) => handle.join(),
            Imp::Model { engine, target, .. } => {
                let (cur_engine, tid) =
                    current().expect("model JoinHandle joined outside its model run");
                assert!(
                    Arc::ptr_eq(&engine, &cur_engine),
                    "model JoinHandle joined under a different model run"
                );
                match cur_engine.op(tid, None, OpReq::Join { target }) {
                    OpOut::Joined(boxed) => Ok(*boxed
                        .downcast::<T>()
                        .expect("joined thread result has the spawned type")),
                    _ => unreachable!("join yields the thread result"),
                }
            }
        }
    }
}

/// Spawns a thread running `f`.
///
/// On a model thread this creates a model thread that inherits the
/// spawner's memory view and participates in the exhaustive schedule
/// exploration; otherwise it is `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current() {
        None => JoinHandle(Imp::Os(std::thread::spawn(f))),
        Some((engine, tid)) => {
            let body: BodyFn = Box::new(move || Box::new(f()) as Box<dyn Any + Send>);
            match engine.op(tid, None, OpReq::Spawn { body: Some(body) }) {
                OpOut::Spawned(target) => JoinHandle(Imp::Model {
                    engine,
                    target,
                    _result: PhantomData,
                }),
                _ => unreachable!("spawn yields the child id"),
            }
        }
    }
}

/// A pure scheduling yield point: lets the model insert a context switch
/// with no memory effect (maps to `std::thread::yield_now` outside).
pub fn yield_now() {
    match current() {
        None => std::thread::yield_now(),
        Some((engine, tid)) => {
            engine.op(tid, None, OpReq::Yield);
        }
    }
}
