//! The exploration engine: a cooperative scheduler that serializes model
//! threads onto one runnable thread at a time, enumerates every scheduling
//! and visibility decision by depth-first search, and replays decision
//! prefixes deterministically.
//!
//! ## Execution protocol
//!
//! Model threads are real OS threads (reused across executions through a
//! small worker pool), but only one ever runs user code at a time. Every
//! shimmed operation is a *yield point*: the thread announces the operation
//! it is about to perform, the scheduler picks which announced thread runs
//! next (a DFS decision), and the granted thread executes its operation
//! under the engine lock before running user code to its next yield point.
//!
//! ## Decisions
//!
//! Three kinds of nondeterminism are enumerated, and together they form the
//! replayable schedule:
//!
//! * **`tN`** — which runnable thread performs the next operation;
//! * **`rK`** — which store in a cell's modification order a non-SeqCst
//!   load reads (any store at or after the thread's coherence floor is a
//!   legal C11 outcome — this is what gives Release/Acquire bugs teeth);
//! * **`co` / `cf`** — whether a `compare_exchange_weak` that would succeed
//!   instead fails spuriously (bounded per execution).
//!
//! ## Memory model (C11-lite)
//!
//! Each atomic cell keeps its full store history (modification order =
//! execution order). Each thread keeps a per-cell *coherence floor*: the
//! earliest store it may still legally read. Floors rise on every access,
//! are inherited on spawn, joined on join, captured by Release stores and
//! joined into the reader by Acquire loads that read them — so an Acquire
//! load from a Release store makes everything the writer had seen visible,
//! and a Relaxed load does not. RMWs always read the latest store and
//! continue release sequences. `SeqCst` is approximated as
//! AcqRel-plus-read-latest; the checker targets Relaxed/Acquire/Release
//! protocols, not SC-dependent algorithms.
//!
//! ## Pruning
//!
//! * **Sleep sets** (DPOR-lite, Godefroid-style): after a thread's subtree
//!   is fully explored at a node, the thread sleeps in the node's sibling
//!   subtrees until a *dependent* operation (same cell, at least one write,
//!   or any non-cell operation) executes. Sleep-set-blocked executions are
//!   pruned. Sound for full DFS; can be disabled for cross-validation.
//! * **Preemption bound**: switching away from a still-runnable thread
//!   costs one preemption; schedules beyond the bound are not explored
//!   (an under-approximation, like every bounded search).
//!
//! The exploration budget is an execution *count*, never wall-clock time,
//! so runs are reproducible byte-for-byte.

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Model-checker configuration. `Default` gives a fully exhaustive search
/// (no preemption bound, sleep sets on) under conservative budgets.
#[derive(Debug, Clone)]
pub struct Options {
    /// Maximum number of context switches away from a still-runnable
    /// thread per execution; `None` explores every schedule.
    pub preemption_bound: Option<usize>,
    /// Hard budget on explored executions; hitting it ends the search with
    /// `Stats::complete == false` instead of running forever.
    pub max_executions: u64,
    /// Per-execution step budget; exceeding it fails the execution as a
    /// possible livelock (the budget is a count, never wall-clock time).
    pub max_steps: u64,
    /// Maximum live model threads per execution.
    pub max_threads: usize,
    /// How many spurious `compare_exchange_weak` failures may be injected
    /// per execution.
    pub max_spurious_cas_failures: usize,
    /// Permutes the exploration order of alternatives at every decision
    /// point; `0` keeps the natural order. Any seed explores the same
    /// space — seeds only matter for *bounded* runs, which sample
    /// different corners first.
    pub seed: u64,
    /// Sleep-set pruning; disable to cross-validate the pruning itself.
    pub sleep_sets: bool,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            preemption_bound: None,
            max_executions: 200_000,
            max_steps: 10_000,
            max_threads: 6,
            max_spurious_cas_failures: 1,
            seed: 0,
            sleep_sets: true,
        }
    }
}

/// Outcome of a completed exploration (no invariant violation found).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    /// Executions run, including pruned ones.
    pub executions: u64,
    /// Whether the (possibly preemption-bounded) schedule space was
    /// exhausted before `max_executions` was hit. Harnesses that claim a
    /// proof must assert this.
    pub complete: bool,
    /// Executions cut short by sleep-set pruning.
    pub pruned: u64,
    /// Deepest decision stack seen (schedule length).
    pub max_depth: usize,
}

/// A failing schedule: the assertion (or deadlock / livelock) message, the
/// replayable decision string, and the per-operation trace.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Panic message, deadlock report, or budget violation.
    pub message: String,
    /// Comma-separated decision string, replayable via [`crate::replay`]:
    /// `tN` = run thread N, `rK` = read store K, `co`/`cf` = weak-CAS
    /// success/spurious failure.
    pub schedule: String,
    /// One line per executed operation of the failing execution.
    pub trace: Vec<String>,
    /// How many executions ran before this one failed.
    pub executions: u64,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "model checking failed: {}", self.message)?;
        writeln!(f, "after {} execution(s)", self.executions)?;
        writeln!(
            f,
            "schedule: {}   (replay with interleave::replay)",
            self.schedule
        )?;
        writeln!(f, "trace:")?;
        for (i, line) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {line}", i + 1)?;
        }
        Ok(())
    }
}

impl std::error::Error for Failure {}

/// One decision in a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Choice {
    /// Grant thread `N` the next operation.
    Thread(usize),
    /// A load reads the cell's store at history index `K`.
    Read(usize),
    /// Weak-CAS outcome: `false` = succeed, `true` = fail spuriously.
    CasFail(bool),
}

impl Choice {
    fn format(self) -> String {
        match self {
            Choice::Thread(t) => format!("t{t}"),
            Choice::Read(k) => format!("r{k}"),
            Choice::CasFail(false) => "co".to_string(),
            Choice::CasFail(true) => "cf".to_string(),
        }
    }

    fn parse(text: &str) -> Option<Choice> {
        if text == "co" {
            return Some(Choice::CasFail(false));
        }
        if text == "cf" {
            return Some(Choice::CasFail(true));
        }
        if let Some(rest) = text.strip_prefix('t') {
            return rest.parse().ok().map(Choice::Thread);
        }
        if let Some(rest) = text.strip_prefix('r') {
            return rest.parse().ok().map(Choice::Read);
        }
        None
    }
}

/// One node of the persistent DFS decision tree.
struct Node {
    /// The choice the current/next execution takes at this depth.
    taken: Choice,
    /// Alternatives not yet explored, in exploration order.
    untried: Vec<Choice>,
    /// Thread choices already fully explored here — they sleep in the
    /// remaining sibling subtrees (Thread nodes only).
    slept: Vec<usize>,
}

/// Per-thread, per-cell earliest readable store index.
type View = BTreeMap<usize, usize>;

/// One store in a cell's modification order.
struct StoreRec {
    value: u64,
    /// For Release stores (and RMWs continuing a release sequence): the
    /// writer's view at the store, joined into any Acquire reader.
    release_view: Option<View>,
}

struct Cell {
    kind: &'static str,
    stores: Vec<StoreRec>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Parked at a yield point with an announced operation; schedulable.
    Ready,
    /// Currently executing user code (at most one thread at a time).
    Running,
    /// Waiting for the target thread to finish.
    Blocked(usize),
    Finished,
}

/// Sleep-set dependence summary of an announced operation.
#[derive(Debug, Clone, Copy)]
struct OpDesc {
    /// `None` for thread-structure ops (begin/spawn/join/finish/yield),
    /// which are conservatively dependent with everything.
    cell: Option<usize>,
    writes: bool,
}

fn dependent(a: OpDesc, b: OpDesc) -> bool {
    match (a.cell, b.cell) {
        (Some(x), Some(y)) => x == y && (a.writes || b.writes),
        _ => true,
    }
}

struct ThreadState {
    status: Status,
    pending: Option<OpDesc>,
    floors: View,
    result: Option<Box<dyn Any + Send>>,
}

impl ThreadState {
    fn new(floors: View, pending: Option<OpDesc>) -> Self {
        Self {
            status: Status::Ready,
            pending,
            floors,
            result: None,
        }
    }
}

enum Outcome {
    Complete,
    Pruned,
    Failed(Failure),
}

/// Per-execution state, reset by `run_once`.
struct Exec {
    threads: Vec<ThreadState>,
    cells: Vec<Cell>,
    cell_of_addr: BTreeMap<usize, usize>,
    /// Thread currently granted the next operation.
    turn: Option<usize>,
    /// Thread that executed the previous operation (preemption accounting).
    prev: Option<usize>,
    preemptions: usize,
    cas_fails_left: usize,
    sleep: Vec<usize>,
    /// Next decision index (= schedule position).
    depth: usize,
    /// Length of the replayed prefix in `tree`.
    prefix_len: usize,
    steps: u64,
    trace: Vec<String>,
    outcome: Option<Outcome>,
    /// OS jobs (model threads) that have not yet exited `thread_main`.
    live: usize,
}

impl Exec {
    fn empty() -> Self {
        Self {
            threads: Vec::new(),
            cells: Vec::new(),
            cell_of_addr: BTreeMap::new(),
            turn: None,
            prev: None,
            preemptions: 0,
            cas_fails_left: 0,
            sleep: Vec::new(),
            depth: 0,
            prefix_len: 0,
            steps: 0,
            trace: Vec::new(),
            outcome: None,
            live: 0,
        }
    }
}

struct Shared {
    tree: Vec<Node>,
    exec: Exec,
    last_depth: usize,
}

/// A model-thread body dispatched to the worker pool.
type Job = Box<dyn FnOnce() + Send>;

/// Closure run as a model thread; its return value is stored for `join`.
pub(crate) type BodyFn = Box<dyn FnOnce() -> Box<dyn Any + Send> + Send>;

/// Reusable OS-thread pool: model threads are logical; their OS carriers
/// are recycled across executions to keep per-execution cost at context
/// switches, not thread spawns.
struct Pool {
    state: Arc<Mutex<PoolState>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

struct PoolState {
    txs: Vec<mpsc::Sender<Job>>,
    idle: Vec<usize>,
}

impl Pool {
    fn new() -> Self {
        Self {
            state: Arc::new(Mutex::new(PoolState {
                txs: Vec::new(),
                idle: Vec::new(),
            })),
            handles: Mutex::new(Vec::new()),
        }
    }

    fn dispatch(&self, job: Job) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(i) = state.idle.pop() {
            state.txs[i].send(job).expect("pool worker exited early");
            return;
        }
        let (tx, rx) = mpsc::channel::<Job>();
        let index = state.txs.len();
        state.txs.push(tx);
        let pool_state = Arc::clone(&self.state);
        let handle = std::thread::Builder::new()
            .name(format!("interleave-worker-{index}"))
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                    pool_state
                        .lock()
                        .expect("pool state poisoned")
                        .idle
                        .push(index);
                }
            })
            .expect("spawning pool worker");
        self.handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(handle);
        state.txs[index]
            .send(job)
            .expect("fresh pool worker exited");
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Closing the channels ends the worker loops; joining makes thread
        // teardown deterministic (no carriers outliving the exploration).
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .txs
            .clear();
        for handle in self
            .handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
        {
            let _ = handle.join();
        }
    }
}

/// Panic payload used to unwind parked model threads when an execution
/// aborts (failure, prune, or completion with stragglers). Never reported.
struct AbortToken;

pub(crate) struct Engine {
    opts: Options,
    state: Mutex<Shared>,
    cv: Condvar,
    pool: Pool,
}

/// Identity of a shimmed atomic at a yield point.
pub(crate) struct CellRef {
    pub addr: usize,
    pub initial: u64,
    pub kind: &'static str,
}

/// An announced operation, executed by the engine when the thread is
/// granted its step.
pub(crate) enum OpReq<'a> {
    Yield,
    Load {
        order: Ordering,
    },
    Store {
        order: Ordering,
        value: u64,
    },
    /// Generic read-modify-write: `fetch_add`, `swap`, `fetch_update`, the
    /// successful arm of `compare_exchange`. Returning `None` from `apply`
    /// makes it a pure load of the latest store (`fetch_update` declining).
    Rmw {
        acquires: bool,
        releases: bool,
        apply: &'a mut dyn FnMut(u64) -> Option<u64>,
        label: &'a str,
    },
    Cas {
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
        weak: bool,
    },
    Spawn {
        body: Option<BodyFn>,
    },
    Join {
        target: usize,
    },
}

pub(crate) enum OpOut {
    Unit,
    Value(u64),
    Rmw(Result<u64, u64>),
    Spawned(usize),
    Joined(Box<dyn Any + Send>),
}

pub(crate) fn acquires(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
    )
}

pub(crate) fn releases(order: Ordering) -> bool {
    matches!(
        order,
        Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
    )
}

fn read_latest_only(order: Ordering) -> bool {
    matches!(order, Ordering::SeqCst)
}

fn join_view(dst: &mut View, src: &View) {
    for (&cell, &floor) in src {
        let entry = dst.entry(cell).or_insert(0);
        *entry = (*entry).max(floor);
    }
}

/// Deterministic Fisher–Yates permutation keyed on `(seed, depth)`; the
/// identity when `seed == 0`.
fn permute(choices: &mut [Choice], seed: u64, depth: usize) {
    if seed == 0 || choices.len() < 2 {
        return;
    }
    let mut s = seed ^ (depth as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for i in (1..choices.len()).rev() {
        s = s
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let j = ((s >> 33) % (i as u64 + 1)) as usize;
        choices.swap(i, j);
    }
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Engine>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The engine/tid pair of the calling thread when it is a model thread.
pub(crate) fn current() -> Option<(Arc<Engine>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(ctx: Option<(Arc<Engine>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = ctx);
}

fn panic_abort() -> ! {
    std::panic::panic_any(AbortToken)
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked with a non-string payload".to_string()
    }
}

impl Engine {
    fn new(opts: Options) -> Self {
        Self {
            opts,
            state: Mutex::new(Shared {
                tree: Vec::new(),
                exec: Exec::empty(),
                last_depth: 0,
            }),
            cv: Condvar::new(),
            pool: Pool::new(),
        }
    }

    /// Records a failure (first one wins), wakes everyone, and leaves the
    /// caller to unwind via [`panic_abort`].
    fn fail_locked(&self, st: &mut Shared, message: String) {
        if st.exec.outcome.is_none() {
            let schedule: Vec<String> = st.tree[..st.exec.depth]
                .iter()
                .map(|n| n.taken.format())
                .collect();
            st.exec.outcome = Some(Outcome::Failed(Failure {
                message,
                schedule: schedule.join(","),
                trace: st.exec.trace.clone(),
                executions: 0,
            }));
        }
        self.cv.notify_all();
    }

    /// Takes the next decision at the current depth: replays the tree
    /// prefix, or materializes a new node with `alternatives` (first entry
    /// taken). Returns the chosen alternative.
    fn decide(&self, st: &mut Shared, mut alternatives: Vec<Choice>) -> Choice {
        let depth = st.exec.depth;
        let chosen = if depth < st.exec.prefix_len {
            let taken = st.tree[depth].taken;
            if !alternatives.contains(&taken) {
                self.fail_locked(
                    st,
                    format!(
                        "replay diverged at depth {depth}: schedule says {} but the \
                         execution offers {:?}",
                        taken.format(),
                        alternatives.iter().map(|c| c.format()).collect::<Vec<_>>()
                    ),
                );
                panic_abort();
            }
            taken
        } else {
            permute(&mut alternatives, self.opts.seed, depth);
            let taken = alternatives.remove(0);
            st.tree.push(Node {
                taken,
                untried: alternatives,
                slept: Vec::new(),
            });
            taken
        };
        st.exec.depth += 1;
        st.last_depth = st.last_depth.max(st.exec.depth);
        chosen
    }

    /// Picks the next thread to run after the caller parked, blocked or
    /// finished. Detects completion, deadlock, and sleep-set blocking.
    fn next_turn(&self, st: &mut Shared) {
        let runnable: Vec<usize> = st
            .exec
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Ready)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            let all_finished = st.exec.threads.iter().all(|t| t.status == Status::Finished);
            if all_finished {
                st.exec.outcome = Some(Outcome::Complete);
            } else {
                let blocked: Vec<String> = st
                    .exec
                    .threads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| match t.status {
                        Status::Blocked(on) => Some(format!("t{i} joins t{on}")),
                        _ => None,
                    })
                    .collect();
                self.fail_locked(
                    st,
                    format!("deadlock: no runnable thread ({})", blocked.join(", ")),
                );
            }
            self.cv.notify_all();
            return;
        }

        // Fold this node's fully-explored siblings into the live sleep set
        // before choosing (fresh nodes contribute nothing).
        if st.exec.depth < st.exec.prefix_len {
            for &t in &st.tree[st.exec.depth].slept {
                if !st.exec.sleep.contains(&t) {
                    st.exec.sleep.push(t);
                }
            }
        }

        let chosen = if st.exec.depth < st.exec.prefix_len {
            match self.decide(st, runnable.iter().map(|&t| Choice::Thread(t)).collect()) {
                Choice::Thread(t) => t,
                other => {
                    self.fail_locked(
                        st,
                        format!(
                            "replay schedule has {} where a thread choice is due",
                            other.format()
                        ),
                    );
                    self.cv.notify_all();
                    return;
                }
            }
        } else {
            let mut viable: Vec<usize> = if self.opts.sleep_sets {
                runnable
                    .iter()
                    .copied()
                    .filter(|t| !st.exec.sleep.contains(t))
                    .collect()
            } else {
                runnable.clone()
            };
            if let Some(bound) = self.opts.preemption_bound {
                if st.exec.preemptions >= bound {
                    if let Some(p) = st.exec.prev {
                        if runnable.contains(&p) {
                            viable.retain(|&t| t == p);
                        }
                    }
                }
            }
            if viable.is_empty() {
                // Every runnable thread sleeps (or the preemption budget
                // pins a sleeping thread): this execution is redundant.
                st.exec.outcome = Some(Outcome::Pruned);
                self.cv.notify_all();
                return;
            }
            // Natural order: continue the previous thread first (cheapest
            // schedule), then ascending thread id.
            let mut ordered: Vec<Choice> = Vec::with_capacity(viable.len());
            if let Some(p) = st.exec.prev {
                if viable.contains(&p) {
                    ordered.push(Choice::Thread(p));
                }
            }
            for &t in &viable {
                if Some(t) != st.exec.prev {
                    ordered.push(Choice::Thread(t));
                }
            }
            match self.decide(st, ordered) {
                Choice::Thread(t) => t,
                _ => unreachable!("thread nodes only offer thread choices"),
            }
        };
        if let Some(p) = st.exec.prev {
            if p != chosen && st.exec.threads[p].status == Status::Ready {
                st.exec.preemptions += 1;
            }
        }
        st.exec.turn = Some(chosen);
        self.cv.notify_all();
    }

    /// Parks until this thread is granted its step (or the execution
    /// aborts, which unwinds via [`panic_abort`]).
    fn wait_for_turn<'a>(
        &'a self,
        mut st: MutexGuard<'a, Shared>,
        tid: usize,
    ) -> MutexGuard<'a, Shared> {
        loop {
            if st.exec.outcome.is_some() {
                drop(st);
                panic_abort();
            }
            if st.exec.turn == Some(tid) {
                st.exec.turn = None;
                st.exec.threads[tid].status = Status::Running;
                return st;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Registers (or resolves) the cell behind `cell`.
    fn resolve_cell(&self, st: &mut Shared, cell: &CellRef) -> usize {
        if let Some(&idx) = st.exec.cell_of_addr.get(&cell.addr) {
            return idx;
        }
        let idx = st.exec.cells.len();
        st.exec.cells.push(Cell {
            kind: cell.kind,
            stores: vec![StoreRec {
                value: cell.initial,
                // Pre-execution writes are visible to every thread from the
                // start (floor 0), so no release view is needed.
                release_view: None,
            }],
        });
        st.exec.cell_of_addr.insert(cell.addr, idx);
        idx
    }

    pub(crate) fn drop_cell(&self, addr: usize) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Forget the address mapping so a reused allocation registers as a
        // fresh cell; history stays for the trace.
        st.exec.cell_of_addr.remove(&addr);
    }

    fn cell_name(st: &Shared, idx: usize) -> String {
        format!("{}#{idx}", st.exec.cells[idx].kind)
    }

    /// The heart of the shim layer: announce `req` at a yield point, wait
    /// to be scheduled, execute it, and return its result.
    pub(crate) fn op(
        self: &Arc<Self>,
        tid: usize,
        cell: Option<CellRef>,
        mut req: OpReq<'_>,
    ) -> OpOut {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if st.exec.outcome.is_some() {
            drop(st);
            panic_abort();
        }
        st.exec.steps += 1;
        if st.exec.steps > self.opts.max_steps {
            self.fail_locked(
                &mut st,
                format!(
                    "step budget exceeded ({} steps): possible livelock or unbounded spin",
                    self.opts.max_steps
                ),
            );
            drop(st);
            panic_abort();
        }
        let cell_idx = cell.map(|c| self.resolve_cell(&mut st, &c));
        let desc = OpDesc {
            cell: cell_idx,
            writes: !matches!(req, OpReq::Load { .. }),
        };
        {
            let target_finished = match req {
                OpReq::Join { target } => Some(st.exec.threads[target].status == Status::Finished),
                _ => None,
            };
            let t = &mut st.exec.threads[tid];
            t.pending = Some(desc);
            t.status = match (&req, target_finished) {
                (OpReq::Join { target }, Some(false)) => Status::Blocked(*target),
                _ => Status::Ready,
            };
        }
        self.next_turn(&mut st);
        st = self.wait_for_turn(st, tid);
        let out = self.execute(&mut st, tid, cell_idx, &mut req);
        st.exec.prev = Some(tid);
        self.wake_sleepers(&mut st, desc);
        out
    }

    /// Removes sleeping threads whose pending operation depends on the one
    /// just executed.
    fn wake_sleepers(&self, st: &mut Shared, executed: OpDesc) {
        let exec = &mut st.exec;
        let threads = &exec.threads;
        exec.sleep.retain(|&u| {
            let pending = threads[u].pending.unwrap_or(OpDesc {
                cell: None,
                writes: true,
            });
            !dependent(executed, pending)
        });
    }

    fn execute(
        self: &Arc<Self>,
        st: &mut MutexGuard<'_, Shared>,
        tid: usize,
        cell_idx: Option<usize>,
        req: &mut OpReq<'_>,
    ) -> OpOut {
        match req {
            OpReq::Yield => {
                st.exec.trace.push(format!("t{tid}: yield"));
                OpOut::Unit
            }
            OpReq::Load { order } => {
                let order = *order;
                let cell = cell_idx.expect("load has a cell");
                let value = self.exec_load(st, tid, cell, order);
                OpOut::Value(value)
            }
            OpReq::Store { order, value } => {
                let (order, value) = (*order, *value);
                let cell = cell_idx.expect("store has a cell");
                let view = self.release_view_for(st, tid, cell, releases(order));
                let c = &mut st.exec.cells[cell];
                c.stores.push(StoreRec {
                    value,
                    release_view: view,
                });
                let idx = c.stores.len() - 1;
                st.exec.threads[tid].floors.insert(cell, idx);
                let name = Self::cell_name(st, cell);
                st.exec
                    .trace
                    .push(format!("t{tid}: {name} store {value} ({order:?})"));
                OpOut::Unit
            }
            OpReq::Rmw {
                acquires: acq,
                releases: rel,
                apply,
                label,
            } => {
                let (acq, rel) = (*acq, *rel);
                let cell = cell_idx.expect("rmw has a cell");
                let result = self.exec_rmw(st, tid, cell, acq, rel, apply, label);
                OpOut::Rmw(result)
            }
            OpReq::Cas {
                expected,
                new,
                success,
                failure,
                weak,
            } => {
                let (expected, new, success, failure, weak) =
                    (*expected, *new, *success, *failure, *weak);
                let cell = cell_idx.expect("cas has a cell");
                let result = self.exec_cas(st, tid, cell, expected, new, success, failure, weak);
                OpOut::Rmw(result)
            }
            OpReq::Spawn { body } => {
                if st.exec.threads.len() >= self.opts.max_threads {
                    self.fail_locked(
                        st,
                        format!(
                            "thread limit exceeded (max_threads = {})",
                            self.opts.max_threads
                        ),
                    );
                    panic_abort();
                }
                let child = st.exec.threads.len();
                let floors = st.exec.threads[tid].floors.clone();
                // The child is announced by its parent: schedulable before
                // its OS carrier even starts.
                st.exec.threads.push(ThreadState::new(
                    floors,
                    Some(OpDesc {
                        cell: None,
                        writes: true,
                    }),
                ));
                st.exec.live += 1;
                st.exec.trace.push(format!("t{tid}: spawn t{child}"));
                let engine = Arc::clone(self);
                let body = body.take().expect("spawn body taken once");
                self.pool
                    .dispatch(Box::new(move || thread_main(engine, child, body)));
                OpOut::Spawned(child)
            }
            OpReq::Join { target } => {
                let target = *target;
                let (child_floors, boxed) = {
                    let t = &mut st.exec.threads[target];
                    debug_assert_eq!(t.status, Status::Finished);
                    (
                        t.floors.clone(),
                        t.result.take().expect("thread result joined once"),
                    )
                };
                // Join edge: everything the child saw is visible here.
                join_view(&mut st.exec.threads[tid].floors, &child_floors);
                st.exec.trace.push(format!("t{tid}: join t{target}"));
                OpOut::Joined(boxed)
            }
        }
    }

    /// The writer's view captured by a Release store (including the store
    /// itself), or `None` for Relaxed.
    fn release_view_for(
        &self,
        st: &mut Shared,
        tid: usize,
        cell: usize,
        is_release: bool,
    ) -> Option<View> {
        if !is_release {
            return None;
        }
        let next_idx = st.exec.cells[cell].stores.len();
        let mut view = st.exec.threads[tid].floors.clone();
        view.insert(cell, next_idx);
        Some(view)
    }

    fn exec_load(
        self: &Arc<Self>,
        st: &mut MutexGuard<'_, Shared>,
        tid: usize,
        cell: usize,
        order: Ordering,
    ) -> u64 {
        let floor = st.exec.threads[tid].floors.get(&cell).copied().unwrap_or(0);
        let latest = st.exec.cells[cell].stores.len() - 1;
        let idx = if read_latest_only(order) || floor == latest {
            latest
        } else {
            // Newest-first: the realistic outcome is explored before the
            // stale ones.
            let alternatives: Vec<Choice> = (floor..=latest).rev().map(Choice::Read).collect();
            match self.decide(st, alternatives) {
                Choice::Read(k) => k,
                _ => unreachable!("read nodes only offer read choices"),
            }
        };
        let stale = latest - idx;
        if acquires(order) {
            let view = st.exec.cells[cell].stores[idx].release_view.clone();
            if let Some(view) = view {
                join_view(&mut st.exec.threads[tid].floors, &view);
            }
        }
        let value = st.exec.cells[cell].stores[idx].value;
        let floors = &mut st.exec.threads[tid].floors;
        let entry = floors.entry(cell).or_insert(0);
        *entry = (*entry).max(idx);
        let name = Self::cell_name(st, cell);
        let staleness = if stale == 0 {
            String::new()
        } else {
            format!(" [stale by {stale}]")
        };
        st.exec.trace.push(format!(
            "t{tid}: {name} load -> {value}{staleness} ({order:?})"
        ));
        value
    }

    /// RMWs read the latest store (they are atomic against the
    /// modification order) and continue any release sequence they extend.
    #[allow(clippy::too_many_arguments)]
    fn exec_rmw(
        self: &Arc<Self>,
        st: &mut MutexGuard<'_, Shared>,
        tid: usize,
        cell: usize,
        acq: bool,
        rel: bool,
        apply: &mut dyn FnMut(u64) -> Option<u64>,
        label: &str,
    ) -> Result<u64, u64> {
        let latest = st.exec.cells[cell].stores.len() - 1;
        let prev = st.exec.cells[cell].stores[latest].value;
        if acq {
            let view = st.exec.cells[cell].stores[latest].release_view.clone();
            if let Some(view) = view {
                join_view(&mut st.exec.threads[tid].floors, &view);
            }
        }
        let name = Self::cell_name(st, cell);
        match apply(prev) {
            Some(new) => {
                // Release-sequence continuation: an RMW inherits the view
                // of the store it replaces, merged with its own when it is
                // itself a release.
                let inherited = st.exec.cells[cell].stores[latest].release_view.clone();
                let own = self.release_view_for(st, tid, cell, rel);
                let view = match (inherited, own) {
                    (Some(mut a), Some(b)) => {
                        join_view(&mut a, &b);
                        Some(a)
                    }
                    (Some(a), None) => Some(a),
                    (None, b) => b,
                };
                let c = &mut st.exec.cells[cell];
                c.stores.push(StoreRec {
                    value: new,
                    release_view: view,
                });
                let idx = c.stores.len() - 1;
                st.exec.threads[tid].floors.insert(cell, idx);
                st.exec
                    .trace
                    .push(format!("t{tid}: {name} {label} {prev} -> {new}"));
                Ok(prev)
            }
            None => {
                let floors = &mut st.exec.threads[tid].floors;
                let entry = floors.entry(cell).or_insert(0);
                *entry = (*entry).max(latest);
                st.exec
                    .trace
                    .push(format!("t{tid}: {name} {label} declined at {prev}"));
                Err(prev)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_cas(
        self: &Arc<Self>,
        st: &mut MutexGuard<'_, Shared>,
        tid: usize,
        cell: usize,
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
        weak: bool,
    ) -> Result<u64, u64> {
        let latest = st.exec.cells[cell].stores.len() - 1;
        let current = st.exec.cells[cell].stores[latest].value;
        let would_succeed = current == expected;
        let spurious = if would_succeed && weak && st.exec.cas_fails_left > 0 {
            match self.decide(st, vec![Choice::CasFail(false), Choice::CasFail(true)]) {
                Choice::CasFail(fail) => fail,
                _ => unreachable!("cas nodes only offer cas choices"),
            }
        } else {
            false
        };
        if spurious {
            st.exec.cas_fails_left -= 1;
        }
        let name = Self::cell_name(st, cell);
        if would_succeed && !spurious {
            let mut apply = |_: u64| Some(new);
            let kind = if weak { "cas-weak" } else { "cas" };
            st.exec.trace.push(format!(
                "t{tid}: {name} {kind} {expected} -> {new} ok ({success:?})"
            ));
            self.exec_rmw_in_place(
                st,
                tid,
                cell,
                acquires(success),
                releases(success),
                &mut apply,
            );
            Ok(current)
        } else {
            // A failed (or spuriously failed) CAS is a load of the latest
            // store with the failure ordering.
            if acquires(failure) {
                let view = st.exec.cells[cell].stores[latest].release_view.clone();
                if let Some(view) = view {
                    join_view(&mut st.exec.threads[tid].floors, &view);
                }
            }
            let floors = &mut st.exec.threads[tid].floors;
            let entry = floors.entry(cell).or_insert(0);
            *entry = (*entry).max(latest);
            let why = if spurious { "spurious-fail" } else { "fail" };
            st.exec.trace.push(format!(
                "t{tid}: {name} cas {expected} -> {new} {why}, observed {current} ({failure:?})"
            ));
            Err(current)
        }
    }

    /// The store half of a successful CAS (read already accounted).
    fn exec_rmw_in_place(
        &self,
        st: &mut MutexGuard<'_, Shared>,
        tid: usize,
        cell: usize,
        acq: bool,
        rel: bool,
        apply: &mut dyn FnMut(u64) -> Option<u64>,
    ) {
        let latest = st.exec.cells[cell].stores.len() - 1;
        let prev = st.exec.cells[cell].stores[latest].value;
        if acq {
            let view = st.exec.cells[cell].stores[latest].release_view.clone();
            if let Some(view) = view {
                join_view(&mut st.exec.threads[tid].floors, &view);
            }
        }
        let new = apply(prev).expect("cas store applies");
        let inherited = st.exec.cells[cell].stores[latest].release_view.clone();
        let own = self.release_view_for(st, tid, cell, rel);
        let view = match (inherited, own) {
            (Some(mut a), Some(b)) => {
                join_view(&mut a, &b);
                Some(a)
            }
            (Some(a), None) => Some(a),
            (None, b) => b,
        };
        let c = &mut st.exec.cells[cell];
        c.stores.push(StoreRec {
            value: new,
            release_view: view,
        });
        let idx = c.stores.len() - 1;
        st.exec.threads[tid].floors.insert(cell, idx);
    }

    /// First yield point of every model thread: wait to be scheduled (the
    /// creator already announced us), then mark the begin step.
    fn begin(self: &Arc<Self>, tid: usize) {
        let st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut st = self.wait_for_turn(st, tid);
        st.exec.trace.push(format!("t{tid}: begin"));
        st.exec.prev = Some(tid);
        self.wake_sleepers(
            &mut st,
            OpDesc {
                cell: None,
                writes: true,
            },
        );
    }

    /// Normal completion of a model thread's body.
    fn finish(self: &Arc<Self>, tid: usize, value: Box<dyn Any + Send>) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if st.exec.outcome.is_some() {
            return; // aborted while running: nothing left to schedule
        }
        {
            let t = &mut st.exec.threads[tid];
            t.status = Status::Finished;
            t.pending = None;
            t.result = Some(value);
        }
        st.exec.trace.push(format!("t{tid}: finish"));
        // Wake joiners.
        for t in st.exec.threads.iter_mut() {
            if t.status == Status::Blocked(tid) {
                t.status = Status::Ready;
            }
        }
        st.exec.prev = Some(tid);
        self.wake_sleepers(
            &mut st,
            OpDesc {
                cell: None,
                writes: true,
            },
        );
        self.next_turn(&mut st);
    }

    /// A model thread panicked: an assertion failure unless it is our own
    /// abort unwinding.
    fn thread_panicked(self: &Arc<Self>, tid: usize, payload: Box<dyn Any + Send>) {
        if payload.downcast_ref::<AbortToken>().is_some() {
            return;
        }
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.exec.threads[tid].status = Status::Finished;
        let message = format!("t{tid} panicked: {}", panic_message(payload.as_ref()));
        self.fail_locked(&mut st, message);
    }

    /// Final bookkeeping of a model thread's OS carrier.
    fn thread_exited(&self) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.exec.live -= 1;
        self.cv.notify_all();
    }

    /// Runs one execution of `body` as thread 0; returns its outcome.
    fn run_once(self: &Arc<Self>, body: BodyFn) -> Outcome {
        {
            let mut st = self
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let prefix_len = st.tree.len();
            st.exec = Exec::empty();
            st.exec.prefix_len = prefix_len;
            st.exec.cas_fails_left = self.opts.max_spurious_cas_failures;
            st.exec.threads.push(ThreadState::new(
                View::new(),
                Some(OpDesc {
                    cell: None,
                    writes: true,
                }),
            ));
            st.exec.live = 1;
        }
        let engine = Arc::clone(self);
        self.pool
            .dispatch(Box::new(move || thread_main(engine, 0, body)));
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.next_turn(&mut st);
        loop {
            if st.exec.outcome.is_some() && st.exec.live == 0 {
                return st.exec.outcome.take().expect("outcome just checked");
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Advances the DFS to the next unexplored schedule. Returns `false`
    /// when the space is exhausted.
    fn backtrack(&self) -> bool {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while let Some(node) = st.tree.last_mut() {
            if node.untried.is_empty() {
                st.tree.pop();
                continue;
            }
            let next = node.untried.remove(0);
            if let Choice::Thread(t) = node.taken {
                node.slept.push(t);
            }
            node.taken = next;
            return true;
        }
        false
    }

    fn last_depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .last_depth
    }

    fn take_trace(&self) -> Vec<String> {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        std::mem::take(&mut st.exec.trace)
    }
}

/// Body wrapper running on a pool worker: registers the model context,
/// waits for the first grant, runs the body, and reports the outcome.
fn thread_main(engine: Arc<Engine>, tid: usize, body: BodyFn) {
    set_current(Some((Arc::clone(&engine), tid)));
    let result = catch_unwind(AssertUnwindSafe(|| {
        engine.begin(tid);
        body()
    }));
    set_current(None);
    match result {
        Ok(value) => engine.finish(tid, value),
        Err(payload) => engine.thread_panicked(tid, payload),
    }
    engine.thread_exited();
}

/// Explores every schedule of `body` under `opts`.
///
/// # Errors
///
/// The first [`Failure`] found: an assertion panic in any model thread, a
/// deadlock, a step-budget (livelock) violation, or a thread-limit
/// violation — with its replayable schedule and trace.
pub fn explore<F>(opts: &Options, body: F) -> Result<Stats, Box<Failure>>
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(
        current().is_none(),
        "nested model checking is not supported"
    );
    let engine = Arc::new(Engine::new(opts.clone()));
    let body = Arc::new(body);
    let mut stats = Stats::default();
    loop {
        let run: BodyFn = {
            let body = Arc::clone(&body);
            Box::new(move || {
                body();
                Box::new(()) as Box<dyn Any + Send>
            })
        };
        let outcome = engine.run_once(run);
        stats.executions += 1;
        stats.max_depth = stats.max_depth.max(engine.last_depth());
        match outcome {
            Outcome::Failed(mut failure) => {
                failure.executions = stats.executions;
                return Err(Box::new(failure));
            }
            Outcome::Pruned => stats.pruned += 1,
            Outcome::Complete => {}
        }
        if !engine.backtrack() {
            stats.complete = true;
            return Ok(stats);
        }
        if stats.executions >= opts.max_executions {
            stats.complete = false;
            return Ok(stats);
        }
    }
}

/// Model-checks `body` under default [`Options`], panicking with the full
/// failure report (message, schedule, trace) when an invariant breaks.
pub fn model<F>(body: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(&Options::default(), body)
}

/// [`model`] under explicit [`Options`].
pub fn model_with<F>(opts: &Options, body: F) -> Stats
where
    F: Fn() + Send + Sync + 'static,
{
    match explore(opts, body) {
        Ok(stats) => stats,
        Err(failure) => panic!("{failure}"),
    }
}

/// Replays one schedule (as printed in a [`Failure`]) against `body`,
/// returning the execution trace on success.
///
/// # Errors
///
/// The reproduced [`Failure`] — or a `replay diverged` failure when the
/// schedule does not fit `body` (e.g. the code under test changed).
pub fn replay<F>(schedule: &str, body: F) -> Result<Vec<String>, Box<Failure>>
where
    F: Fn() + Send + Sync + 'static,
{
    let mut tree = Vec::new();
    for part in schedule.split(',').filter(|p| !p.is_empty()) {
        let choice = Choice::parse(part.trim()).ok_or_else(|| {
            Box::new(Failure {
                message: format!("unparseable schedule step `{part}`"),
                schedule: schedule.to_string(),
                trace: Vec::new(),
                executions: 0,
            })
        })?;
        tree.push(Node {
            taken: choice,
            untried: Vec::new(),
            slept: Vec::new(),
        });
    }
    let engine = Arc::new(Engine::new(Options::default()));
    {
        let mut st = engine
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.tree = tree;
    }
    let body = Arc::new(body);
    let run: BodyFn = {
        let body = Arc::clone(&body);
        Box::new(move || {
            body();
            Box::new(()) as Box<dyn Any + Send>
        })
    };
    match engine.run_once(run) {
        Outcome::Failed(mut failure) => {
            failure.executions = 1;
            Err(Box::new(failure))
        }
        Outcome::Complete | Outcome::Pruned => Ok(engine.take_trace()),
    }
}
