//! `interleave` — a vendored, dependency-free loom-style model checker
//! for the workspace's lock-free core.
//!
//! The workspace's telemetry registry, fleet executor, and daemon
//! scheduler carry small cross-thread state machines built from atomics.
//! `detlint` rule A1 makes every `Ordering::Relaxed` carry a written
//! justification — but a comment is an argument, not a proof. This crate
//! turns the arguments into checked properties: a test body runs under a
//! cooperative scheduler that explores **every** thread interleaving (and
//! every legal weak-memory read, and every spurious `compare_exchange_weak`
//! failure), asserting the documented invariant in each one.
//!
//! # Using it
//!
//! Code under test imports atomics through a crate-local `sync` facade
//! that re-exports `std::sync::atomic` normally and [`sync::atomic`] under
//! that crate's `interleave` feature. Harnesses then drive the real types:
//!
//! ```
//! use interleave::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let stats = interleave::model(|| {
//!     let counter = Arc::new(AtomicU64::new(0));
//!     let c2 = Arc::clone(&counter);
//!     let t = interleave::thread::spawn(move || {
//!         c2.fetch_add(1, Ordering::Relaxed); // relaxed: counting only, checked here
//!     });
//!     counter.fetch_add(1, Ordering::Relaxed); // relaxed: counting only, checked here
//!     t.join().unwrap();
//!     assert_eq!(counter.load(Ordering::Relaxed), 2); // relaxed: join synchronizes
//! });
//! assert!(stats.complete, "schedule space exhausted, invariant proven");
//! ```
//!
//! On failure, [`model`] panics with the assertion message, a replayable
//! schedule string (`t0,t1,r0,co,...`), and a per-operation trace; feed
//! the schedule to [`replay`] to re-execute exactly that interleaving.
//!
//! # What the model covers (and what it does not)
//!
//! * Scheduling: full DFS over yield points, optionally preemption-bounded
//!   ([`Options::preemption_bound`]), with sleep-set pruning
//!   ([`Options::sleep_sets`]) that skips provably redundant schedules.
//! * Weak memory, C11-lite: Relaxed loads may read stale stores;
//!   Release stores publish the writer's view to Acquire readers; RMWs
//!   read the latest store and continue release sequences. `SeqCst` is
//!   approximated as AcqRel-plus-read-latest — sufficient for the
//!   Relaxed/Acquire/Release protocols this workspace uses, but **not** a
//!   decision procedure for algorithms that need a total store order.
//! * Liveness: deadlocks (join cycles) and unbounded spins
//!   ([`Options::max_steps`]) are failures, so harnesses must be loop-free
//!   or rely on CAS loops that converge (a failed CAS observes the latest
//!   value, so claim-style loops terminate).
//!
//! Budgets are execution *counts*, never wall-clock time: a run either
//! proves the property for the explored space or fails reproducibly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod sync;
pub mod thread;

pub use engine::{explore, model, model_with, replay, Failure, Options, Stats};
