//! Drop-in shims for `std::sync::atomic`.
//!
//! Each type wraps the real std atomic. Outside a model-checking run the
//! wrapper is a zero-overhead passthrough (every method delegates to the
//! inner atomic with the caller's ordering). Inside [`crate::explore`],
//! every operation becomes a scheduler yield point whose outcome is
//! resolved by the engine's C11-lite memory model instead of the host
//! hardware — which is what lets the checker inject stale reads for
//! Relaxed loads and spurious `compare_exchange_weak` failures.
//!
//! The intended consumer is a crate-local `sync` facade:
//!
//! ```ignore
//! #[cfg(not(feature = "interleave"))]
//! pub use std::sync::atomic;
//! #[cfg(feature = "interleave")]
//! pub use interleave::sync::atomic;
//! ```
//!
//! One rule: an atomic must not be shared between model threads and
//! non-model threads during a run. Harnesses create their state inside
//! the model closure (or only touch it from model threads), so this does
//! not come up in practice.

/// Shimmed `std::sync::atomic` namespace, mirroring the std layout so
/// `use crate::sync::atomic::{AtomicU64, Ordering};` works unchanged.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::engine::{self, current, CellRef, OpOut, OpReq};

    macro_rules! int_atomic {
        ($(#[$meta:meta])* $name:ident, $ty:ty, $kind:literal) => {
            $(#[$meta])*
            pub struct $name {
                inner: std::sync::atomic::$name,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                #[must_use]
                pub const fn new(value: $ty) -> Self {
                    Self {
                        inner: std::sync::atomic::$name::new(value),
                    }
                }

                /// Identity + seed value for engine cell registration. The
                /// seed is only consulted the first time the cell is
                /// touched in an execution; after that the engine's store
                /// history is authoritative.
                fn cell(&self) -> CellRef {
                    CellRef {
                        addr: std::ptr::from_ref(self) as usize,
                        initial: self.inner.load(Ordering::SeqCst) as u64,
                        kind: $kind,
                    }
                }

                fn value(out: OpOut) -> $ty {
                    match out {
                        OpOut::Value(v) => v as $ty,
                        _ => unreachable!("load yields a value"),
                    }
                }

                fn rmw(out: OpOut) -> Result<$ty, $ty> {
                    match out {
                        OpOut::Rmw(Ok(v)) => Ok(v as $ty),
                        OpOut::Rmw(Err(v)) => Err(v as $ty),
                        _ => unreachable!("rmw yields a result"),
                    }
                }

                /// Loads the value; under the model a non-SeqCst load may
                /// observe any store the memory model permits.
                pub fn load(&self, order: Ordering) -> $ty {
                    match current() {
                        None => self.inner.load(order),
                        Some((engine, tid)) => Self::value(engine.op(
                            tid,
                            Some(self.cell()),
                            OpReq::Load { order },
                        )),
                    }
                }

                /// Stores a value.
                pub fn store(&self, value: $ty, order: Ordering) {
                    match current() {
                        None => self.inner.store(value, order),
                        Some((engine, tid)) => {
                            engine.op(
                                tid,
                                Some(self.cell()),
                                OpReq::Store {
                                    order,
                                    value: value as u64,
                                },
                            );
                        }
                    }
                }

                /// Atomically replaces the value, returning the previous one.
                pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                    match current() {
                        None => self.inner.swap(value, order),
                        Some(ctx) => self.model_rmw(ctx, order, "swap", move |_| value),
                    }
                }

                /// Atomically adds (wrapping), returning the previous value.
                pub fn fetch_add(&self, delta: $ty, order: Ordering) -> $ty {
                    match current() {
                        None => self.inner.fetch_add(delta, order),
                        Some(ctx) => self.model_rmw(ctx, order, "fetch_add", move |v| {
                            v.wrapping_add(delta)
                        }),
                    }
                }

                /// Atomically subtracts (wrapping), returning the previous value.
                pub fn fetch_sub(&self, delta: $ty, order: Ordering) -> $ty {
                    match current() {
                        None => self.inner.fetch_sub(delta, order),
                        Some(ctx) => self.model_rmw(ctx, order, "fetch_sub", move |v| {
                            v.wrapping_sub(delta)
                        }),
                    }
                }

                /// Atomically takes the maximum, returning the previous value.
                pub fn fetch_max(&self, value: $ty, order: Ordering) -> $ty {
                    match current() {
                        None => self.inner.fetch_max(value, order),
                        Some(ctx) => {
                            self.model_rmw(ctx, order, "fetch_max", move |v| v.max(value))
                        }
                    }
                }

                /// Atomically takes the minimum, returning the previous value.
                pub fn fetch_min(&self, value: $ty, order: Ordering) -> $ty {
                    match current() {
                        None => self.inner.fetch_min(value, order),
                        Some(ctx) => {
                            self.model_rmw(ctx, order, "fetch_min", move |v| v.min(value))
                        }
                    }
                }

                /// Atomically bitwise-ANDs, returning the previous value.
                pub fn fetch_and(&self, value: $ty, order: Ordering) -> $ty {
                    match current() {
                        None => self.inner.fetch_and(value, order),
                        Some(ctx) => {
                            self.model_rmw(ctx, order, "fetch_and", move |v| v & value)
                        }
                    }
                }

                /// Atomically bitwise-ORs, returning the previous value.
                pub fn fetch_or(&self, value: $ty, order: Ordering) -> $ty {
                    match current() {
                        None => self.inner.fetch_or(value, order),
                        Some(ctx) => {
                            self.model_rmw(ctx, order, "fetch_or", move |v| v | value)
                        }
                    }
                }

                /// Model-side RMW path: one engine step, always writes.
                fn model_rmw(
                    &self,
                    (engine, tid): (std::sync::Arc<crate::engine::Engine>, usize),
                    order: Ordering,
                    label: &str,
                    mut f: impl FnMut($ty) -> $ty,
                ) -> $ty {
                    let mut apply = move |bits: u64| Some(f(bits as $ty) as u64);
                    let out = engine.op(
                        tid,
                        Some(self.cell()),
                        OpReq::Rmw {
                            acquires: engine::acquires(order),
                            releases: engine::releases(order),
                            apply: &mut apply,
                            label,
                        },
                    );
                    match Self::rmw(out) {
                        Ok(prev) | Err(prev) => prev,
                    }
                }

                /// Fetches the value and applies `f`; stores the result if
                /// `Some`. Under the model this is a single atomic step —
                /// matching the lock-free retry loop's externally visible
                /// behaviour while keeping the schedule space small.
                pub fn fetch_update(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    mut f: impl FnMut($ty) -> Option<$ty>,
                ) -> Result<$ty, $ty> {
                    match current() {
                        None => self.inner.fetch_update(set_order, fetch_order, f),
                        Some((engine, tid)) => {
                            let mut apply =
                                move |bits: u64| f(bits as $ty).map(|n| n as u64);
                            let out = engine.op(
                                tid,
                                Some(self.cell()),
                                OpReq::Rmw {
                                    acquires: engine::acquires(set_order)
                                        || engine::acquires(fetch_order),
                                    releases: engine::releases(set_order),
                                    apply: &mut apply,
                                    label: "fetch_update",
                                },
                            );
                            Self::rmw(out)
                        }
                    }
                }

                /// Strong compare-and-exchange: never fails spuriously.
                pub fn compare_exchange(
                    &self,
                    expected: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.cas(expected, new, success, failure, false)
                }

                /// Weak compare-and-exchange: under the model, a would-be
                /// success may additionally fail spuriously (a scheduler
                /// decision), so retry loops must tolerate `Err(expected)`.
                pub fn compare_exchange_weak(
                    &self,
                    expected: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.cas(expected, new, success, failure, true)
                }

                fn cas(
                    &self,
                    expected: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                    weak: bool,
                ) -> Result<$ty, $ty> {
                    match current() {
                        None => {
                            if weak {
                                self.inner
                                    .compare_exchange_weak(expected, new, success, failure)
                            } else {
                                self.inner.compare_exchange(expected, new, success, failure)
                            }
                        }
                        Some((engine, tid)) => Self::rmw(engine.op(
                            tid,
                            Some(self.cell()),
                            OpReq::Cas {
                                expected: expected as u64,
                                new: new as u64,
                                success,
                                failure,
                                weak,
                            },
                        )),
                    }
                }

                /// Consumes the atomic, returning the contained value.
                /// Outside the model only (a model cell's history lives in
                /// the engine, not in `inner`).
                #[must_use]
                pub fn into_inner(self) -> $ty {
                    assert!(
                        current().is_none(),
                        "into_inner is not meaningful on a model thread"
                    );
                    // A load stands in for the move: `self` has a `Drop`
                    // impl, so the field cannot be moved out, and we hold
                    // the only reference.
                    self.inner.load(Ordering::SeqCst)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(0 as $ty)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    match current() {
                        None => f
                            .debug_tuple(stringify!($name))
                            .field(&self.inner.load(Ordering::SeqCst))
                            .finish(),
                        Some(_) => f.write_str(concat!(stringify!($name), "(<modeled>)")),
                    }
                }
            }

            impl Drop for $name {
                fn drop(&mut self) {
                    // Deregister the address so a reused allocation starts
                    // a fresh cell instead of inheriting stale history.
                    if let Some((engine, _)) = current() {
                        engine.drop_cell(std::ptr::from_ref(self) as usize);
                    }
                }
            }
        };
    }

    int_atomic!(
        /// Shimmed [`std::sync::atomic::AtomicU64`].
        AtomicU64,
        u64,
        "AtomicU64"
    );
    int_atomic!(
        /// Shimmed [`std::sync::atomic::AtomicUsize`].
        AtomicUsize,
        usize,
        "AtomicUsize"
    );
    int_atomic!(
        /// Shimmed [`std::sync::atomic::AtomicI64`]. Values round-trip
        /// through the engine as two's-complement `u64` bit patterns, so
        /// wrapping arithmetic and comparisons behave identically.
        AtomicI64,
        i64,
        "AtomicI64"
    );

    /// Shimmed [`std::sync::atomic::AtomicBool`].
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates a new atomic with the given initial value.
        #[must_use]
        pub const fn new(value: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(value),
            }
        }

        fn cell(&self) -> CellRef {
            CellRef {
                addr: std::ptr::from_ref(self) as usize,
                initial: u64::from(self.inner.load(Ordering::SeqCst)),
                kind: "AtomicBool",
            }
        }

        /// Loads the value; under the model a non-SeqCst load may observe
        /// any store the memory model permits.
        pub fn load(&self, order: Ordering) -> bool {
            match current() {
                None => self.inner.load(order),
                Some((engine, tid)) => {
                    match engine.op(tid, Some(self.cell()), OpReq::Load { order }) {
                        OpOut::Value(v) => v != 0,
                        _ => unreachable!("load yields a value"),
                    }
                }
            }
        }

        /// Stores a value.
        pub fn store(&self, value: bool, order: Ordering) {
            match current() {
                None => self.inner.store(value, order),
                Some((engine, tid)) => {
                    engine.op(
                        tid,
                        Some(self.cell()),
                        OpReq::Store {
                            order,
                            value: u64::from(value),
                        },
                    );
                }
            }
        }

        /// Atomically replaces the value, returning the previous one.
        pub fn swap(&self, value: bool, order: Ordering) -> bool {
            match current() {
                None => self.inner.swap(value, order),
                Some((engine, tid)) => {
                    let mut apply = move |_: u64| Some(u64::from(value));
                    let out = engine.op(
                        tid,
                        Some(self.cell()),
                        OpReq::Rmw {
                            acquires: engine::acquires(order),
                            releases: engine::releases(order),
                            apply: &mut apply,
                            label: "swap",
                        },
                    );
                    match out {
                        OpOut::Rmw(Ok(prev) | Err(prev)) => prev != 0,
                        _ => unreachable!("rmw yields a result"),
                    }
                }
            }
        }

        /// Strong compare-and-exchange: never fails spuriously.
        pub fn compare_exchange(
            &self,
            expected: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            match current() {
                None => self.inner.compare_exchange(expected, new, success, failure),
                Some((engine, tid)) => {
                    let out = engine.op(
                        tid,
                        Some(self.cell()),
                        OpReq::Cas {
                            expected: u64::from(expected),
                            new: u64::from(new),
                            success,
                            failure,
                            weak: false,
                        },
                    );
                    match out {
                        OpOut::Rmw(Ok(v)) => Ok(v != 0),
                        OpOut::Rmw(Err(v)) => Err(v != 0),
                        _ => unreachable!("cas yields a result"),
                    }
                }
            }
        }

        /// Consumes the atomic, returning the contained value. Outside the
        /// model only.
        #[must_use]
        pub fn into_inner(self) -> bool {
            assert!(
                current().is_none(),
                "into_inner is not meaningful on a model thread"
            );
            // See the integer shims: Drop forbids moving the field out.
            self.inner.load(Ordering::SeqCst)
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match current() {
                None => f
                    .debug_tuple("AtomicBool")
                    .field(&self.inner.load(Ordering::SeqCst))
                    .finish(),
                Some(_) => f.write_str("AtomicBool(<modeled>)"),
            }
        }
    }

    impl Drop for AtomicBool {
        fn drop(&mut self) {
            if let Some((engine, _)) = current() {
                engine.drop_cell(std::ptr::from_ref(self) as usize);
            }
        }
    }
}
