//! Self-tests for the model checker: each test either proves a correct
//! protocol exhaustively (`stats.complete`) or demonstrates that a broken
//! protocol is caught with a replayable schedule — the checker's teeth.

use std::sync::{Arc, Mutex};

use interleave::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use interleave::{explore, model, replay, Options};

fn opts() -> Options {
    Options::default()
}

#[test]
fn release_acquire_message_passing_holds_in_every_interleaving() {
    let stats = model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let writer = interleave::thread::spawn(move || {
            // relaxed: publication happens via the flag's Release store below
            d.store(42, Ordering::Relaxed);
            f.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            // relaxed: the Acquire load above synchronized with the Release store
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        writer.join().unwrap();
    });
    assert!(
        stats.complete,
        "schedule space must be exhausted: {stats:?}"
    );
    assert!(stats.executions > 1, "must explore several schedules");
}

#[test]
fn relaxed_publication_is_caught_and_replayable() {
    let broken = || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let writer = interleave::thread::spawn(move || {
            // relaxed: deliberately broken publication — this test proves
            // the checker rejects it
            d.store(42, Ordering::Relaxed);
            f.store(true, Ordering::Relaxed); // relaxed: intentionally unordered flag store
        });
        if flag.load(Ordering::Acquire) {
            // relaxed: stale read is the expected counterexample here
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        writer.join().unwrap();
    };
    let failure = explore(&opts(), broken).expect_err("relaxed publication must fail");
    assert!(
        failure.message.contains("assertion"),
        "failure should be the harness assert: {}",
        failure.message
    );
    assert!(!failure.schedule.is_empty());
    assert!(!failure.trace.is_empty());

    // The printed schedule replays to the same assertion failure.
    let replayed = replay(&failure.schedule, broken).expect_err("replay must reproduce");
    assert_eq!(replayed.message, failure.message);
}

#[test]
fn lost_update_from_non_atomic_increment_is_found() {
    let broken = || {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                interleave::thread::spawn(move || {
                    // relaxed: deliberately racy load/store pair (not an RMW)
                    let v = c.load(Ordering::Relaxed);
                    c.store(v + 1, Ordering::Relaxed); // relaxed: racy store is the subject
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // relaxed: join edges make both increments visible
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    };
    let failure = explore(&opts(), broken).expect_err("lost update must be found");
    assert!(failure.message.contains("assertion"), "{}", failure.message);
}

#[test]
fn preemption_bound_zero_hides_the_seqcst_lost_update() {
    // SeqCst accesses always read the latest store, so this lost update
    // needs a genuine context switch between the load and the store. With
    // no preemptions allowed each thread runs its pair as a block and the
    // bug is unreachable — a demonstration that a preemption bound is an
    // under-approximation. (The Relaxed variant above is caught even
    // without preemptions, through a stale read.)
    let racy_seqcst_increment = || {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                interleave::thread::spawn(move || {
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    };

    let bounded = Options {
        preemption_bound: Some(0),
        ..opts()
    };
    let stats =
        explore(&bounded, racy_seqcst_increment).expect("bounded search must not reach the bug");
    assert!(stats.complete);

    explore(&opts(), racy_seqcst_increment)
        .expect_err("unbounded search must find the lost update");
}

#[test]
fn atomic_counter_is_correct_with_and_without_sleep_sets() {
    let body = || {
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&counter);
                interleave::thread::spawn(move || {
                    // relaxed: counting only; totals read after join
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // relaxed: join edges order the increments before this load
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    };
    let pruned = explore(&opts(), body).expect("atomic counter is correct");
    assert!(pruned.complete);

    let unpruned_opts = Options {
        sleep_sets: false,
        ..opts()
    };
    let unpruned = explore(&unpruned_opts, body).expect("correct without pruning too");
    assert!(unpruned.complete);
    assert!(
        unpruned.executions >= pruned.executions,
        "sleep sets must not add executions: {} pruned vs {} unpruned",
        pruned.executions,
        unpruned.executions
    );
}

#[test]
fn spurious_weak_cas_failures_are_injected() {
    let naive = || {
        let cell = Arc::new(AtomicU64::new(0));
        let c = Arc::clone(&cell);
        let t = interleave::thread::spawn(move || {
            // relaxed: the CAS result itself is the property under test
            c.compare_exchange_weak(0, 1, Ordering::Relaxed, Ordering::Relaxed)
        });
        let result = t.join().unwrap();
        assert!(result.is_ok(), "naively assumes weak CAS cannot fail");
    };
    let failure = explore(&opts(), naive).expect_err("spurious failure must be injected");
    assert!(
        failure.schedule.contains("cf"),
        "schedule: {}",
        failure.schedule
    );

    // With injection disabled the naive assumption holds (uncontended CAS).
    let no_spurious = Options {
        max_spurious_cas_failures: 0,
        ..opts()
    };
    let stats = explore(&no_spurious, naive).expect("no spurious failures left");
    assert!(stats.complete);
}

#[test]
fn unbounded_spin_fails_the_step_budget() {
    let options = Options {
        max_steps: 64,
        ..opts()
    };
    let failure = explore(&options, || {
        let flag = AtomicBool::new(false);
        // relaxed: deliberate unbounded spin; nobody ever sets the flag
        while !flag.load(Ordering::Relaxed) {}
    })
    .expect_err("spin loop must be flagged as a livelock");
    assert!(
        failure.message.contains("step budget"),
        "{}",
        failure.message
    );
}

#[test]
fn thread_limit_is_enforced() {
    let options = Options {
        max_threads: 2,
        ..opts()
    };
    let failure = explore(&options, || {
        let a = interleave::thread::spawn(|| {});
        let b = interleave::thread::spawn(|| {});
        a.join().unwrap();
        b.join().unwrap();
    })
    .expect_err("third thread must exceed the limit");
    assert!(
        failure.message.contains("thread limit"),
        "{}",
        failure.message
    );
}

#[test]
fn join_returns_the_value_and_publishes_the_child_view() {
    let stats = model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&data);
        let child = interleave::thread::spawn(move || {
            // relaxed: the join edge below publishes this store
            d.store(7, Ordering::Relaxed);
            41_u64
        });
        let got = child.join().unwrap();
        assert_eq!(got, 41);
        // relaxed: reading after the join edge
        assert_eq!(data.load(Ordering::Relaxed), 7);
    });
    assert!(stats.complete);
}

#[test]
fn store_buffer_litmus_exhibits_the_weak_outcome() {
    // SB litmus: with only Relaxed accesses, both readers may observe the
    // other cell's initial value. The model must reach that outcome.
    let weak_outcome_seen = Arc::new(Mutex::new(false));
    let seen = Arc::clone(&weak_outcome_seen);
    let stats = explore(&opts(), move || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x1, y1) = (Arc::clone(&x), Arc::clone(&y));
        let t = interleave::thread::spawn(move || {
            // relaxed: litmus test body — weak outcomes are the point
            x1.store(1, Ordering::Relaxed);
            y1.load(Ordering::Relaxed) // relaxed: litmus load
        });
        // relaxed: litmus test body — weak outcomes are the point
        y.store(1, Ordering::Relaxed);
        let r2 = x.load(Ordering::Relaxed); // relaxed: litmus load
        let r1 = t.join().unwrap();
        if r1 == 0 && r2 == 0 {
            *seen.lock().unwrap() = true;
        }
    })
    .expect("litmus test has no assertions");
    assert!(stats.complete);
    assert!(
        *weak_outcome_seen.lock().unwrap(),
        "the r1 == r2 == 0 outcome must be explored"
    );
}

#[test]
fn seeded_exploration_finds_the_same_bug() {
    let broken = || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let writer = interleave::thread::spawn(move || {
            // relaxed: deliberately broken publication
            d.store(1, Ordering::Relaxed);
            f.store(true, Ordering::Relaxed); // relaxed: intentionally unordered flag store
        });
        if flag.load(Ordering::Acquire) {
            // relaxed: stale read expected
            assert_eq!(data.load(Ordering::Relaxed), 1);
        }
        writer.join().unwrap();
    };
    for seed in [1_u64, 7, 0xDEAD_BEEF] {
        let options = Options { seed, ..opts() };
        explore(&options, broken).expect_err("every seed explores the same space");
    }
}

#[test]
fn empty_schedule_replay_runs_one_natural_execution() {
    let trace = replay("", || {
        let cell = AtomicU64::new(0);
        cell.store(3, Ordering::Relaxed); // relaxed: single-threaded
    })
    .expect("nothing fails");
    assert!(trace.iter().any(|line| line.contains("begin")), "{trace:?}");
    assert!(
        trace.iter().any(|line| line.contains("store 3")),
        "{trace:?}"
    );
}

#[test]
fn garbage_schedules_are_rejected() {
    let failure = replay("t0,zz", || {}).expect_err("unparseable step");
    assert!(
        failure.message.contains("unparseable"),
        "{}",
        failure.message
    );
}

#[test]
fn yield_now_is_a_pure_scheduling_point() {
    let stats = model(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f = Arc::clone(&flag);
        let t = interleave::thread::spawn(move || {
            f.store(true, Ordering::Release);
        });
        interleave::thread::yield_now();
        // Either order is fine; the value is just observed.
        let _ = flag.load(Ordering::Acquire);
        t.join().unwrap();
    });
    assert!(stats.complete);
}

#[test]
fn passthrough_mode_behaves_like_std() {
    // Outside `explore` the shims delegate to std: real threads, real
    // atomics, no engine.
    let counter = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let c = Arc::clone(&counter);
            interleave::thread::spawn(move || {
                // relaxed: counting only; totals read after join
                c.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::SeqCst), 4);

    let cell = AtomicU64::new(9);
    assert_eq!(
        cell.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| Some(v + 1)),
        Ok(9)
    );
    assert_eq!(cell.swap(1, Ordering::SeqCst), 10);
    assert_eq!(cell.fetch_max(5, Ordering::SeqCst), 1);
    assert_eq!(
        cell.compare_exchange(5, 6, Ordering::SeqCst, Ordering::SeqCst),
        Ok(5)
    );
    assert_eq!(cell.into_inner(), 6);
    let flag = AtomicBool::new(false);
    assert!(!flag.swap(true, Ordering::SeqCst));
    assert_eq!(
        flag.compare_exchange(true, false, Ordering::SeqCst, Ordering::SeqCst),
        Ok(true)
    );
}

/// Heavier suites for the dedicated CI job (`--features exhaustive`):
/// wider fan-out and unpruned cross-validation on a bigger state machine.
#[cfg(feature = "exhaustive")]
mod exhaustive {
    use super::*;

    #[test]
    fn three_writer_counter_is_exhaustively_correct() {
        let options = Options {
            max_executions: 2_000_000,
            ..opts()
        };
        let stats = explore(&options, || {
            let counter = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    interleave::thread::spawn(move || {
                        // relaxed: counting only; totals read after join
                        c.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            // relaxed: join edges order the increments before this load
            assert_eq!(counter.load(Ordering::Relaxed), 3);
        })
        .expect("three-writer counter is correct");
        assert!(stats.complete, "{stats:?}");
    }

    #[test]
    fn sleep_set_pruning_agrees_with_full_enumeration() {
        // The same broken protocol must fail with pruning on and off —
        // pruning may only drop redundant interleavings, never the
        // counterexample.
        let broken = || {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicBool::new(false));
            let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
            let writer = interleave::thread::spawn(move || {
                // relaxed: deliberately broken publication
                d.store(1, Ordering::Relaxed);
                f.store(true, Ordering::Relaxed); // relaxed: intentionally unordered flag store
            });
            if flag.load(Ordering::Acquire) {
                // relaxed: stale read expected
                assert_eq!(data.load(Ordering::Relaxed), 1);
            }
            writer.join().unwrap();
        };
        for sleep_sets in [true, false] {
            let options = Options {
                sleep_sets,
                ..opts()
            };
            explore(&options, broken).expect_err("bug must be found either way");
        }
    }
}
