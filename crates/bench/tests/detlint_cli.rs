//! End-to-end tests of the `detlint` binary: exit codes, `--json` output
//! that round-trips through a real JSON parser, waiver suppression via
//! `--config`, and — the gate CI relies on — the actual workspace linting
//! clean under the committed `detlint.toml`.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use serde::{map_field, Deserialize, Error, Value};

/// The vendored `serde::Value` doesn't implement `Deserialize` itself (the
/// workspace parses straight into typed structs), so a newtype that captures
/// the raw tree gives these tests dynamic access to the `--json` document.
struct Doc(Value);

impl Deserialize for Doc {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Doc(value.clone()))
    }
}

/// Looks up `key` in a JSON object, panicking with context on a miss.
fn field<'a>(value: &'a Value, key: &str) -> &'a Value {
    let entries = value.as_map().expect("JSON object");
    map_field(entries, key).unwrap_or_else(|_| panic!("missing field `{key}`"))
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_detlint"))
        .args(args)
        .output()
        .expect("running detlint")
}

/// The detlint fixture trees, reached from bench's manifest dir.
fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../detlint/tests/fixtures")
        .join(name)
}

/// The real workspace root.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn temp_file(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("detlint-cli-{name}-{}", std::process::id()));
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn violations_fail_with_deny_and_name_their_sites() {
    let root = fixture_root("violating");
    let output = run(&["--root", root.to_str().unwrap(), "--deny"]);
    assert_eq!(output.status.code(), Some(1), "deny mode exits 1");
    let stdout = String::from_utf8(output.stdout).unwrap();
    // Exact file:line diagnostics, one per deliberate violation.
    for expected in [
        "crates/fleet/src/lib.rs:4: D1",
        "crates/fleet/src/lib.rs:11: D2",
        "crates/fleet/src/lib.rs:15: D3",
        "crates/fleet/src/lib.rs:22: A2",
        "crates/fleet/src/lib.rs:23: A1",
        "crates/fleetd/src/http.rs:5: P1",
        "crates/fleetd/src/http.rs:7: P1",
    ] {
        assert!(
            stdout.contains(expected),
            "missing `{expected}` in:\n{stdout}"
        );
    }

    // Without --deny the findings are still printed but the exit is 0, so
    // exploratory runs compose with shell pipelines.
    let output = run(&["--root", root.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(0));
}

#[test]
fn json_output_round_trips_and_matches_the_text_run() {
    let root = fixture_root("violating");
    let output = run(&["--root", root.to_str().unwrap(), "--json"]);
    let stdout = String::from_utf8(output.stdout).unwrap();
    let Doc(doc) = serde_json::from_str(&stdout).expect("--json output parses as JSON");
    assert_eq!(field(&doc, "version").as_u64(), Some(1));
    let findings = field(&doc, "findings").as_seq().expect("findings array");
    assert_eq!(findings.len(), 12);
    // Spot-check the schema of one finding.
    let first = &findings[0];
    assert_eq!(field(first, "rule").as_str(), Some("D1"));
    assert_eq!(
        field(first, "path").as_str(),
        Some("crates/fleet/src/lib.rs")
    );
    assert_eq!(field(first, "line").as_u64(), Some(4));
    assert!(field(first, "message").as_str().is_some());
    assert!(field(first, "snippet").as_str().is_some());
    // Summary block is consistent with the findings array.
    let summary = field(&doc, "summary");
    assert_eq!(field(summary, "findings").as_u64(), Some(12));
    assert_eq!(field(summary, "files").as_u64(), Some(2));
    let per_rule = field(&doc, "per_rule");
    assert_eq!(field(per_rule, "D1").as_u64(), Some(3));
    assert_eq!(field(per_rule, "A2").as_u64(), Some(2));
    assert_eq!(field(per_rule, "P1").as_u64(), Some(3));
}

#[test]
fn waivers_and_allow_lists_suppress_via_config_flag() {
    let root = fixture_root("violating");
    let config = temp_file(
        "waive-all",
        r#"
[rules.D1]
allow = ["crates/fleet/src/lib.rs"]
[rules.D2]
allow = ["crates/fleet/src/lib.rs"]
[rules.D3]
allow = ["crates/fleet/src/lib.rs"]
[rules.A1]
allow = ["crates/fleet/src/lib.rs"]
[rules.A2]
allow = ["crates/fleet/src/lib.rs"]
[rules.P1]
allow = ["crates/fleetd/src/http.rs"]
"#,
    );
    let output = run(&[
        "--root",
        root.to_str().unwrap(),
        "--config",
        config.to_str().unwrap(),
        "--deny",
    ]);
    assert_eq!(
        output.status.code(),
        Some(0),
        "fully allowed tree lints clean: {}",
        String::from_utf8_lossy(&output.stdout)
    );
    std::fs::remove_file(config).unwrap();
}

#[test]
fn stale_waivers_fail_deny_runs() {
    let root = fixture_root("conforming");
    let config = temp_file(
        "stale",
        "[[waiver]]\nrule = \"D1\"\npath = \"nope.rs\"\nreason = \"matches nothing\"\n",
    );
    let output = run(&[
        "--root",
        root.to_str().unwrap(),
        "--config",
        config.to_str().unwrap(),
        "--deny",
    ]);
    assert_eq!(output.status.code(), Some(1), "stale waiver fails --deny");
    let stdout = String::from_utf8(output.stdout).unwrap();
    assert!(stdout.contains("unused waiver"), "stdout: {stdout}");
    std::fs::remove_file(config).unwrap();
}

#[test]
fn clean_tree_and_usage_errors() {
    let root = fixture_root("conforming");
    let output = run(&["--root", root.to_str().unwrap(), "--deny"]);
    assert_eq!(output.status.code(), Some(0));

    // Unknown flags and unparseable configs are usage errors: exit 2.
    assert_eq!(run(&["--frobnicate"]).status.code(), Some(2));
    let bad = temp_file("bad-config", "[unknown section\n");
    let output = run(&["--config", bad.to_str().unwrap()]);
    assert_eq!(output.status.code(), Some(2));
    std::fs::remove_file(bad).unwrap();
}

/// The gate CI enforces: the actual workspace, linted with the committed
/// `detlint.toml`, is clean under `--deny`.
#[test]
fn real_workspace_is_clean_under_the_committed_config() {
    let root = workspace_root();
    let output = run(&["--root", root.to_str().unwrap(), "--deny"]);
    assert_eq!(
        output.status.code(),
        Some(0),
        "workspace must lint clean:\n{}",
        String::from_utf8_lossy(&output.stdout)
    );
}
