//! End-to-end conformance of the `fleetd` daemon binary: HTTP-submitted jobs
//! must reproduce the CLI's reports byte-for-byte (exact and sketch), resume
//! from pre-seeded spool artifacts without re-running them, and survive
//! `kill -9` mid-job with a byte-identical report after restart.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output};
use std::time::Duration;

fn run_ok(binary: &str, args: &[&str]) -> Output {
    let output = Command::new(binary)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("running {binary} failed: {e}"));
    assert!(
        output.status.success(),
        "{binary} {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chris-fleetd-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A running `fleetd` child process; killed on drop so a failing test never
/// leaks a daemon.
struct DaemonProc {
    child: Child,
    addr: SocketAddr,
}

impl DaemonProc {
    /// Starts the daemon over `spool` and waits for its port file.
    fn start(spool: &Path, workers: u32, port_file: &Path) -> Self {
        let _ = std::fs::remove_file(port_file);
        let child = Command::new(env!("CARGO_BIN_EXE_fleetd"))
            .args([
                "--spool",
                spool.to_str().unwrap(),
                "--workers",
                &workers.to_string(),
                "--port-file",
                port_file.to_str().unwrap(),
            ])
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawning fleetd");
        // Hand the child to a DaemonProc straight away: its Drop kills and
        // reaps the process even if the port-file wait below panics.
        let mut daemon = Self {
            child,
            addr: ([127, 0, 0, 1], 0).into(),
        };
        for _ in 0..2000 {
            if let Ok(text) = std::fs::read_to_string(port_file) {
                if let Ok(addr) = text.trim().parse() {
                    daemon.addr = addr;
                    return daemon;
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("fleetd never wrote its port file");
    }

    /// One HTTP request; `body` implies `Content-Length`.
    fn request(&self, method: &str, target: &str, body: Option<&str>) -> (u16, Vec<u8>) {
        let mut stream = TcpStream::connect(self.addr).expect("connecting to fleetd");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut text = format!("{method} {target} HTTP/1.1\r\nHost: fleetd\r\n");
        if let Some(body) = body {
            text.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        text.push_str("\r\n");
        if let Some(body) = body {
            text.push_str(body);
        }
        stream.write_all(text.as_bytes()).expect("sending");
        let mut bytes = Vec::new();
        stream.read_to_end(&mut bytes).expect("reading");
        let split = bytes
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("response separator");
        let status: u16 = std::str::from_utf8(&bytes[..split])
            .unwrap()
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        (status, bytes[split + 4..].to_vec())
    }

    fn submit(&self, spec: &str) -> u64 {
        let (status, body) = self.request("POST", "/jobs", Some(spec));
        let text = String::from_utf8_lossy(&body);
        assert_eq!(status, 202, "submit: {text}");
        text.split("\"id\":")
            .nth(1)
            .expect("status has an id")
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("id parses")
    }

    fn wait_done(&self, id: u64) {
        for _ in 0..6000 {
            let (status, body) = self.request("GET", &format!("/jobs/{id}"), None);
            assert_eq!(status, 200);
            let text = String::from_utf8_lossy(&body);
            if text.contains("\"state\":\"done\"") {
                return;
            }
            assert!(
                !text.contains("\"state\":\"failed\""),
                "job {id} failed: {text}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("job {id} did not finish");
    }

    fn report(&self, id: u64) -> Vec<u8> {
        let (status, body) = self.request("GET", &format!("/jobs/{id}/report"), None);
        assert_eq!(status, 200, "report: {}", String::from_utf8_lossy(&body));
        body
    }

    fn shutdown(mut self) {
        let (status, _) = self.request("POST", "/shutdown", None);
        assert_eq!(status, 200);
        let _ = self.child.wait();
    }

    fn kill_dash_nine(&mut self) {
        self.child.kill().expect("SIGKILL");
        let _ = self.child.wait();
    }
}

impl Drop for DaemonProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn http_reports_match_the_cli_byte_for_byte() {
    let dir = temp_dir("bytes");
    let daemon = DaemonProc::start(&dir.join("spool"), 2, &dir.join("fleetd.port"));

    // Exact mode: the 64-device golden job must serve the committed fixture
    // byte-for-byte — the same bytes `fleet --json` prints.
    let exact = daemon.submit(
        r#"{"devices": 64, "seed": 42, "mix": "balanced", "threads": 2, "shards": 4, "report_mode": "exact"}"#,
    );
    daemon.wait_done(exact);
    let fixture = std::fs::read(
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../fleet/tests/fixtures/fleet-64-balanced-seed42.json"),
    )
    .expect("golden fixture");
    assert_eq!(
        daemon.report(exact),
        fixture,
        "HTTP exact report differs from the golden CLI fixture"
    );

    // Sketch mode: byte-identical to a fresh `fleet --json --report-mode
    // sketch` run of the same spec.
    let sketch = daemon.submit(
        r#"{"devices": 24, "seed": 7, "threads": 2, "shards": 3, "report_mode": "sketch"}"#,
    );
    daemon.wait_done(sketch);
    let cli = run_ok(
        env!("CARGO_BIN_EXE_fleet"),
        &[
            "--devices",
            "24",
            "--seed",
            "7",
            "--threads",
            "2",
            "--report-mode",
            "sketch",
            "--json",
        ],
    );
    assert_eq!(
        daemon.report(sketch),
        cli.stdout,
        "HTTP sketch report differs from the CLI"
    );

    daemon.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn daemon_resumes_from_a_preseeded_spool_without_rerunning_shards() {
    let dir = temp_dir("preseed");
    let spool = dir.join("spool");

    // Fabricate what a killed daemon would have left behind: job 1's spec
    // plus shard 0's checkpoint — written by the ordinary `fleet-shard`
    // binary, because daemon checkpoints ARE ordinary shard artifacts.
    let mut spec = fleetd::JobSpec::new(24);
    spec.seed = 42;
    spec.shards = 3;
    spec.threads = 2;
    let job_dir = spool.join("job-1");
    std::fs::create_dir_all(&job_dir).unwrap();
    std::fs::write(job_dir.join("spec.json"), spec.to_json()).unwrap();
    let artifact = job_dir.join("shard-00000.json");
    run_ok(
        env!("CARGO_BIN_EXE_fleet-shard"),
        &[
            "--devices",
            "24",
            "--shards",
            "3",
            "--shard-index",
            "0",
            "--seed",
            "42",
            "--threads",
            "2",
            "--out",
            artifact.to_str().unwrap(),
        ],
    );
    let artifact_bytes = std::fs::read(&artifact).unwrap();

    // The daemon must adopt the job on startup, re-run only shards 1 and 2,
    // and serve the exact single-process report.
    let daemon = DaemonProc::start(&spool, 1, &dir.join("fleetd.port"));
    daemon.wait_done(1);
    let cli = run_ok(
        env!("CARGO_BIN_EXE_fleet"),
        &[
            "--devices",
            "24",
            "--seed",
            "42",
            "--threads",
            "2",
            "--json",
        ],
    );
    assert_eq!(daemon.report(1), cli.stdout, "resumed report byte identity");
    assert_eq!(
        std::fs::read(&artifact).unwrap(),
        artifact_bytes,
        "the pre-seeded checkpoint was reused, not re-run"
    );

    daemon.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn kill_dash_nine_then_restart_serves_a_byte_identical_report() {
    let dir = temp_dir("kill9");
    let spool = dir.join("spool");
    let mut daemon = DaemonProc::start(&spool, 1, &dir.join("fleetd.port"));
    let id = daemon.submit(r#"{"devices": 48, "seed": 13, "shards": 4, "threads": 1}"#);

    // Kill without ceremony once the job is underway. Whether any shard had
    // checkpointed yet is timing-dependent — and must not matter.
    for _ in 0..1000 {
        let (_, body) = daemon.request("GET", &format!("/jobs/{id}"), None);
        if String::from_utf8_lossy(&body).contains("\"state\":\"running\"") {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    daemon.kill_dash_nine();

    let revived = DaemonProc::start(&spool, 2, &dir.join("fleetd.port"));
    revived.wait_done(id);
    let cli = run_ok(
        env!("CARGO_BIN_EXE_fleet"),
        &[
            "--devices",
            "48",
            "--seed",
            "13",
            "--threads",
            "2",
            "--json",
        ],
    );
    assert_eq!(
        revived.report(id),
        cli.stdout,
        "post-crash report byte identity"
    );
    revived.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
