//! End-to-end conformance of the sharded CLI pipeline: the actual
//! `fleet-shard` and `fleet-merge` binaries, driven as subprocesses, must
//! reproduce `fleet --json` byte-for-byte — and `fleet-merge` must reject
//! incoherent artifact sets with the typed error on stderr.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const DEVICES: &str = "24";
const SHARDS: u32 = 3;
const SEED: &str = "42";

fn run(binary: &str, args: &[&str]) -> Output {
    Command::new(binary)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("running {binary} failed: {e}"))
}

fn run_ok(binary: &str, args: &[&str]) -> Output {
    let output = run(binary, args);
    assert!(
        output.status.success(),
        "{binary} {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

/// Writes the shard artifacts of a 24-device fleet into `dir` and returns
/// their paths.
fn write_shards(dir: &Path) -> Vec<PathBuf> {
    (0..SHARDS)
        .map(|index| {
            let path = dir.join(format!("shard-{index}.json"));
            run_ok(
                env!("CARGO_BIN_EXE_fleet-shard"),
                &[
                    "--devices",
                    DEVICES,
                    "--shards",
                    &SHARDS.to_string(),
                    "--shard-index",
                    &index.to_string(),
                    "--seed",
                    SEED,
                    "--threads",
                    "2",
                    "--out",
                    path.to_str().unwrap(),
                ],
            );
            path
        })
        .collect()
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chris-shard-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn sharded_pipeline_reproduces_the_single_process_report_byte_for_byte() {
    let dir = temp_dir("equivalence");
    let shards = write_shards(&dir);

    let mut merge_args: Vec<&str> = vec!["--json"];
    let shard_strs: Vec<&str> = shards.iter().map(|p| p.to_str().unwrap()).collect();
    merge_args.extend(&shard_strs);
    let merged = run_ok(env!("CARGO_BIN_EXE_fleet-merge"), &merge_args);

    let single = run_ok(
        env!("CARGO_BIN_EXE_fleet"),
        &[
            "--devices",
            DEVICES,
            "--threads",
            "8",
            "--seed",
            SEED,
            "--json",
        ],
    );

    assert_eq!(
        merged.stdout, single.stdout,
        "merged shard output differs from the single-process report"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn streaming_merge_accepts_any_argument_order_and_stays_byte_identical() {
    // fleet-merge consumes artifacts one at a time (streaming fold); the
    // metadata scan must put them in device-id order no matter how the
    // paths are given, and the output must stay byte-identical.
    let dir = temp_dir("ordering");
    let shards = write_shards(&dir);

    let forward: Vec<&str> = shards.iter().map(|p| p.to_str().unwrap()).collect();
    let mut forward_args = vec!["--json"];
    forward_args.extend(&forward);
    let forward_out = run_ok(env!("CARGO_BIN_EXE_fleet-merge"), &forward_args);

    let mut reversed: Vec<&str> = forward.clone();
    reversed.reverse();
    let mut reversed_args = vec!["--json"];
    reversed_args.extend(&reversed);
    let reversed_out = run_ok(env!("CARGO_BIN_EXE_fleet-merge"), &reversed_args);

    assert_eq!(
        forward_out.stdout, reversed_out.stdout,
        "artifact argument order changed the merged report"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_rejects_a_missing_shard_with_a_typed_error() {
    let dir = temp_dir("missing");
    let shards = write_shards(&dir);

    // Merge everything except shard 1 (devices [8, 16)).
    let output = run(
        env!("CARGO_BIN_EXE_fleet-merge"),
        &[
            "--json",
            shards[0].to_str().unwrap(),
            shards[2].to_str().unwrap(),
        ],
    );
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("devices [8, 16) are covered by no shard"),
        "unexpected stderr: {stderr}"
    );
    assert!(
        output.stdout.is_empty(),
        "no report may be emitted on error"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merge_rejects_mismatched_seeds_with_a_typed_error() {
    let dir = temp_dir("seeds");
    let shards = write_shards(&dir);

    // Re-run shard 2 under a different master seed.
    run_ok(
        env!("CARGO_BIN_EXE_fleet-shard"),
        &[
            "--devices",
            DEVICES,
            "--shards",
            &SHARDS.to_string(),
            "--shard-index",
            "2",
            "--seed",
            "43",
            "--out",
            shards[2].to_str().unwrap(),
        ],
    );

    let shard_strs: Vec<&str> = shards.iter().map(|p| p.to_str().unwrap()).collect();
    let output = run(env!("CARGO_BIN_EXE_fleet-merge"), &shard_strs);
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("master seed mismatch"),
        "unexpected stderr: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
