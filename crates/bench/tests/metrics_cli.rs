//! End-to-end telemetry conformance of the fleet CLI family, driven as
//! subprocesses:
//!
//! * stdout artifacts are **byte-identical** with and without the
//!   observability flags (`--progress --profile-cache --metrics-out`) and
//!   across thread counts — telemetry is strictly a sidecar,
//! * `--metrics-out` writes exposition that parses and carries the
//!   workload-deterministic counters,
//! * `fleet-merge --metrics-out` over shard artifacts emits the same stable
//!   counters as the single-process run.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const DEVICES: &str = "12";
const SEED: &str = "42";

fn run_ok(binary: &str, args: &[&str]) -> Output {
    let output = Command::new(binary)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("running {binary} failed: {e}"));
    assert!(
        output.status.success(),
        "{binary} {args:?} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chris-metrics-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn shard_stdout(threads: &str, observability: Option<&Path>) -> Vec<u8> {
    let mut args = vec![
        "--devices",
        DEVICES,
        "--seed",
        SEED,
        "--mix",
        "cohort",
        "--threads",
        threads,
    ];
    let metrics_path = observability.map(|dir| dir.join(format!("shard-t{threads}.prom")));
    if let Some(path) = &metrics_path {
        args.extend(["--progress", "--profile-cache"]);
        args.extend(["--metrics-out", path.to_str().unwrap()]);
    }
    let output = run_ok(env!("CARGO_BIN_EXE_fleet-shard"), &args);
    if let Some(path) = &metrics_path {
        // The sidecar must exist and parse; stdout must not contain it.
        let text = std::fs::read_to_string(path).unwrap();
        telemetry::parse_exposition(&text).expect("sidecar exposition parses");
    }
    output.stdout
}

#[test]
fn observability_flags_never_change_the_stdout_artifact() {
    let dir = temp_dir("stdout-stability");
    let baseline = shard_stdout("1", None);
    assert!(!baseline.is_empty());
    for threads in ["1", "4", "8"] {
        assert_eq!(
            baseline,
            shard_stdout(threads, None),
            "plain artifact drifted at {threads} threads"
        );
        assert_eq!(
            baseline,
            shard_stdout(threads, Some(&dir)),
            "--progress --profile-cache --metrics-out changed stdout at {threads} threads"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn progress_lines_are_throttled_to_the_hard_cap() {
    // 100 devices with a 1/32 step would previously print up to 100 lines;
    // the throttle caps device-progress lines at 33 (32 steps + the
    // guaranteed final totals) while stdout stays the report alone.
    let output = run_ok(
        env!("CARGO_BIN_EXE_fleet"),
        &[
            "--devices",
            "100",
            "--seed",
            SEED,
            "--threads",
            "4",
            "--progress",
            "--json",
        ],
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    let lines: Vec<&str> = stderr
        .lines()
        .filter(|line| line.starts_with("progress: devices "))
        .collect();
    assert!(
        lines.len() <= 33,
        "{} progress lines exceed the cap:\n{stderr}",
        lines.len()
    );
    assert!(
        lines.iter().any(|line| line.contains("devices 100/100")),
        "final totals line missing:\n{stderr}"
    );
    assert!(
        output.stdout.starts_with(b"{"),
        "stdout is still the report"
    );
}

#[test]
fn fleet_metrics_exposition_carries_the_run_counters() {
    let dir = temp_dir("exposition");
    let path = dir.join("fleet.prom");
    run_ok(
        env!("CARGO_BIN_EXE_fleet"),
        &[
            "--devices",
            DEVICES,
            "--seed",
            SEED,
            "--threads",
            "2",
            "--json",
            "--metrics-out",
            path.to_str().unwrap(),
        ],
    );
    let text = std::fs::read_to_string(&path).unwrap();
    let samples = telemetry::parse_exposition(&text).unwrap();

    let windows =
        telemetry::sample_value(&samples, "chris_windows_total").expect("windows counter present");
    assert!(windows > 0.0);
    let phone =
        telemetry::sample_value(&samples, "chris_offload_decisions_total{backend=\"phone\"}")
            .expect("offload counter present");
    let wearable = telemetry::sample_value(
        &samples,
        "chris_offload_decisions_total{backend=\"wearable\"}",
    )
    .expect("offload counter present");
    assert_eq!(phone + wearable, windows);

    // Per-stage duration histograms cover every runtime stage. The DSP
    // stages (`band_pass`/`fft`/`features`) are *not* expected here: the
    // fleet hot path runs the oracle activity classifier and calibrated
    // surrogate estimators, so the raw signal path never executes — those
    // timers are exercised by the ppg-dsp unit tests and the spectral /
    // random-forest experiments instead.
    for stage in ["classify", "predict", "energy"] {
        let count = telemetry::sample_value(
            &samples,
            &format!("chris_stage_duration_ns_count{{stage=\"{stage}\"}}"),
        )
        .unwrap_or_else(|| panic!("stage {stage} has no duration histogram"));
        assert!(count > 0.0, "stage {stage} recorded no observations");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn merged_exposition_matches_the_single_process_stable_counters() {
    let dir = temp_dir("merge");
    let shards: Vec<PathBuf> = (0..3u32)
        .map(|index| {
            let path = dir.join(format!("shard-{index}.json"));
            run_ok(
                env!("CARGO_BIN_EXE_fleet-shard"),
                &[
                    "--devices",
                    DEVICES,
                    "--shards",
                    "3",
                    "--shard-index",
                    &index.to_string(),
                    "--seed",
                    SEED,
                    "--threads",
                    "2",
                    "--out",
                    path.to_str().unwrap(),
                ],
            );
            path
        })
        .collect();

    let merged_prom = dir.join("merged.prom");
    let mut merge_args = vec!["--json", "--metrics-out", merged_prom.to_str().unwrap()];
    let shard_strs: Vec<&str> = shards.iter().map(|p| p.to_str().unwrap()).collect();
    merge_args.extend(&shard_strs);
    run_ok(env!("CARGO_BIN_EXE_fleet-merge"), &merge_args);

    let single_prom = dir.join("single.prom");
    run_ok(
        env!("CARGO_BIN_EXE_fleet"),
        &[
            "--devices",
            DEVICES,
            "--seed",
            SEED,
            "--threads",
            "1",
            "--json",
            "--metrics-out",
            single_prom.to_str().unwrap(),
        ],
    );

    let merged = std::fs::read_to_string(&merged_prom).unwrap();
    let single = std::fs::read_to_string(&single_prom).unwrap();
    let merged_samples = telemetry::parse_exposition(&merged).unwrap();
    let single_samples = telemetry::parse_exposition(&single).unwrap();
    assert!(!merged_samples.is_empty());

    // The merged exposition holds only the shards' embedded Stable series.
    // The runtime-only counters must match the single-process exposition
    // exactly; the model-invocation counters cannot be compared this way
    // because the single-process exposition also counts the profiling
    // phase's predictions (each fleet-shard process re-profiles, and only
    // its *run* telemetry is embedded in the artifact). Snapshot-level
    // equality of run telemetry is proptest-locked in fleet's test suite.
    for series in [
        "chris_windows_total",
        "chris_offload_decisions_total{backend=\"phone\"}",
        "chris_offload_decisions_total{backend=\"wearable\"}",
    ] {
        assert_eq!(
            telemetry::sample_value(&merged_samples, series),
            telemetry::sample_value(&single_samples, series),
            "series {series} diverged between merged and single-process runs"
        );
        assert!(
            telemetry::sample_value(&merged_samples, series).is_some(),
            "series {series} missing from the merged exposition"
        );
    }
    for model in ["AT", "TimePPG-Small", "TimePPG-Big"] {
        let series = format!("chris_model_invocations_total{{model=\"{model}\"}}");
        assert!(
            telemetry::sample_value(&merged_samples, &series).is_some(),
            "series {series} missing from the merged exposition"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
