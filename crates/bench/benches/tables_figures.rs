//! Criterion benchmarks that regenerate every table and figure of the paper
//! as a measured workload, plus the ablation sweeps called out in DESIGN.md
//! (energy-accounting mode and BLE cost).  Each benchmark body *is* the
//! experiment: running `cargo bench` therefore re-derives all reported data
//! while also measuring how long the reproduction pipeline takes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chris_bench::{bench_windows, build_engine};
use chris_core::config::{Configuration, DifficultyThreshold, EnergyAccounting};
use chris_core::prelude::*;
use hw_sim::ble::BleLink;
use hw_sim::platform::Platform;
use hw_sim::units::{Power, TimeSpan};

fn bench_tables(c: &mut Criterion) {
    let zoo = ModelZoo::paper_setup();

    // Table I / Table III / Fig. 3: the per-model characterization.
    c.bench_function("experiments/table1_table3_fig3_characterization", |b| {
        b.iter(|| black_box(zoo.table()))
    });

    let windows = bench_windows();

    // Table II + Fig. 4: profile the 60 configurations and extract the front.
    c.bench_function("experiments/table2_fig4_profile_and_pareto", |b| {
        b.iter(|| {
            let engine = build_engine(&zoo, black_box(&windows));
            (
                engine.pareto(ConnectionStatus::Connected).len(),
                engine.len(),
            )
        })
    });

    // Fig. 5: threshold sweep of the AT + TimePPG-Big hybrid.
    let profiler = Profiler::new(&zoo);
    c.bench_function("experiments/fig5_threshold_sweep", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            for threshold in 0..=9u8 {
                let config = Configuration::new(
                    ModelKind::AdaptiveThreshold,
                    ModelKind::TimePpgBig,
                    DifficultyThreshold::new(threshold).unwrap(),
                    ExecutionTarget::Hybrid,
                )
                .unwrap();
                out.push(
                    profiler
                        .profile(config, black_box(&windows), ProfilingOptions::default())
                        .unwrap(),
                );
            }
            out
        })
    });

    // Headline: the constraint-driven selections through the full runtime.
    let engine = build_engine(&zoo, &windows);
    c.bench_function("experiments/headline_constraint_runs", |b| {
        b.iter(|| {
            let mut runtime =
                ChrisRuntime::new(zoo.clone(), engine.clone(), RuntimeOptions::default());
            let r1 = runtime
                .run(
                    black_box(&windows),
                    &UserConstraint::MaxMae(5.6),
                    &hw_sim::ble::ConnectionSchedule::AlwaysConnected,
                )
                .unwrap();
            let r2 = runtime
                .run(
                    black_box(&windows),
                    &UserConstraint::MaxMae(7.2),
                    &hw_sim::ble::ConnectionSchedule::AlwaysConnected,
                )
                .unwrap();
            (r1.avg_watch_energy, r2.avg_watch_energy)
        })
    });
}

fn bench_ablations(c: &mut Criterion) {
    let zoo = ModelZoo::paper_setup();
    let windows = bench_windows();
    let profiler = Profiler::new(&zoo);
    let config = Configuration::new(
        ModelKind::AdaptiveThreshold,
        ModelKind::TimePpgBig,
        DifficultyThreshold::new(6).unwrap(),
        ExecutionTarget::Hybrid,
    )
    .unwrap();

    // Ablation 1: offload-energy accounting mode.
    let mut group = c.benchmark_group("ablation/energy_accounting");
    for accounting in EnergyAccounting::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{accounting:?}")),
            &accounting,
            |b, &accounting| {
                let options = ProfilingOptions {
                    accounting,
                    ..ProfilingOptions::default()
                };
                b.iter(|| {
                    profiler
                        .profile(config, black_box(&windows), options)
                        .unwrap()
                })
            },
        );
    }
    group.finish();

    // Ablation 2: BLE transmission cost (x0.5, x1, x2 of the calibrated link).
    let mut group = c.benchmark_group("ablation/ble_cost");
    for scale in [0.5f64, 1.0, 2.0] {
        group.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &scale| {
            let base = BleLink::paper_calibrated();
            let ble = BleLink::new(
                base.throughput_bytes_per_s,
                Power::from_milliwatts(base.tx_power.as_milliwatts() * scale),
                TimeSpan::ZERO,
            )
            .unwrap();
            let scaled_zoo = ModelZoo::new(Platform::stm32wb55(), Platform::raspberry_pi3(), ble);
            let scaled_profiler = Profiler::new(&scaled_zoo);
            b.iter(|| {
                scaled_profiler
                    .profile(config, black_box(&windows), ProfilingOptions::default())
                    .unwrap()
            })
        });
    }
    group.finish();

    // Ablation 3: sleep-power sensitivity of the smartwatch platform.
    let mut group = c.benchmark_group("ablation/sleep_power");
    for sleep_mw in [0.05f64, 0.0968, 0.2] {
        group.bench_with_input(
            BenchmarkId::from_parameter(sleep_mw),
            &sleep_mw,
            |b, &mw| {
                let mut watch = Platform::stm32wb55();
                watch.sleep_power = Power::from_milliwatts(mw);
                let scaled_zoo = ModelZoo::new(
                    watch,
                    Platform::raspberry_pi3(),
                    BleLink::paper_calibrated(),
                );
                let scaled_profiler = Profiler::new(&scaled_zoo);
                b.iter(|| {
                    scaled_profiler
                        .profile(config, black_box(&windows), ProfilingOptions::default())
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tables, bench_ablations
}
criterion_main!(benches);
