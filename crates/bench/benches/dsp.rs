//! Criterion micro-benchmarks of the signal-processing substrate: the
//! per-window primitives that would run on the smartwatch MCU.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ppg_dsp::features::AccelFeatures;
use ppg_dsp::fft::{power_spectrum, welch_psd};
use ppg_dsp::filter::{band_pass, rolling_mean};
use ppg_dsp::peaks::{count_sign_changes, region_maxima, regions_above};

fn test_window() -> Vec<f32> {
    (0..256)
        .map(|i| {
            let t = i as f32 / 32.0;
            (2.0 * std::f32::consts::PI * 1.2 * t).sin()
                + 0.3 * (2.0 * std::f32::consts::PI * 2.9 * t).sin()
        })
        .collect()
}

fn bench_dsp(c: &mut Criterion) {
    let window = test_window();
    let long: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.05).sin()).collect();

    c.bench_function("dsp/rolling_mean_24_over_256", |b| {
        b.iter(|| rolling_mean(black_box(&window), 24).unwrap())
    });

    c.bench_function("dsp/band_pass_256", |b| {
        b.iter(|| band_pass(black_box(&window), 0.7, 3.5, 32.0).unwrap())
    });

    c.bench_function("dsp/power_spectrum_256", |b| {
        b.iter(|| power_spectrum(black_box(&window)).unwrap())
    });

    c.bench_function("dsp/welch_psd_4096_segments_256", |b| {
        b.iter(|| welch_psd(black_box(&long), 256).unwrap())
    });

    c.bench_function("dsp/at_peak_pipeline_256", |b| {
        b.iter(|| {
            let threshold = rolling_mean(black_box(&window), 24).unwrap();
            let regions = regions_above(&window, &threshold).unwrap();
            region_maxima(&window, &regions, 3)
        })
    });

    c.bench_function("dsp/accel_features_256x3", |b| {
        b.iter(|| AccelFeatures::from_axes(black_box(&window), &window, &window).unwrap())
    });

    c.bench_function("dsp/count_sign_changes_256", |b| {
        b.iter(|| count_sign_changes(black_box(&window)))
    });
}

criterion_group!(benches, bench_dsp);
criterion_main!(benches);
