//! Criterion benchmarks of the CHRIS machinery itself: configuration
//! profiling, decision-engine selection and the full runtime loop — the code
//! that would execute on the smartwatch between two predictions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chris_bench::{bench_windows, build_engine};
use chris_core::config::{Configuration, DifficultyThreshold};
use chris_core::prelude::*;
use hw_sim::ble::ConnectionSchedule;

fn bench_runtime(c: &mut Criterion) {
    let windows = bench_windows();
    let zoo = ModelZoo::paper_setup();
    let profiler = Profiler::new(&zoo);
    let engine = build_engine(&zoo, &windows);

    let config = Configuration::new(
        ModelKind::AdaptiveThreshold,
        ModelKind::TimePpgBig,
        DifficultyThreshold::new(6).unwrap(),
        ExecutionTarget::Hybrid,
    )
    .unwrap();
    c.bench_function("chris/profile_one_configuration", |b| {
        b.iter(|| {
            profiler
                .profile(
                    black_box(config),
                    black_box(&windows),
                    ProfilingOptions::default(),
                )
                .unwrap()
        })
    });

    c.bench_function("chris/profile_all_60_configurations", |b| {
        b.iter(|| {
            profiler
                .profile_all(black_box(&windows), ProfilingOptions::default())
                .unwrap()
        })
    });

    c.bench_function("chris/decision_engine_select", |b| {
        b.iter(|| {
            engine
                .select(
                    &UserConstraint::MaxMae(black_box(5.6)),
                    ConnectionStatus::Connected,
                )
                .unwrap()
        })
    });

    c.bench_function("chris/pareto_front_extraction", |b| {
        b.iter(|| engine.pareto(ConnectionStatus::Connected))
    });

    c.bench_function("chris/runtime_full_run", |b| {
        b.iter(|| {
            let mut runtime =
                ChrisRuntime::new(zoo.clone(), engine.clone(), RuntimeOptions::default());
            runtime
                .run(
                    black_box(&windows),
                    &UserConstraint::MaxMae(5.6),
                    &ConnectionSchedule::AlwaysConnected,
                )
                .unwrap()
        })
    });

    c.bench_function("chris/runtime_per_window_cost", |b| {
        let mut runtime = ChrisRuntime::new(zoo.clone(), engine.clone(), RuntimeOptions::default());
        // One window at a time approximates the on-line per-prediction overhead.
        let single = vec![windows[0].clone()];
        b.iter(|| {
            runtime
                .run(
                    black_box(&single),
                    &UserConstraint::MaxMae(5.6),
                    &ConnectionSchedule::AlwaysConnected,
                )
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_runtime
}
criterion_main!(benches);
