//! Overhead of the telemetry registry on the fleet hot path.
//!
//! The per-window instrumentation (one counter increment, one offload
//! counter, three stage timers in the runtime plus three in the DSP layer)
//! must stay in the noise of the simulation itself — the README documents a
//! <2% wall-clock target. This bench runs the same fleet under three
//! registries:
//!
//! * `enabled`   — a live [`telemetry::Registry`], the production path,
//! * `disabled`  — [`telemetry::Registry::disabled`], whose instruments are
//!   no-ops (timers skip the clock reads), isolating dispatch cost,
//! * `global`    — no explicit scope, so recording lands on the process
//!   global registry (the default for library users).
//!
//! Reports are asserted identical across all three before timing starts.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use fleet::{run_fleet, DeviceScenario, ExecutorOptions, FleetSimulation, ScenarioMix};

const DEVICES: u64 = 16;

fn options() -> ExecutorOptions {
    ExecutorOptions {
        // Single-threaded keeps the comparison about per-window instrument
        // cost, not scheduling noise.
        threads: 1,
        ..ExecutorOptions::default()
    }
}

fn run(simulation: &FleetSimulation, scenarios: &[DeviceScenario]) -> Vec<fleet::DeviceReport> {
    run_fleet(scenarios, simulation.zoo(), simulation.engine(), &options()).unwrap()
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let simulation = FleetSimulation::new(42, ScenarioMix::balanced()).expect("profiling succeeds");
    let scenarios: Vec<_> = simulation.generator().scenarios(DEVICES).collect();
    let total_windows: u64 = scenarios
        .iter()
        .map(|s| s.window_count().expect("valid scenario") as u64)
        .sum();

    let live = telemetry::Registry::new();
    let dead = telemetry::Registry::disabled();

    // Telemetry must be invisible in the output: byte-identical reports
    // whether instruments are live, disabled, or global.
    let baseline = run(&simulation, &scenarios);
    {
        let _scope = telemetry::scoped(&live);
        assert_eq!(baseline, run(&simulation, &scenarios));
    }
    {
        let _scope = telemetry::scoped(&dead);
        assert_eq!(baseline, run(&simulation, &scenarios));
    }

    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_windows));
    group.bench_function("enabled_registry", |b| {
        let _scope = telemetry::scoped(&live);
        b.iter(|| black_box(run(&simulation, black_box(&scenarios))))
    });
    group.bench_function("disabled_registry", |b| {
        let _scope = telemetry::scoped(&dead);
        b.iter(|| black_box(run(&simulation, black_box(&scenarios))))
    });
    group.bench_function("global_registry", |b| {
        b.iter(|| black_box(run(&simulation, black_box(&scenarios))))
    });
    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
