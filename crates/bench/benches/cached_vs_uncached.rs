//! Cached vs uncached profiling-window streams on a repeated-subject fleet.
//!
//! Fleets in the wild are not all-distinct: cohorts of devices share a
//! subject/activity profile (same calibration data, same schedule), which
//! means their `DeviceScenario::window_cache_key`s collide and the per-worker
//! `WindowCache` can replay one synthesized session instead of re-running the
//! PPG/accelerometer synthesizers per device. This bench runs such a fleet —
//! a `balanced` population with a small `subject_pool`, the generator's own
//! cohort mechanism (a compressed `ScenarioMix::cohort`) — through the
//! executor with the cache off and on. The reports are asserted identical
//! before timing starts; the cached run should win wall-clock roughly in
//! proportion to the devices-per-profile ratio.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use fleet::{run_fleet, DeviceScenario, ExecutorOptions, FleetSimulation, ScenarioMix};

/// Distinct subject/activity profiles in the benched fleet.
const DISTINCT_PROFILES: u64 = 4;
/// Benched devices; `DEVICES / DISTINCT_PROFILES` devices share each
/// profile, so the cache's steady-state hit ratio is
/// `1 - DISTINCT_PROFILES / DEVICES`.
const DEVICES: u64 = 24;

fn bench_mix() -> ScenarioMix {
    ScenarioMix {
        subject_pool: DISTINCT_PROFILES,
        ..ScenarioMix::balanced()
    }
}

fn repeated_subject_fleet(simulation: &FleetSimulation) -> Vec<DeviceScenario> {
    simulation.generator().scenarios(DEVICES).collect()
}

fn options(profile_cache: Option<usize>) -> ExecutorOptions {
    ExecutorOptions {
        // Single-threaded keeps the comparison about synthesis work, not
        // scheduling noise; the cache also helps at any thread count.
        threads: 1,
        profile_cache,
        ..ExecutorOptions::default()
    }
}

fn bench_cached_vs_uncached(c: &mut Criterion) {
    let simulation = FleetSimulation::new(42, bench_mix()).expect("profiling succeeds");
    let scenarios = repeated_subject_fleet(&simulation);
    let total_windows: u64 = scenarios
        .iter()
        .map(|s| s.window_count().expect("valid scenario") as u64)
        .sum();

    // The cache must be invisible in the output: byte-identical reports.
    let uncached = run_fleet(
        &scenarios,
        simulation.zoo(),
        simulation.engine(),
        &options(None),
    )
    .unwrap();
    let cached = run_fleet(
        &scenarios,
        simulation.zoo(),
        simulation.engine(),
        &options(Some(64)),
    )
    .unwrap();
    assert_eq!(uncached, cached, "the cache changed a device report");

    let mut group = c.benchmark_group("cached_vs_uncached");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_windows));
    group.bench_function("uncached_repeated_subjects", |b| {
        b.iter(|| {
            black_box(
                run_fleet(
                    black_box(&scenarios),
                    simulation.zoo(),
                    simulation.engine(),
                    &options(None),
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("cached_repeated_subjects", |b| {
        b.iter(|| {
            black_box(
                run_fleet(
                    black_box(&scenarios),
                    simulation.zoo(),
                    simulation.engine(),
                    &options(Some(64)),
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cached_vs_uncached);
criterion_main!(benches);
