//! Criterion benchmarks of the HR predictors and the activity classifier:
//! what one prediction costs on the host, and the float-vs-int8 inference gap.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use chris_bench::bench_windows;
use ppg_models::adaptive_threshold::AdaptiveThreshold;
use ppg_models::random_forest::{RandomForest, RandomForestConfig};
use ppg_models::spectral::SpectralPeak;
use ppg_models::timeppg::{build_network, window_to_tensor, TimePpgVariant};
use ppg_models::traits::{ActivityClassifier, HrEstimator};
use tinydl::quant::QuantizedNetwork;

fn bench_models(c: &mut Criterion) {
    let windows = bench_windows();
    let window = windows[windows.len() / 2].clone();

    c.bench_function("models/adaptive_threshold_predict", |b| {
        b.iter_batched(
            AdaptiveThreshold::new,
            |mut at| at.predict(black_box(&window)).unwrap(),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("models/spectral_peak_predict", |b| {
        b.iter_batched(
            SpectralPeak::new,
            |mut sp| sp.predict(black_box(&window)).unwrap(),
            BatchSize::SmallInput,
        )
    });

    let mut small = build_network(TimePpgVariant::Small).expect("small network builds");
    let input = window_to_tensor(&window).expect("window converts");
    c.bench_function("models/timeppg_small_forward_f32", |b| {
        b.iter(|| small.forward(black_box(&input)).unwrap())
    });

    let quant_small = QuantizedNetwork::from_sequential(&small).expect("quantizes");
    c.bench_function("models/timeppg_small_forward_int8", |b| {
        b.iter(|| quant_small.forward(black_box(&input)).unwrap())
    });

    let rf = RandomForest::train(&windows, RandomForestConfig::default()).expect("rf trains");
    c.bench_function("models/random_forest_classify", |b| {
        b.iter(|| rf.classify(black_box(&window)).unwrap())
    });

    c.bench_function("models/random_forest_train_8x5", |b| {
        b.iter(|| RandomForest::train(black_box(&windows), RandomForestConfig::default()).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_models
}
criterion_main!(benches);
