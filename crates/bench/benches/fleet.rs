//! Criterion benchmarks of the fleet engine: end-to-end fleet throughput
//! (windows/sec, devices/sec) at 1 thread and at all cores, plus the cost of
//! scenario generation alone.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use fleet::{run_fleet, run_fleet_range, ExecutorOptions, FleetSimulation, ScenarioMix};

const DEVICES: u64 = 64;

fn bench_fleet(c: &mut Criterion) {
    let simulation = FleetSimulation::new(42, ScenarioMix::balanced())
        .expect("profiling the shared table succeeds");
    let scenarios: Vec<_> = simulation.generator().scenarios(DEVICES).collect();
    // Exact window count from the schedule geometry alone — no signal is
    // synthesized just to size the throughput denominator.
    let total_windows: usize = scenarios
        .iter()
        .map(|s| s.window_count().expect("scenario windows build"))
        .sum();

    let mut group = c.benchmark_group("fleet");
    group.sample_size(10);

    group.throughput(Throughput::Elements(DEVICES));
    group.bench_function("scenario_generation_64_devices", |b| {
        b.iter(|| {
            simulation
                .generator()
                .scenarios(black_box(DEVICES))
                .collect::<Vec<_>>()
        })
    });

    // Window throughput of the full simulation (synthesis + runtime), the
    // fleet analogue of the paper's per-window runtime cost.
    group.throughput(Throughput::Elements(total_windows as u64));
    group.bench_function("simulate_64_devices_1_thread", |b| {
        b.iter(|| {
            run_fleet(
                black_box(&scenarios),
                simulation.zoo(),
                simulation.engine(),
                &ExecutorOptions {
                    threads: 1,
                    chunk_size: 8,
                    ..ExecutorOptions::default()
                },
            )
            .unwrap()
        })
    });
    group.bench_function("simulate_64_devices_all_cores", |b| {
        b.iter(|| {
            run_fleet(
                black_box(&scenarios),
                simulation.zoo(),
                simulation.engine(),
                &ExecutorOptions {
                    threads: 0,
                    chunk_size: 8,
                    ..ExecutorOptions::default()
                },
            )
            .unwrap()
        })
    });
    // The scenario-free path: identical work, but each worker derives its
    // scenarios on demand instead of reading a pre-built vector — the cost
    // of O(threads) scenario memory, head to head against the slice path.
    group.bench_function("simulate_64_devices_scenario_free", |b| {
        b.iter(|| {
            run_fleet_range(
                simulation.generator(),
                black_box(0..DEVICES),
                simulation.zoo(),
                simulation.engine(),
                &ExecutorOptions {
                    threads: 0,
                    chunk_size: 8,
                    ..ExecutorOptions::default()
                },
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fleet);
criterion_main!(benches);
