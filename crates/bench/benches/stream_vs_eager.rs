//! Streaming vs eager window delivery, head to head.
//!
//! Two comparisons, both on fleet-shaped workloads:
//!
//! * **synthesis** — draining `DatasetBuilder::window_stream()` vs
//!   materializing `build()?.windows()` for the same `(seed, subjects,
//!   schedule)`: the stream does the same signal synthesis without ever
//!   holding the session or its window vector,
//! * **device simulation** — `simulate_device` (the streaming executor path)
//!   vs the legacy shape (collect the device's windows, then run the runtime
//!   over the slice), over a slice of the default 1000-device `--devices
//!   1000 --seed 42` fleet. The two produce byte-identical reports; the
//!   streaming path wins on windows/sec because it never allocates or copies
//!   the per-device window vector.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use chris_core::runtime::{ChrisRuntime, RuntimeOptions};
use fleet::{simulate_device, FleetSimulation, ScenarioMix};
use ppg_data::{DatasetBuilder, WindowSource};

/// Devices benchmarked out of the default 1000-device fleet; a contiguous
/// prefix keeps the run time sane while sampling the same scenario
/// distribution the `fleet --devices 1000` CLI sees.
const DEVICES: u64 = 16;

fn synthesis_builder() -> DatasetBuilder {
    DatasetBuilder::new()
        .subjects(2)
        .seconds_per_activity(24.0)
        .seed(42)
}

fn bench_stream_vs_eager(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_vs_eager");
    group.sample_size(10);

    let total_windows = synthesis_builder().window_stream().unwrap().len() as u64;
    group.throughput(Throughput::Elements(total_windows));
    group.bench_function("synthesis/eager_build_then_windows", |b| {
        b.iter(|| black_box(synthesis_builder().build().unwrap().windows()))
    });
    group.bench_function("synthesis/window_stream_drain", |b| {
        b.iter(|| {
            let mut stream = synthesis_builder().window_stream().unwrap();
            let mut n = 0usize;
            while let Some(item) = stream.next_window() {
                black_box(item.unwrap());
                n += 1;
            }
            n
        })
    });

    // The fleet the default CLI invocation simulates (seed 42, balanced),
    // restricted to the first DEVICES devices.
    let simulation = FleetSimulation::new(42, ScenarioMix::balanced()).expect("profiling succeeds");
    let scenarios: Vec<_> = simulation.generator().scenarios(DEVICES).collect();
    let fleet_windows: u64 = scenarios
        .iter()
        .map(|s| s.window_count().expect("valid scenario") as u64)
        .sum();

    group.throughput(Throughput::Elements(fleet_windows));
    group.bench_function("simulate/eager_collect_then_run", |b| {
        b.iter(|| {
            for scenario in &scenarios {
                // The pre-redesign executor shape: materialize the session's
                // window vector, then run the runtime over the slice.
                let windows = scenario.windows().unwrap();
                let options = RuntimeOptions {
                    accounting: scenario.accounting,
                    seed: scenario.dataset_seed,
                    ..RuntimeOptions::default()
                };
                let mut runtime = ChrisRuntime::new(
                    simulation.zoo().clone(),
                    simulation.engine().clone(),
                    options,
                );
                black_box(
                    runtime
                        .run(&windows, &scenario.constraint, &scenario.schedule)
                        .unwrap(),
                );
            }
        })
    });
    group.bench_function("simulate/streaming_simulate_device", |b| {
        b.iter(|| {
            for scenario in &scenarios {
                black_box(
                    simulate_device(scenario, simulation.zoo(), simulation.engine()).unwrap(),
                );
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stream_vs_eager);
criterion_main!(benches);
