//! Fleet-scale CHRIS simulation driver.
//!
//! Simulates a fleet of independent devices in parallel and prints the
//! aggregate report (MAE percentiles, energy and battery-life distributions,
//! offload histogram, constraint violations). The output is byte-identical
//! for any `--threads` value.
//!
//! ```text
//! cargo run --release -p bench --bin fleet -- --devices 1000 --threads 8 --seed 42
//! ```

use std::process::ExitCode;
use std::time::Instant;

use fleet::{FleetSimulation, ScenarioMix};

struct Args {
    devices: u64,
    threads: usize,
    seed: u64,
    mix: ScenarioMix,
    mix_name: String,
    json: bool,
    per_device: bool,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            devices: 1000,
            threads: 0,
            seed: 42,
            mix: ScenarioMix::balanced(),
            mix_name: "balanced".to_string(),
            json: false,
            per_device: false,
        }
    }
}

const USAGE: &str =
    "usage: fleet [--devices N] [--threads N] [--seed N] [--mix NAME] [--json] [--per-device]\n\
       --devices N     number of simulated devices (default 1000)\n\
       --threads N     worker threads, 0 = one per core (default 0)\n\
       --seed N        master seed; fixes every device's scenario (default 42)\n\
       --mix NAME      scenario mix: balanced | harsh | connected (default balanced)\n\
       --json          print the aggregate report as JSON instead of text\n\
       --per-device    also print one line per device";

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--devices" => {
                args.devices = value("--devices")?
                    .parse()
                    .map_err(|e| format!("--devices: {e}"))?;
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--mix" => {
                let name = value("--mix")?;
                args.mix = ScenarioMix::from_name(&name).ok_or_else(|| {
                    format!(
                        "unknown mix `{name}`; expected one of {}",
                        ScenarioMix::PRESETS.join(", ")
                    )
                })?;
                args.mix_name = name;
            }
            "--json" => args.json = true,
            "--per-device" => args.per_device = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let setup_start = Instant::now();
    let simulation = match FleetSimulation::new(args.seed, args.mix) {
        Ok(simulation) => simulation,
        Err(e) => {
            eprintln!("profiling the shared configuration table failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let setup_time = setup_start.elapsed();

    let run_start = Instant::now();
    let outcome = match simulation.run(args.devices, args.threads) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("fleet run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run_time = run_start.elapsed();

    if args.json {
        match serde_json::to_string_pretty(&outcome.report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("serializing the report failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        println!(
            "CHRIS fleet simulation  (seed {}, mix {}, {} devices)",
            args.seed, args.mix_name, args.devices
        );
        println!("{}", outcome.report);
        if args.per_device {
            println!();
            for d in &outcome.devices {
                println!(
                    "  device {:>6}  {:>4} windows  MAE {:>6.2} BPM  {:>8.1} uJ/pred  \
                     offload {:>5.1} %  battery {:>8.1} h  {}{}",
                    d.device_id,
                    d.windows,
                    d.mae_bpm,
                    d.avg_watch_energy.as_microjoules(),
                    d.offload_fraction * 100.0,
                    d.battery_life_hours,
                    d.constraint,
                    if d.constraint_violated {
                        "  VIOLATED"
                    } else {
                        ""
                    },
                );
            }
        }
        let windows_per_s = outcome.report.total_windows as f64 / run_time.as_secs_f64();
        let devices_per_s = args.devices as f64 / run_time.as_secs_f64();
        eprintln!(
            "\nprofiling {:.2} s; simulated {} windows in {:.2} s \
             ({windows_per_s:.0} windows/s, {devices_per_s:.0} devices/s)",
            setup_time.as_secs_f64(),
            outcome.report.total_windows,
            run_time.as_secs_f64(),
        );
    }
    ExitCode::SUCCESS
}
