//! Fleet-scale CHRIS simulation driver.
//!
//! Simulates a fleet of independent devices in parallel and prints the
//! aggregate report (MAE percentiles, energy and battery-life distributions,
//! offload histogram, constraint violations). The output is byte-identical
//! for any `--threads` value. Execution is scenario-free end to end: worker
//! threads derive device scenarios on demand and the report is folded
//! incrementally (`fleet::FleetAccumulator`), so memory scales with threads
//! and devices' scalars, not with materialized scenarios.
//!
//! ```text
//! cargo run --release -p bench --bin fleet -- --devices 1000 --threads 8 --seed 42
//! ```

use std::process::ExitCode;
use std::time::Instant;

use chris_bench::fleet_cli::{self, FleetArgs, StderrProgress};
use fleet::FleetSimulation;

struct Args {
    common: FleetArgs,
    json: bool,
    per_device: bool,
    progress: bool,
}

const USAGE: &str = "usage: fleet [--devices N] [--threads N] [--seed N] [--mix NAME] \
     [--profile-cache] [--report-mode NAME] [--metrics-out PATH] [--metrics-json] [--json] \
     [--per-device] [--progress]\n\
     {COMMON}\n\
       --json          print the aggregate report as JSON instead of text\n\
       --per-device    also print one line per device\n\
       --progress      print live progress lines (windows / devices) to stderr";

fn usage() -> String {
    USAGE.replace("{COMMON}", fleet_cli::COMMON_USAGE)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        common: FleetArgs::default(),
        json: false,
        per_device: false,
        progress: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if fleet_cli::parse_common(&mut args.common, &flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--json" => args.json = true,
            "--per-device" => args.per_device = true,
            "--progress" => args.progress = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    // Root telemetry registry for the whole invocation: profiling and the
    // fleet run record under this scope, and the process-global series are
    // folded in at emission time.
    let telemetry_root = telemetry::Registry::new();
    let _telemetry_scope = telemetry::scoped(&telemetry_root);

    let setup_start = Instant::now();
    let simulation = match FleetSimulation::new(args.common.seed, args.common.mix) {
        Ok(simulation) => simulation,
        Err(e) => {
            eprintln!("profiling the shared configuration table failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let setup_time = setup_start.elapsed();

    let run_start = Instant::now();
    if let Some(warning) = args.common.profile_cache_warning() {
        eprintln!("{warning}");
    }
    let sink = args
        .progress
        .then(|| StderrProgress::new(args.common.devices));
    let outcome = match simulation.run_with_options(
        args.common.devices,
        &args.common.executor_options(),
        sink.as_ref().map(|s| s as &dyn fleet::ProgressSink),
    ) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("fleet run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let run_time = run_start.elapsed();

    if args.json {
        // Sketch runs wrap the report in an envelope carrying the accuracy
        // diagnostics; exact runs keep the bare-report JSON shape (and its
        // byte-stability against the golden fixture).
        let json = match outcome.sketch {
            Some(sketch) => serde_json::to_string_pretty(&fleet::SketchedReport {
                sketch,
                report: outcome.report.clone(),
            }),
            None => serde_json::to_string_pretty(&outcome.report),
        };
        match json {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("serializing the report failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        println!(
            "CHRIS fleet simulation  (seed {}, mix {}, {} devices)",
            args.common.seed, args.common.mix_name, args.common.devices
        );
        println!("{}", outcome.report);
        if let Some(sketch) = &outcome.sketch {
            println!("{}", fleet_cli::sketch_note(sketch));
        }
        if args.per_device {
            println!();
            for d in &outcome.devices {
                println!("{}", fleet_cli::device_line(d));
            }
        }
        let windows_per_s = outcome.report.total_windows as f64 / run_time.as_secs_f64();
        let devices_per_s = args.common.devices as f64 / run_time.as_secs_f64();
        eprintln!(
            "\nprofiling {:.2} s; simulated {} windows in {:.2} s \
             ({windows_per_s:.0} windows/s, {devices_per_s:.0} devices/s)",
            setup_time.as_secs_f64(),
            outcome.report.total_windows,
            run_time.as_secs_f64(),
        );
    }
    if args.common.metrics.enabled() {
        let snapshot = fleet_cli::process_snapshot(&telemetry_root);
        if let Err(message) = fleet_cli::emit_metrics(&args.common.metrics, &snapshot) {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
