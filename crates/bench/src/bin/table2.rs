//! Table II — the configurations stored inside CHRIS (profiled MAE, energy,
//! model pair, difficulty threshold, execution target).
//!
//! The paper shows a handful of example rows; this binary prints the full
//! profiled table sorted by energy, plus the Pareto-optimal subset that is
//! actually stored on the MCU.

use chris_bench::{build_engine, experiment_windows, mj, rule};
use chris_core::prelude::*;

fn main() {
    let windows = experiment_windows();
    let zoo = ModelZoo::paper_setup();
    let engine = build_engine(&zoo, &windows);

    println!("Table II — configurations stored inside CHRIS");
    println!(
        "(profiled on {} windows of the synthetic profiling split)\n",
        windows.len()
    );
    println!(
        "{:<6} {:>10} {:>10}  {:<28} {:>6} {:>8}",
        "id", "MAE [BPM]", "E. [mJ]", "Models", "Diff.", "Exec."
    );
    rule(76);
    for (i, p) in engine.profiles().iter().enumerate() {
        println!(
            "C{:<5} {:>10.2} {:>10}  [{}, {}]{:>pad$} {:>6} {:>8}",
            i + 1,
            p.mae_bpm,
            mj(p.watch_energy),
            p.configuration.simple.name(),
            p.configuration.complex.name(),
            "",
            p.configuration.threshold.value(),
            p.configuration.target.name(),
            pad = 26usize.saturating_sub(
                p.configuration.simple.name().len() + p.configuration.complex.name().len() + 4
            )
        );
    }
    rule(76);

    let front = engine.pareto(ConnectionStatus::Connected);
    println!(
        "\nPareto-optimal configurations stored on the smartwatch ({} of {}):",
        front.len(),
        engine.len()
    );
    for p in front {
        println!(
            "  {:<38} {:>7.2} BPM {:>10} mJ ({:>4.0}% offloaded)",
            p.configuration.label(),
            p.mae_bpm,
            mj(p.watch_energy),
            p.offload_fraction * 100.0
        );
    }
    println!("\npaper reference rows (Table II):");
    println!("  C1: 10.11 BPM, 0.92 mJ, [AT, TimePPGSmall], diff 9, Local");
    println!("  C2: 10.05 BPM, 0.87 mJ, [AT, TimePPGBig],   diff 9, Hybrid");
    println!("  CN:  5.11 BPM, 40.05 mJ, [AT, TimePPGBig],  diff 1, Local");
}
