//! The fleet-as-a-service daemon binary.
//!
//! Serves the [`fleetd`] HTTP API over a spool directory: `POST /jobs`
//! schedules sharded fleet simulations on a worker pool, `GET /metrics`
//! scrapes the live process registry, and `POST /shutdown` drains. A daemon
//! killed mid-job resumes from its spooled shard checkpoints on restart and
//! produces a final report byte-identical to `fleet --json`.
//!
//! ```text
//! fleetd --spool /var/lib/fleetd --workers 4 --addr 127.0.0.1:8080
//! fleetd --spool spool --port-file fleetd.port   # ephemeral port, written to the file
//! ```

use std::process::ExitCode;

use chris_bench::fleet_cli;
use fleetd::{Daemon, DaemonConfig};

struct Args {
    config: DaemonConfig,
    /// Write the bound address (one `host:port` line) to this path after
    /// binding — how scripts discover an ephemeral port race-free.
    port_file: Option<String>,
}

const USAGE: &str = "usage: fleetd --spool DIR [--addr HOST:PORT] [--workers N] \
     [--queue-depth N] [--port-file PATH]\n\
       --spool DIR     job spool directory: specs, shard checkpoints, final reports\n\
                       (created if missing; re-scanned on startup to resume killed jobs)\n\
       --addr HOST:PORT  bind address (default 127.0.0.1:0 = ephemeral port)\n\
       --workers N     worker threads running shards (default 2)\n\
       --queue-depth N max jobs queued or running before 429 (default 8)\n\
       --port-file PATH  after binding, atomically write the bound address to PATH";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: DaemonConfig::default(),
        port_file: None,
    };
    let mut spool_given = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--spool" => {
                args.config.spool = fleet_cli::flag_value(&flag, &mut it)?.into();
                spool_given = true;
            }
            "--addr" => args.config.addr = fleet_cli::flag_value(&flag, &mut it)?,
            "--workers" => args.config.workers = fleet_cli::parse_value(&flag, &mut it)?,
            "--queue-depth" => args.config.queue_depth = fleet_cli::parse_value(&flag, &mut it)?,
            "--port-file" => args.port_file = Some(fleet_cli::flag_value(&flag, &mut it)?),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if !spool_given {
        return Err(format!("missing required --spool DIR\n{USAGE}"));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let daemon = match Daemon::bind(&args.config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("starting fleetd failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match daemon.local_addr() {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("reading the bound address failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = &args.port_file {
        if let Err(e) =
            fleetd::write_atomic(std::path::Path::new(path), format!("{addr}\n").as_bytes())
        {
            eprintln!("writing the port file {path} failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "fleetd: listening on {addr} (spool: {}, workers: {})",
        args.config.spool.display(),
        args.config.workers.max(1),
    );

    if let Err(e) = daemon.run() {
        eprintln!("fleetd accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("fleetd: drained and stopped");
    ExitCode::SUCCESS
}
