//! Shard worker of the sharded fleet pipeline.
//!
//! Simulates one contiguous slice of a fleet's device-id range and writes the
//! resulting [`fleet::ShardReport`] artifact as JSON. Because every device
//! scenario is a pure function of `(master seed, device id)`, the K shard
//! invocations can run on different processes or hosts with no coordination;
//! `fleet-merge` later folds the artifacts into the exact single-process
//! report.
//!
//! Workers are scenario-free: each worker thread derives the scenario of a
//! device as it claims its id, so the shard never materializes a scenario
//! vector — `--devices 1000000000 --shards 1000` costs O(threads) scenario
//! memory per worker process, not O(range).
//!
//! ```text
//! fleet-shard --devices 1000 --shards 4 --shard-index 0 --seed 42 --out shard-0.json
//! ```

use std::process::ExitCode;

use chris_bench::fleet_cli::{self, FleetArgs, StderrProgress};
use fleet::{FleetSimulation, ShardSpec};

struct Args {
    common: FleetArgs,
    shards: u32,
    shard_index: u32,
    out: Option<String>,
    progress: bool,
}

const USAGE: &str = "usage: fleet-shard --shards K --shard-index I [--devices N] [--threads N] \
     [--seed N] [--mix NAME] [--profile-cache] [--report-mode NAME] [--metrics-out PATH] \
     [--metrics-json] [--out PATH] [--progress]\n\
     {COMMON}\n\
       --shards K      number of contiguous shards the fleet is split into (default 1)\n\
       --shard-index I which shard to simulate, 0-based (default 0)\n\
       --out PATH      write the shard artifact to PATH instead of stdout\n\
       --progress      print live progress lines (windows / devices) to stderr";

fn usage() -> String {
    USAGE.replace("{COMMON}", fleet_cli::COMMON_USAGE)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        common: FleetArgs::default(),
        shards: 1,
        shard_index: 0,
        out: None,
        progress: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if fleet_cli::parse_common(&mut args.common, &flag, &mut it)? {
            continue;
        }
        match flag.as_str() {
            "--shards" => args.shards = fleet_cli::parse_value(&flag, &mut it)?,
            "--shard-index" => args.shard_index = fleet_cli::parse_value(&flag, &mut it)?,
            "--out" => args.out = Some(fleet_cli::flag_value(&flag, &mut it)?),
            "--progress" => args.progress = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let spec = match ShardSpec::new(args.common.devices, args.shards) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("invalid shard specification: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Root telemetry registry for the whole invocation: profiling and the
    // shard run record under this scope, and the process-global series are
    // folded in at emission time.
    let telemetry_root = telemetry::Registry::new();
    let _telemetry_scope = telemetry::scoped(&telemetry_root);

    let simulation = match FleetSimulation::new(args.common.seed, args.common.mix) {
        Ok(simulation) => simulation,
        Err(e) => {
            eprintln!("profiling the shared configuration table failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Progress totals are per shard: the worker only sees its own range.
    let shard_devices = spec
        .range(args.shard_index)
        .map_or(0, |range| range.end - range.start);
    if let Some(warning) = args.common.profile_cache_warning() {
        eprintln!("{warning}");
    }
    let sink = args.progress.then(|| StderrProgress::new(shard_devices));
    let shard = match simulation.run_shard_with_options(
        &spec,
        args.shard_index,
        &args.common.executor_options(),
        sink.as_ref().map(|s| s as &dyn fleet::ProgressSink),
    ) {
        Ok(shard) => shard,
        Err(e) => {
            eprintln!("shard run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let json = match serde_json::to_string_pretty(&shard) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("serializing the shard artifact failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    match &args.out {
        Some(path) => {
            // Atomic write: a killed shard run leaves either no artifact or a
            // complete one, so spool/merge consumers never see torn JSON.
            if let Err(e) =
                fleetd::write_atomic(std::path::Path::new(path), format!("{json}\n").as_bytes())
            {
                eprintln!("writing {path} failed: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "shard {}/{} (devices [{}, {})) -> {path}",
                shard.meta.shard_index, shard.meta.shard_count, shard.meta.start, shard.meta.end,
            );
        }
        None => println!("{json}"),
    }
    if args.common.metrics.enabled() {
        let snapshot = fleet_cli::process_snapshot(&telemetry_root);
        if let Err(message) = fleet_cli::emit_metrics(&args.common.metrics, &snapshot) {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
