//! `detlint` — run the workspace determinism & concurrency lint pass.
//!
//! ```text
//! cargo run --release -p bench --bin detlint -- --deny
//! ```
//!
//! Exit codes: 0 clean, 1 findings (with `--deny`; without it findings are
//! reported but the exit stays 0 so exploratory runs compose with shell
//! pipelines), 2 usage / config / I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    deny: bool,
    json: bool,
    files: Vec<String>,
}

const USAGE: &str = "usage: detlint [--root DIR] [--config FILE] [--deny] [--json] [FILE...]

Lints the workspace (or just FILE..., workspace-relative) against the
determinism & concurrency rules:

";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        deny: false,
        json: false,
        files: Vec::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(iter.next().ok_or("--root needs a directory")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(iter.next().ok_or("--config needs a file")?));
            }
            "--deny" => args.deny = true,
            "--json" => args.json = true,
            "--help" | "-h" => {
                let mut usage = String::from(USAGE);
                for rule in detlint::Rule::ALL {
                    usage.push_str(&format!("  {}  {}\n", rule.name(), rule.summary()));
                }
                return Err(usage);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            file => args.files.push(file.replace('\\', "/")),
        }
    }
    Ok(args)
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let config = match &args.config {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            detlint::parse_config(&text).map_err(|e| e.to_string())?
        }
        None => detlint::load_config(&args.root).map_err(|e| e.to_string())?,
    };
    let report = detlint::lint_workspace(&args.root, &args.files, &config)
        .map_err(|e| format!("lint walk failed: {e}"))?;
    if args.json {
        print!("{}", detlint::render_json(&report, &config));
    } else {
        print!("{}", detlint::render_text(&report, &config));
    }
    // Stale waivers fail a --deny run too: the config must stay truthful.
    // (Unused waivers are only checked on whole-workspace runs — a partial
    // file list legitimately leaves most waivers unmatched.)
    let dirty =
        !report.findings.is_empty() || (args.files.is_empty() && !report.unused_waivers.is_empty());
    if args.deny && dirty {
        eprintln!("detlint: failing (--deny)");
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}
