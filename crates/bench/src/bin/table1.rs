//! Table I — example of models used to construct CHRIS configurations:
//! per-model MAE and energy on the board, on the phone and over BLE.

use chris_bench::{mj, rule};
use chris_core::prelude::*;

fn main() {
    let zoo = ModelZoo::paper_setup();
    println!("Table I — models used to construct CHRIS configurations");
    println!("(energy per prediction; board energy includes idle until the next window)\n");
    println!(
        "{:<16} {:>10} {:>12} {:>12} {:>10}",
        "model", "MAE [BPM]", "Board [mJ]", "Phone [mJ]", "BLE [mJ]"
    );
    rule(64);
    for row in zoo.table() {
        println!(
            "{:<16} {:>10.2} {:>12} {:>12} {:>10}",
            row.kind.name(),
            row.mae_bpm,
            mj(row.watch_energy),
            mj(row.phone_energy),
            mj(row.ble_energy)
        );
    }
    rule(64);
    println!("paper reference values (Table I / III):");
    println!("  AT            : 10.99 BPM, board 0.234 mJ, phone 1.60 mJ");
    println!("  TimePPG-Small :  5.60 BPM, board 0.735 mJ, phone 5.54 mJ");
    println!("  TimePPG-Big   :  4.87 BPM, board 41.11 mJ, phone 25.60 mJ");
    println!("  BLE           :  0.52 mJ per transmitted window");
}
