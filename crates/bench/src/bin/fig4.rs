//! Fig. 4 — CHRIS configurations in the MAE vs smartwatch-energy plane:
//! single-model baselines, local and hybrid combinations, the Pareto front,
//! and the two constraint-driven selections highlighted in the paper.

use chris_bench::{build_engine, experiment_windows, mj};
use chris_core::prelude::*;

fn main() {
    let windows = experiment_windows();
    let zoo = ModelZoo::paper_setup();
    let engine = build_engine(&zoo, &windows);

    println!("Fig. 4 — CHRIS configuration space (MAE vs smartwatch energy)");
    println!("profiled on {} windows\n", windows.len());

    // Baselines (green diamonds in the paper).
    println!("single-model / single-device baselines:");
    for row in zoo.table() {
        println!(
            "  {:<28} {:>7.2} BPM {:>10} mJ",
            format!("{} on the watch", row.kind.name()),
            row.mae_bpm,
            mj(row.watch_energy)
        );
    }
    let stream = zoo.ble().transfer_energy(hw_sim::WINDOW_PAYLOAD_BYTES);
    println!(
        "  {:<28} {:>7.2} BPM {:>10} mJ   (BLE + TimePPG-Big)",
        "always offload to the phone",
        ModelKind::TimePpgBig.nominal_mae_bpm(),
        mj(stream)
    );

    // The full configuration cloud, grouped by pair/target.
    println!("\nconfiguration cloud (series as in the figure):");
    for (simple, complex) in [
        (ModelKind::AdaptiveThreshold, ModelKind::TimePpgSmall),
        (ModelKind::AdaptiveThreshold, ModelKind::TimePpgBig),
        (ModelKind::TimePpgSmall, ModelKind::TimePpgBig),
    ] {
        for target in [ExecutionTarget::Local, ExecutionTarget::Hybrid] {
            let series: Vec<_> = engine
                .profiles()
                .iter()
                .filter(|p| {
                    p.configuration.simple == simple
                        && p.configuration.complex == complex
                        && p.configuration.target == target
                })
                .collect();
            println!(
                "  [{} + {}] {}:",
                simple.name(),
                complex.name(),
                target.name()
            );
            for p in series {
                println!(
                    "    thr={} {:>7.2} BPM {:>10} mJ ({:>3.0}% offloaded)",
                    p.configuration.threshold.value(),
                    p.mae_bpm,
                    mj(p.watch_energy),
                    p.offload_fraction * 100.0
                );
            }
        }
    }

    // Pareto fronts.
    for status in [ConnectionStatus::Connected, ConnectionStatus::Disconnected] {
        let front = engine.pareto(status);
        println!("\nPareto front, phone {status:?} ({} points):", front.len());
        for p in front {
            println!(
                "  {:<38} {:>7.2} BPM {:>10} mJ",
                p.configuration.label(),
                p.mae_bpm,
                mj(p.watch_energy)
            );
        }
    }

    // Constraint-driven selections (Sel. Model 1 and 2 of the paper).
    let small_local = zoo.characterize(ModelKind::TimePpgSmall).watch_energy;
    for (name, constraint) in [
        (
            "Sel. Model 1 (Constraint 1: MAE <= 5.60 BPM)",
            UserConstraint::MaxMae(5.60),
        ),
        (
            "Sel. Model 2 (Constraint 2: MAE <= 7.20 BPM)",
            UserConstraint::MaxMae(7.20),
        ),
    ] {
        if let Some(p) = engine.select(&constraint, ConnectionStatus::Connected) {
            println!(
                "\n{name}:\n  {} -> {:.2} BPM at {} mJ per prediction ({:.0}% offloaded)",
                p.configuration.label(),
                p.mae_bpm,
                mj(p.watch_energy),
                p.offload_fraction * 100.0
            );
            println!(
                "  vs TimePPG-Small on the watch: {:.2}x less smartwatch energy",
                small_local.as_millijoules() / p.watch_energy.as_millijoules()
            );
            println!(
                "  vs streaming every window    : {:.2}x less smartwatch energy",
                stream.as_millijoules() / p.watch_energy.as_millijoules()
            );
        }
    }
    println!("\npaper reference: Sel. Model 1 = 5.54 BPM at 2.03x less than local TimePPG-Small;");
    println!("Sel. Model 2 = 7.16 BPM at 179 uJ (3.03x less than local Small, 1.82x less than streaming).");
}
