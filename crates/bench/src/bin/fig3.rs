//! Fig. 3 — baseline models: energy decomposition (board compute + idle,
//! phone compute, BLE transmission) on the left, average MAE on the right.

use chris_bench::rule;
use chris_core::prelude::*;
use hw_sim::profile::Workload;

fn bar(value: f64, scale: f64) -> String {
    let n = ((value * scale).round() as usize).min(60);
    "#".repeat(n.max(if value > 0.0 { 1 } else { 0 }))
}

fn main() {
    let zoo = ModelZoo::paper_setup();
    println!("Fig. 3 — baseline models: energy decomposition and MAE\n");
    println!("left: energy per prediction on a log-like scale (each # ~ 0.1 mJ, capped)");
    rule(92);
    println!(
        "{:<16} {:>14} {:>14} {:>12}   energy decomposition",
        "model", "board [mJ]", "phone [mJ]", "BLE [mJ]"
    );
    rule(92);
    for row in zoo.table() {
        let board = row.watch_energy.as_millijoules();
        let compute_only = zoo
            .watch()
            .compute_energy(&row.kind.workload_watch())
            .as_millijoules();
        let idle = board - compute_only;
        println!(
            "{:<16} {:>14.3} {:>14.3} {:>12.3}   board |{}|",
            row.kind.name(),
            board,
            row.phone_energy.as_millijoules(),
            row.ble_energy.as_millijoules(),
            bar(board, 10.0)
        );
        println!(
            "{:<16} {:>14} {:>14} {:>12}     (compute {:.3} mJ + idle {:.3} mJ)",
            "", "", "", "", compute_only, idle
        );
        println!(
            "{:<16} {:>14} {:>14} {:>12}   phone |{}|  ble |{}|",
            "",
            "",
            "",
            "",
            bar(row.phone_energy.as_millijoules(), 2.0),
            bar(row.ble_energy.as_millijoules(), 10.0)
        );
    }
    rule(92);
    println!("\nright: average MAE over the dataset (each # ~ 0.5 BPM)");
    for row in zoo.table() {
        println!(
            "{:<16} {:>6.2} BPM |{}|",
            row.kind.name(),
            row.mae_bpm,
            bar(f64::from(row.mae_bpm), 2.0)
        );
    }
    // The sanity checks of Sec. IV-A in one place.
    let at = zoo.characterize(ModelKind::AdaptiveThreshold);
    let small = zoo.characterize(ModelKind::TimePpgSmall);
    let big = zoo.characterize(ModelKind::TimePpgBig);
    println!("\nobservations (paper Sec. IV-A):");
    println!(
        "  offloading AT is sub-optimal       : board {:.3} mJ vs BLE {:.3} + phone {:.3} mJ",
        at.watch_energy.as_millijoules(),
        at.ble_energy.as_millijoules(),
        at.phone_energy.as_millijoules()
    );
    println!(
        "  offloading Small helps the watch   : board {:.3} mJ vs BLE {:.3} mJ",
        small.watch_energy.as_millijoules(),
        small.ble_energy.as_millijoules()
    );
    println!(
        "  offloading Big is always optimal   : board {:.3} mJ vs BLE {:.3} + phone {:.3} mJ",
        big.watch_energy.as_millijoules(),
        big.ble_energy.as_millijoules(),
        big.phone_energy.as_millijoules()
    );
    let _ = Workload::Macs(0);
}
