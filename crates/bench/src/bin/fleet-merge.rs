//! Merge step of the sharded fleet pipeline.
//!
//! Reads the shard artifacts written by `fleet-shard`, validates that they
//! describe one fleet (same master seed, mix, engine version; device ranges
//! that tile the fleet with no overlap and no gap) and folds them into the
//! aggregate report. With `--json` the output is **byte-identical** to
//! `fleet --json` run single-process over the same fleet; any incompatibility
//! is rejected with a typed error instead of a corrupted report.
//!
//! ```text
//! fleet-merge --json shard-0.json shard-1.json shard-2.json shard-3.json
//! ```

use std::process::ExitCode;

use fleet::{merge, ShardReport};

const USAGE: &str = "usage: fleet-merge [--json] [--per-device] SHARD.json...\n\
       --json          print the merged aggregate report as JSON instead of text\n\
       --per-device    also print one line per device\n\
     Positional arguments are shard artifacts written by fleet-shard, in any order.";

struct Args {
    json: bool,
    per_device: bool,
    paths: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        per_device: false,
        paths: Vec::new(),
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => args.json = true,
            "--per-device" => args.per_device = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown argument `{other}`\n{USAGE}"));
            }
            path => args.paths.push(path.to_string()),
        }
    }
    if args.paths.is_empty() {
        return Err(format!("no shard artifacts given\n{USAGE}"));
    }
    Ok(args)
}

fn read_shard(path: &str) -> Result<ShardReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path} failed: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {path} failed: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let mut shards = Vec::with_capacity(args.paths.len());
    for path in &args.paths {
        match read_shard(path) {
            Ok(shard) => shards.push(shard),
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::FAILURE;
            }
        }
    }
    let shard_count = shards.len();
    let seed = shards[0].meta.master_seed;
    let fleet_devices = shards[0].meta.fleet_devices;

    let outcome = match merge(shards) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("merge failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.json {
        match serde_json::to_string_pretty(&outcome.report) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("serializing the report failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        println!(
            "CHRIS fleet simulation  (seed {seed}, {fleet_devices} devices, \
             merged from {shard_count} shard artifacts)"
        );
        println!("{}", outcome.report);
        if args.per_device {
            println!();
            for d in &outcome.devices {
                println!("{}", chris_bench::fleet_cli::device_line(d));
            }
        }
    }
    ExitCode::SUCCESS
}
