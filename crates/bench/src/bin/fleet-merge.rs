//! Merge step of the sharded fleet pipeline.
//!
//! Reads the shard artifacts written by `fleet-shard`, validates that they
//! describe one fleet (same master seed, mix, engine version; device ranges
//! that tile the fleet with no overlap and no gap) and folds them into the
//! aggregate report. With `--json` the output is **byte-identical** to
//! `fleet --json` run single-process over the same fleet; any incompatibility
//! is rejected with a typed error instead of a corrupted report.
//!
//! The merge is *streaming*: a first pass reads each artifact only to record
//! its provenance and range, then the fold re-reads them in device-id order,
//! pushing each into `fleet::MergeAccumulator` and dropping it before the
//! next is loaded. Peak memory is one shard artifact plus the accumulator's
//! per-device scalars — never the whole artifact set — so the number of
//! shards a merge can absorb is bounded by disk, not RAM. (`--per-device`
//! is the exception: it buffers one rendered line per device, O(fleet),
//! because the aggregate header prints before the device lines.)
//!
//! ```text
//! fleet-merge --json shard-0.json shard-1.json shard-2.json shard-3.json
//! ```

use std::process::ExitCode;

use chris_bench::fleet_cli;
use fleet::{MergeAccumulator, ReportMode};

const USAGE: &str = "usage: fleet-merge [--json] [--per-device] [--report-mode NAME] \
     [--metrics-out PATH] [--metrics-json] SHARD.json...\n\
       --json          print the merged aggregate report as JSON instead of text\n\
       --per-device    also print one line per device\n\
       --report-mode NAME  force the aggregation mode: exact | sketch (default: the mode\n\
                       the shard artifacts declare; forcing sketch rolls an exact\n\
                       artifact set up through O(log devices) quantile sketches)\n\
       {METRICS}\n\
     Positional arguments are shard artifacts written by fleet-shard, in any order.\n\
     The --metrics flags emit the shards' embedded telemetry snapshots folded into one\n\
     fleet-level snapshot (identical to the single-process run's).";

fn usage() -> String {
    USAGE.replace("{METRICS}", fleet_cli::METRICS_USAGE)
}

struct Args {
    json: bool,
    per_device: bool,
    report_mode: Option<ReportMode>,
    metrics: fleet_cli::MetricsArgs,
    paths: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        per_device: false,
        report_mode: None,
        metrics: fleet_cli::MetricsArgs::default(),
        paths: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if fleet_cli::parse_metrics(&mut args.metrics, &arg, &mut it)? {
            continue;
        }
        match arg.as_str() {
            "--json" => args.json = true,
            "--per-device" => args.per_device = true,
            "--report-mode" => {
                let name = fleet_cli::flag_value("--report-mode", &mut it)?;
                args.report_mode = Some(ReportMode::from_name(&name).ok_or_else(|| {
                    format!(
                        "unknown report mode `{name}`; expected one of {}",
                        ReportMode::NAMES.join(", ")
                    )
                })?);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown argument `{other}`\n{}", usage()));
            }
            path => args.paths.push(path.to_string()),
        }
    }
    if args.paths.is_empty() {
        return Err(format!("no shard artifacts given\n{}", usage()));
    }
    Ok(args)
}

/// Provenance scanned from one artifact during the ordering pass.
struct ScannedShard {
    path: String,
    start: u64,
    end: u64,
}

/// Reads each artifact's provenance — the device payload is never
/// deserialized on this pass (`fleet::ShardProvenance`) — and returns the
/// paths sorted into device-id order, the order `MergeAccumulator` consumes.
fn scan_and_sort(paths: &[String]) -> Result<(Vec<ScannedShard>, u64, u64), String> {
    let mut scanned = Vec::with_capacity(paths.len());
    let mut seed = 0;
    let mut fleet_devices = 0;
    for (index, path) in paths.iter().enumerate() {
        let meta = fleet_cli::read_shard_meta(path)?;
        if index == 0 {
            seed = meta.master_seed;
            fleet_devices = meta.fleet_devices;
        }
        scanned.push(ScannedShard {
            path: path.clone(),
            start: meta.start,
            end: meta.end,
        });
    }
    scanned.sort_by_key(|s| (s.start, s.end));
    Ok((scanned, seed, fleet_devices))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let (scanned, seed, fleet_devices) = match scan_and_sort(&args.paths) {
        Ok(scanned) => scanned,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    // Fold pass: one artifact resident at a time. Device lines are
    // pre-rendered during the fold (only when requested) so no report needs
    // to be retained for printing later.
    let mut accumulator = match args.report_mode {
        Some(mode) => MergeAccumulator::with_mode(mode),
        None => MergeAccumulator::new(),
    };
    let mut device_lines = Vec::new();
    for shard in &scanned {
        let artifact = match fleet_cli::read_shard_report(&shard.path) {
            Ok(artifact) => artifact,
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = accumulator.push(&artifact) {
            eprintln!("merge failed: {e}");
            return ExitCode::FAILURE;
        }
        if args.per_device {
            device_lines.extend(artifact.devices.iter().map(fleet_cli::device_line));
        }
    }
    // The folded telemetry must be read before `finalize` consumes the
    // accumulator; it is only cloned when an emission flag asks for it.
    let telemetry = args
        .metrics
        .enabled()
        .then(|| accumulator.telemetry().clone());
    let sketch = accumulator.sketch_info();
    let report = match accumulator.finalize() {
        Ok(report) => report,
        Err(e) => {
            eprintln!("merge failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.json {
        // Same envelope rule as `fleet --json`: sketch merges carry their
        // accuracy diagnostics, exact merges keep the bare-report shape.
        let json = match sketch {
            Some(sketch) => serde_json::to_string_pretty(&fleet::SketchedReport {
                sketch,
                report: report.clone(),
            }),
            None => serde_json::to_string_pretty(&report),
        };
        match json {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("serializing the report failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        println!(
            "CHRIS fleet simulation  (seed {seed}, {fleet_devices} devices, \
             merged from {} shard artifacts)",
            scanned.len()
        );
        println!("{report}");
        if let Some(sketch) = &sketch {
            println!("{}", fleet_cli::sketch_note(sketch));
        }
        if args.per_device {
            println!();
            for line in &device_lines {
                println!("{line}");
            }
        }
    }
    if let Some(telemetry) = &telemetry {
        if let Err(message) = fleet_cli::emit_metrics(&args.metrics, telemetry) {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
