//! Table III — deployment of the baseline models on the STM32WB55 and on the
//! Raspberry Pi3: cycles, execution time, energy per prediction and MAE.

use chris_bench::rule;
use chris_core::prelude::*;

fn main() {
    let zoo = ModelZoo::paper_setup();
    println!("Table III — deployment of baseline models");
    println!("STM32WB55 @ 64 MHz, Raspberry Pi3 @ 600 MHz\n");
    println!(
        "{:<16} {:>12} {:>11} {:>12} | {:>11} {:>12} | {:>10}",
        "model", "Cycles", "Time [ms]", "Energy [mJ]", "Time [ms]", "Energy [mJ]", "MAE [BPM]"
    );
    println!(
        "{:<16} {:>12} {:>11} {:>12} | {:>11} {:>12} | {:>10}",
        "", "(STM32WB55)", "", "", "(RPi3)", "", ""
    );
    rule(100);
    for row in zoo.table() {
        println!(
            "{:<16} {:>12} {:>11.3} {:>12.3} | {:>11.2} {:>12.2} | {:>10.2}",
            row.kind.name(),
            row.watch_cycles,
            row.watch_time.as_millis(),
            row.watch_energy.as_millijoules(),
            row.phone_time.as_millis(),
            row.phone_energy.as_millijoules(),
            row.mae_bpm
        );
    }
    let ble = zoo.characterize(ModelKind::AdaptiveThreshold);
    println!(
        "{:<16} {:>12} {:>11.3} {:>12.3} | {:>11} {:>12} | {:>10}",
        "Bluetooth",
        "n.a.",
        ble.ble_time.as_millis(),
        ble.ble_energy.as_millijoules(),
        "n.a.",
        "n.a.",
        "n.a."
    );
    rule(100);
    println!("paper reference rows:");
    println!("  AT            : 100k cycles, 1.563 ms, 0.234 mJ | 1.00 ms, 1.60 mJ | 10.99 BPM");
    println!("  TimePPG-Small : 1.365M, 21.326 ms, 0.735 mJ     | 3.45 ms, 5.54 mJ |  5.60 BPM");
    println!("  TimePPG-Big   : 103.16M, 1611.88 ms, 41.11 mJ   | 15.96 ms, 25.60 mJ | 4.87 BPM");
    println!("  Bluetooth     : 10.240 ms, 0.52 mJ");
}
