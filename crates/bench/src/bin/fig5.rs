//! Fig. 5 — energy and MAE of the AT + TimePPG-Big hybrid configuration while
//! varying the number of activities treated as "easy" (the difficulty
//! threshold), i.e. the share of windows processed locally by AT versus
//! offloaded to the phone.

use chris_bench::{experiment_windows, mj, rule};
use chris_core::config::{Configuration, DifficultyThreshold};
use chris_core::prelude::*;

fn main() {
    let windows = experiment_windows();
    let zoo = ModelZoo::paper_setup();
    let profiler = Profiler::new(&zoo);

    println!("Fig. 5 — energy and MAE vs number of \"easy\" activities");
    println!("configuration: [AT on the watch, TimePPG-Big on the phone]\n");
    println!(
        "{:<6} {:>12} {:>14} {:>14} {:>14} {:>10}",
        "easy", "MAE [BPM]", "watch [mJ]", "AT share", "offload share", "phone [mJ]"
    );
    rule(78);
    for threshold in 0..=9u8 {
        let config = Configuration::new(
            ModelKind::AdaptiveThreshold,
            ModelKind::TimePpgBig,
            DifficultyThreshold::new(threshold).expect("0..=9"),
            ExecutionTarget::Hybrid,
        )
        .expect("AT is cheaper than TimePPG-Big");
        let p = profiler
            .profile(config, &windows, ProfilingOptions::default())
            .expect("profiling succeeds");
        println!(
            "{:<6} {:>12.2} {:>14} {:>13.1}% {:>13.1}% {:>10.2}",
            threshold,
            p.mae_bpm,
            mj(p.watch_energy),
            p.simple_fraction * 100.0,
            p.offload_fraction * 100.0,
            p.phone_energy.as_millijoules()
        );
    }
    rule(78);
    println!("\nAs in the paper, the trend is close to linear because every activity is");
    println!("equally represented in the (synthetic) dataset; in a real deployment easy");
    println!("activities dominate and CHRIS would offload even more rarely.");
}
