//! The abstract's headline numbers, reproduced end-to-end with the full CHRIS
//! runtime (decision engine + activity classifier + hardware model), plus the
//! connection-loss scenario of Section IV-B.

use chris_bench::{build_engine, experiment_windows, mj};
use chris_core::prelude::*;
use hw_sim::ble::ConnectionSchedule;
use ppg_models::random_forest::{RandomForest, RandomForestConfig};

fn main() {
    let windows = experiment_windows();
    let zoo = ModelZoo::paper_setup();
    let engine = build_engine(&zoo, &windows);

    // Train the RF difficulty detector on half the subjects, as the runtime
    // would use in the field.
    let train: Vec<_> = windows
        .iter()
        .filter(|w| w.subject.0 < 3)
        .cloned()
        .collect();
    let rf = RandomForest::train(&train, RandomForestConfig::default())
        .expect("training data is non-empty");

    let small_local = zoo.characterize(ModelKind::TimePpgSmall).watch_energy;
    let stream_all = zoo.ble().transfer_energy(hw_sim::WINDOW_PAYLOAD_BYTES);

    println!("CHRIS headline results (full runtime, RF difficulty detector)\n");

    for (label, constraint, paper) in [
        (
            "Constraint 1: MAE <= 5.60 BPM (TimePPG-Small's accuracy)",
            UserConstraint::MaxMae(5.60),
            "paper: 5.54 BPM, 2.03x less watch energy than local TimePPG-Small, ~80% offloaded",
        ),
        (
            "Constraint 2: MAE <= 7.20 BPM",
            UserConstraint::MaxMae(7.20),
            "paper: 7.16 BPM at 179 uJ (3.03x less than local Small, 1.82x less than streaming)",
        ),
    ] {
        let mut runtime = ChrisRuntime::with_classifier(
            zoo.clone(),
            engine.clone(),
            Box::new(rf.clone()),
            RuntimeOptions::default(),
        );
        let report = runtime
            .run(&windows, &constraint, &ConnectionSchedule::AlwaysConnected)
            .expect("runtime succeeds");
        println!("{label}");
        println!(
            "  measured: {:.2} BPM at {} mJ per prediction ({:.0}% offloaded, {:.0}% on AT)",
            report.mae_bpm,
            mj(report.avg_watch_energy),
            report.offload_fraction * 100.0,
            report.simple_fraction * 100.0
        );
        println!(
            "  {:.2}x less watch energy than local TimePPG-Small, {:.2}x less than streaming every window",
            small_local.as_millijoules() / report.avg_watch_energy.as_millijoules(),
            stream_all.as_millijoules() / report.avg_watch_energy.as_millijoules()
        );
        println!("  {paper}\n");
    }

    // Connection-loss scenario: the BLE link disappears entirely.
    let front_down = engine.pareto(ConnectionStatus::Disconnected);
    let maes: Vec<f32> = front_down.iter().map(|p| p.mae_bpm).collect();
    let energies: Vec<f64> = front_down
        .iter()
        .map(|p| p.watch_energy.as_millijoules())
        .collect();
    println!(
        "BLE connection lost: {} local Pareto points remain,",
        front_down.len()
    );
    println!(
        "  spanning {:.2}..{:.2} BPM and {:.3}..{:.2} mJ per prediction",
        maes.iter().cloned().fold(f32::INFINITY, f32::min),
        maes.iter().cloned().fold(f32::NEG_INFINITY, f32::max),
        energies.iter().cloned().fold(f64::INFINITY, f64::min),
        energies.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    println!("  paper: 19 Pareto points from 4.87 to 10.99 BPM and 0.234 to 41.07 mJ");

    // Intermittent connectivity, the scenario only the runtime can show.
    let mut runtime =
        ChrisRuntime::with_classifier(zoo, engine, Box::new(rf), RuntimeOptions::default());
    let schedule = ConnectionSchedule::DutyCycle { up: 4, down: 1 };
    let report = runtime
        .run(&windows, &UserConstraint::MaxMae(5.60), &schedule)
        .expect("runtime succeeds");
    println!("\nintermittent link (80% availability), constraint MAE <= 5.60 BPM:");
    println!(
        "  {:.2} BPM at {} mJ per prediction, {:.0}% of windows handled while disconnected",
        report.mae_bpm,
        mj(report.avg_watch_energy),
        report.disconnected_fraction * 100.0
    );
}
