//! Validator for Prometheus text exposition files written by the fleet
//! binaries' `--metrics-out` flag.
//!
//! Parses the whole file through [`telemetry::parse_exposition`] — rejecting
//! malformed families, samples and escapes with a nonzero exit — and
//! optionally asserts exact sample values, which is how CI pins the
//! workload-deterministic series (e.g. `chris_windows_total`) of the golden
//! 64-device fleet without fixing the nondeterministic duration histograms.
//!
//! ```text
//! promcheck --expect chris_windows_total=3482 --require chris_stage_duration_ns m.prom
//! ```

use std::process::ExitCode;

const USAGE: &str = "usage: promcheck [--expect SERIES=VALUE]... [--require NAME]... FILE.prom\n\
       --expect SERIES=VALUE  assert the sample SERIES (labels in canonical sorted\n\
                              form, e.g. chris_offload_decisions_total{backend=\"phone\"})\n\
                              has exactly VALUE\n\
       --require NAME         assert at least one sample of the family NAME exists";

struct Args {
    expects: Vec<(String, f64)>,
    requires: Vec<String>,
    path: String,
}

fn parse_args() -> Result<Args, String> {
    let mut expects = Vec::new();
    let mut requires = Vec::new();
    let mut path = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--expect" => {
                let spec = it.next().ok_or("missing value for --expect")?;
                let (series, value) = spec
                    .rsplit_once('=')
                    .ok_or_else(|| format!("--expect `{spec}` is not SERIES=VALUE"))?;
                let value: f64 = value
                    .parse()
                    .map_err(|e| format!("--expect `{spec}`: {e}"))?;
                expects.push((series.to_string(), value));
            }
            "--require" => requires.push(it.next().ok_or("missing value for --require")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown argument `{other}`\n{USAGE}"));
            }
            file => {
                if path.replace(file.to_string()).is_some() {
                    return Err(format!("more than one input file\n{USAGE}"));
                }
            }
        }
    }
    Ok(Args {
        expects,
        requires,
        path: path.ok_or_else(|| format!("no exposition file given\n{USAGE}"))?,
    })
}

fn run(args: &Args) -> Result<usize, String> {
    let text = std::fs::read_to_string(&args.path)
        .map_err(|e| format!("reading {} failed: {e}", args.path))?;
    let samples = telemetry::parse_exposition(&text)
        .map_err(|e| format!("{} is not valid exposition: {e}", args.path))?;

    for (series, expected) in &args.expects {
        let found = telemetry::sample_value(&samples, series)
            .ok_or_else(|| format!("expected series `{series}` is missing"))?;
        if found != *expected {
            return Err(format!(
                "series `{series}`: expected {expected}, found {found}"
            ));
        }
    }
    for name in &args.requires {
        // A family's samples are `name`, `name{...}`, or — for histograms —
        // `name_bucket{...}` / `name_sum` / `name_count` (with or without
        // labels).
        let in_family = |series: &str| {
            series == name
                || series.strip_prefix(name.as_str()).is_some_and(|rest| {
                    rest.starts_with('{')
                        || ["_bucket", "_sum", "_count"].iter().any(|suffix| {
                            rest == *suffix || rest.starts_with(&format!("{suffix}{{"))
                        })
                })
        };
        if !samples.iter().any(|s| in_family(&s.series)) {
            return Err(format!("required family `{name}` has no samples"));
        }
    }
    Ok(samples.len())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(samples) => {
            println!(
                "{}: {samples} samples, {} values checked, {} families required",
                args.path,
                args.expects.len(),
                args.requires.len()
            );
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("promcheck: {message}");
            ExitCode::FAILURE
        }
    }
}
